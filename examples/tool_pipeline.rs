//! The Figure-9 tool pipeline, end to end: take a vulnerable program,
//! detect its gadgets, build its attack graph, report the missing security
//! dependencies, auto-patch with fences, and confirm the patched graph is
//! secure — for both a Spectre-type and a Meltdown-type input.
//!
//! Run with: `cargo run --example tool_pipeline`

use specgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Spectre-type input (left branch of Figure 9) -------------------
    let spectre_src = r"
        load r4, [r2]          ; fetch array bound
        bge  r0, r4, out       ; bounds check  <- authorization
        shl  r5, r0, 3
        add  r5, r5, r1
        load r6, [r5]          ; potential secret access
        mul  r7, r6, 0x1040
        add  r7, r7, r3
        load r8, [r7]          ; potential covert send
    out:
        halt";
    let program = isa::asm::assemble(spectre_src)?;
    println!(
        "== Spectre-type input ==\n{}",
        isa::asm::disassemble(&program)
    );

    let tool = Analyzer::new(AnalysisConfig::default());
    let report = tool.analyze(&program)?;
    for g in &report.gadgets {
        println!("gadget: {g}");
    }
    for v in &report.vulnerabilities {
        println!("vulnerability: {v}");
    }
    println!(
        "\nattack graph (DOT):\n{}",
        report.graph.graph().to_dot("tool output")
    );

    let patched = report.patch_with_fences(&program)?;
    println!("patched program:\n{}", isa::asm::disassemble(&patched));
    let after = tool.analyze(&patched)?;
    println!(
        "vulnerabilities after patching: {}",
        after.vulnerabilities.len()
    );
    assert!(after.vulnerabilities.is_empty());

    // ---- Meltdown-type input (right branch of Figure 9) -----------------
    let meltdown_src = "load r6, [r5]\nmul r7, r6, 0x1040\nadd r7, r7, r3\nload r8, [r7]\nhalt";
    let program = isa::asm::assemble(meltdown_src)?;
    println!(
        "\n== Meltdown-type input (user mode) ==\n{}",
        isa::asm::disassemble(&program)
    );
    let tool = Analyzer::new(AnalysisConfig {
        user_mode: true,
        ..AnalysisConfig::default()
    });
    let report = tool.analyze(&program)?;
    for g in &report.gadgets {
        println!("gadget: {g}");
    }
    println!(
        "the tool decomposed the faulting load into micro-ops: {}",
        report
            .graph
            .graph()
            .nodes()
            .filter(|n| n.label().contains("permission check") || n.label().contains("data read"))
            .count()
    );
    println!(
        "fence patching is a no-op for intra-instruction races: {} -> {} instructions",
        program.len(),
        report.patch_with_fences(&program)?.len()
    );
    println!("(Meltdown-type holes need hardware fixes: eager permission checks.)");

    // ---- Campaign cross-check ------------------------------------------
    // The analyzer patched the Spectre-type input with fences and declared
    // the Meltdown-type input unfixable in software. One campaign slice
    // over the registry shows the corresponding hardware verdicts: the
    // fence mechanism blocks Spectre v1, the eager permission check (the
    // hardware fix for intra-instruction races) blocks Meltdown — and a
    // mismatched mechanism (KPTI vs Spectre v1) is flagged as the §V-B
    // false sense of security.
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks([
            attacks::find(attacks::names::SPECTRE_V1).expect("registered"),
            attacks::find(attacks::names::MELTDOWN).expect("registered"),
        ])
        .defenses(
            [
                defenses::names::LFENCE,
                defenses::names::EAGER_PERMISSION_CHECK,
                defenses::names::KPTI,
            ]
            .iter()
            .map(|n| *defenses::find(n).expect("registered")),
        )
        .build();
    let matrix = CampaignMatrix::run(&spec)?;
    println!("\ncampaign cross-check (mechanism verdicts):");
    for cell in matrix.cells() {
        println!(
            "  {:<24} vs {:<12} -> {}{}",
            cell.defense,
            cell.attack,
            cell.evaluation.mechanism,
            if cell.false_sense_of_security() {
                "  <-- false sense of security"
            } else {
                ""
            }
        );
    }
    let blocked = |attack: &str, defense: &str| {
        matrix
            .cell(attack, defense, 0)
            .expect("cell")
            .evaluation
            .mechanism
            == Verdict::Blocked
    };
    assert!(blocked(attacks::names::SPECTRE_V1, defenses::names::LFENCE));
    assert!(blocked(
        attacks::names::MELTDOWN,
        defenses::names::EAGER_PERMISSION_CHECK
    ));
    assert!(matrix
        .cell(attacks::names::SPECTRE_V1, defenses::names::KPTI, 0)
        .expect("cell")
        .false_sense_of_security());
    println!("\nThe executable verdicts agree with the analyzer's graph verdicts.");
    Ok(())
}
