//! Quickstart: the paper's core ideas in one screen.
//!
//! 1. Model an attack as a Topological Sort Graph.
//! 2. Detect the race between authorization and access (Theorem 1).
//! 3. Patch the missing security dependency and prove the race is gone.
//! 4. Run the *executable* version of the same attack on the simulator.
//!
//! Run with: `cargo run --example quickstart`

use specgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A minimal attack graph: authorization vs. access. -----------
    let mut g = Tsg::new();
    let auth = g.add_node("bounds check resolution", NodeKind::Authorization);
    let access = g.add_node(
        "Load S (out of bounds)",
        NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
    );
    let send = g.add_node("Load R to cache", NodeKind::Send);
    g.add_edge(access, send, EdgeKind::Data)?;

    // --- 2. Theorem 1: no path between authorization and access ⇒ race. -
    println!(
        "race(authorization, access) = {}",
        g.has_race(auth, access)?
    );
    assert!(g.has_race(auth, access)?);

    // --- 3. Insert the missing security dependency: race gone. ----------
    g.add_edge(auth, access, EdgeKind::Security)?;
    println!("after patching: race = {}", g.has_race(auth, access)?);
    assert!(!g.has_race(auth, access)?);

    // --- 4. The same story, executed: Spectre v1 on the simulator. ------
    let baseline = attacks::spectre_v1::SpectreV1.run(&UarchConfig::default())?;
    println!("Spectre v1 on vulnerable baseline: {baseline}");
    assert!(baseline.leaked);

    let fenced = UarchConfig::builder().no_speculative_loads(true).build();
    let defended = attacks::spectre_v1::SpectreV1.run(&fenced)?;
    println!("Spectre v1 under strategy ①:      {defended}");
    assert!(!defended.leaked);

    println!("\nThe missing edge *is* the vulnerability; inserting it *is* the defense.");
    Ok(())
}
