//! §V-A: systematic discovery of *new* attacks as unexplored points in the
//! (secret source × delay mechanism × covert channel) design space, plus a
//! live demonstration of one of them: Spectre v1 exfiltrating through
//! Prime+Probe instead of Flush+Reload.
//!
//! Run with: `cargo run --example new_attack_discovery`

use specgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = discovery::design_space();
    let novel = discovery::novel_points();
    println!(
        "design space: {} points ({} published, {} candidate new attacks)\n",
        space.len(),
        space.len() - novel.len(),
        novel.len()
    );

    println!("published variants and their coordinates:");
    for p in &space {
        if let Some(name) = p.known_variant() {
            println!("  {:55} -> {}", p.to_string(), name);
        }
    }

    println!("\na few candidate new attacks (unexplored combinations):");
    for p in novel.iter().take(8) {
        let sa = p.graph();
        let vulns = sa.vulnerabilities()?.len();
        println!("  {:60} ({} races)", p.to_string(), vulns);
    }

    // Every candidate's graph exhibits the same root cause…
    for p in &novel {
        assert_eq!(p.graph().vulnerabilities()?.len(), 3);
    }
    println!(
        "\nall {} candidates exhibit the authorization/access race",
        novel.len()
    );

    // …and the same defenses close it.
    let mut sa = novel[0].graph();
    defenses::patch_strategy(&mut sa, Strategy::PreventAccess)?;
    assert!(sa.is_secure()?);
    println!("strategy ① secures candidate 0: {}", novel[0]);

    // A DOT rendering of one novel point, ready for `dot -Tpdf`:
    let p = discovery::AttackPoint {
        source: discovery::SecretSourceDim::FpuState,
        delay: discovery::DelayMechanism::TransactionAbort,
        channel: discovery::Channel::PrimeProbe,
    };
    println!(
        "\nattack graph for '{}' (novel: {}):\n{}",
        p,
        p.known_variant().is_none(),
        p.graph().graph().to_dot("novel attack candidate")
    );
    Ok(())
}
