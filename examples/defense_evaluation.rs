//! The full defense-effectiveness matrix: every Table-III attack run under
//! every Table-II/§V-B defense, verdicts printed as a grid — the executable
//! version of the paper's claim that each defense works exactly where its
//! inserted security dependency matches the attack's missing edge.
//!
//! A thin consumer of the campaign engine: one parallel
//! `CampaignMatrix::run` call produces every verdict, the grid below is
//! pure formatting, and the §V-B false-sense list is a matrix query.
//!
//! Run with: `cargo run --release --example defense_evaluation`

use specgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = CampaignMatrix::run(&CampaignSpec::builder(UarchConfig::default()).build())?;
    let (attacks_n, defenses_n, _) = matrix.shape();

    println!("Defense-effectiveness matrix ({defenses_n} defenses × {attacks_n} attacks)\n");
    println!("legend: '#' blocked, '!' leaked, '.' software-only (graph-level)\n");

    // Column header: defense indices.
    println!(
        "{:32} {}",
        "attack \\ defense",
        (0..defenses_n)
            .map(|i| format!("{i:>2}"))
            .collect::<String>()
    );
    for a in &matrix.attacks {
        let mut row = String::new();
        for d in &matrix.defenses {
            let cell = matrix.cell(a.name, d.name(), 0).expect("full matrix");
            row.push_str(match cell.evaluation.mechanism {
                Verdict::Blocked => " #",
                Verdict::Leaked => " !",
                Verdict::GraphOnly => " .",
            });
        }
        println!("{:32}{row}", a.name);
    }

    println!("\ndefense key:");
    for (i, d) in matrix.defenses.iter().enumerate() {
        let member = &d.members()[0];
        println!(
            "  {:>2}  {} — strategy {} ({})",
            i,
            d.name(),
            member.strategy.label(),
            member.origin
        );
    }

    let false_senses = matrix.false_senses();
    println!(
        "\n{} of {} cells are §V-B 'false sense of security' pairs — the",
        false_senses.len(),
        matrix.cells().len()
    );
    println!("strategy would close the leak path, but the mechanism inserts its");
    println!("ordering at a different node than this attack's missing edge:");
    for cell in false_senses.iter().take(8) {
        println!("  - {} vs {}", cell.defense, cell.attack);
    }
    if false_senses.len() > 8 {
        println!(
            "  … and {} more (see CampaignMatrix::to_csv)",
            false_senses.len() - 8
        );
    }

    // A multi-axis knob grid on top of the same registries: the
    // branch-history rows (Spectre v2 / Retbleed) swept over predictor
    // flavors — the slice where the two variants diverge (RSB stuffing
    // stops neither a poisoned BTB nor Retbleed's underflow fallback;
    // flushing stops both).
    let grid = CampaignSpec::builder(UarchConfig::default())
        .attacks([
            attacks::find(attacks::names::SPECTRE_V2).expect("registered"),
            attacks::find(attacks::names::RETBLEED).expect("registered"),
        ])
        .defenses(Vec::new())
        .axis(Knob::Predictor, PredictorFlavor::all())
        .build();
    let grid_matrix = CampaignMatrix::run(&grid)?;
    println!("\npredictor-flavor grid (undefended leak verdicts):");
    for row in grid_matrix.baselines() {
        println!(
            "  {:<12} {:<18} leaked = {}",
            row.info.name, grid_matrix.configs[row.config], row.leaked
        );
    }
    Ok(())
}
