//! The full defense-effectiveness matrix: every Table-III attack run under
//! every Table-II/§V-B defense, verdicts printed as a grid — the executable
//! version of the paper's claim that each defense works exactly where its
//! inserted security dependency matches the attack's missing edge.
//!
//! Run with: `cargo run --release --example defense_evaluation`

use specgraph::prelude::*;
use uarch::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = defenses::catalog();
    let atks = attacks::catalog();
    let base = UarchConfig::default();

    println!("Defense-effectiveness matrix ({} defenses × {} attacks)\n", ds.len(), atks.len());
    println!("legend: '#' blocked, '!' leaked, '.' software-only (graph-level)\n");

    // Column header: defense indices.
    println!("{:32} {}", "attack \\ defense",
        (0..ds.len()).map(|i| format!("{:>2}", i)).collect::<String>());
    for a in &atks {
        let mut row = String::new();
        for d in &ds {
            let v = defenses::verify(d, a.as_ref(), &base)?;
            row.push_str(match v {
                Verdict::Blocked => " #",
                Verdict::Leaked => " !",
                Verdict::GraphOnly => " .",
            });
        }
        println!("{:32}{row}", a.info().name);
    }

    println!("\ndefense key:");
    for (i, d) in ds.iter().enumerate() {
        println!("  {:>2}  {} — strategy {} ({})", i, d.name, d.strategy.label(), d.origin);
    }

    println!("\nEach '!' is a defense whose security dependency sits at a");
    println!("different node than the attack's missing edge — the paper's");
    println!("'false sense of security' cases (e.g. KPTI vs Spectre v1).");
    Ok(())
}
