//! A guided, instrumented walk through the Spectre v1 attack (Listing 1 +
//! Figure 1 of the paper): all five attack steps, the micro-architectural
//! event trace, and the Flush+Reload recovery.
//!
//! Run with: `cargo run --example spectre_v1_end_to_end`

use attacks::common::{probe_channel, BOUND_CELL, BOUND_PTR, PROBE_BASE, SECRET, VICTIM_ARRAY};
use specgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(UarchConfig::default());

    // -- Step 0: know where the secret is (we plant it out of bounds). ---
    m.map_user_page(VICTIM_ARRAY)?;
    m.map_user_page(BOUND_PTR)?;
    m.write_u64(BOUND_PTR, BOUND_CELL)?;
    m.write_u64(BOUND_CELL, 8)?; // Array_Victim_Size
    m.write_u64(VICTIM_ARRAY + 64 * 8, SECRET)?;
    for i in 0..8 {
        m.write_u64(VICTIM_ARRAY + i * 8, 1)?;
    }
    println!("step 0: secret {SECRET:#x} planted at Array_Victim[64] (bounds = 8)");

    // -- The victim gadget (Listing 1). -----------------------------------
    let program = attacks::spectre_v1::SpectreV1::program()?;
    println!("\nvictim gadget:\n{}", isa::asm::disassemble(&program));

    // -- Step 1(b): mis-train the bounds-check branch with legal indices. -
    for i in 0..4 {
        m.set_reg(Reg::R0, i % 8);
        m.set_reg(Reg::R1, VICTIM_ARRAY);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.run(&program)?;
    }
    println!(
        "step 1b: branch predictor trained not-taken ({} branches tracked)",
        m.predictors().pht.len()
    );

    // -- Step 1(a): establish the channel: flush the probe array. --------
    let channel = probe_channel();
    channel.prepare(&mut m)?;
    println!("step 1a: probe array flushed ({} slots)", channel.slots());

    // -- Step 2: delay the authorization (flush the bound pointer chain). -
    m.flush_line(BOUND_PTR)?;
    m.flush_line(BOUND_CELL)?;
    m.clear_events();

    // -- Steps 3 & 4 happen inside the speculative window. ----------------
    m.set_reg(Reg::R0, 64); // out-of-bounds x
    m.set_reg(Reg::R1, VICTIM_ARRAY);
    m.set_reg(Reg::R2, BOUND_PTR);
    m.set_reg(Reg::R3, PROBE_BASE);
    let result = m.run(&program)?;
    println!("\nattack run: {result}");
    println!("\nmicro-architectural trace:");
    for e in m.events() {
        println!("  {e}");
    }

    // -- Step 5: receive — reload and time every slot. --------------------
    let reading = channel.receive(&mut m)?;
    println!("\nstep 5: receiver verdict: {reading}");
    match reading.recovered {
        Some(v) if v as u64 == SECRET => {
            println!("SECRET RECOVERED: {v:#x} — the race was won.");
        }
        other => println!("no leak ({other:?})"),
    }

    // The architectural state never saw the secret:
    println!(
        "\narchitectural r6 = {:#x} (the transient value was squashed)",
        m.reg(Reg::R6)
    );
    Ok(())
}
