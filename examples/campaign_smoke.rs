//! CI smoke for the campaign pipeline: run a tiny two-axis knob grid,
//! save the matrix as JSON, load it back, and re-run incrementally —
//! asserting the load round-trips bit-for-bit and the incremental pass
//! evaluates zero cells. Also exercises the shard/merge path.
//!
//! Run with: `cargo run --release --example campaign_smoke`

use specgraph::prelude::*;
use uarch::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-axis grid: 2 ROB depths × 2 predictor flavors = 4 config slices.
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks([
            attacks::find(attacks::names::SPECTRE_V1).expect("registered"),
            attacks::find(attacks::names::SPECTRE_V2).expect("registered"),
            attacks::find(attacks::names::RETBLEED).expect("registered"),
        ])
        .defenses(
            [defenses::names::LFENCE, defenses::names::NDA]
                .iter()
                .map(|n| *defenses::find(n).expect("registered")),
        )
        .axis(Knob::RobDepth, [32usize, 64])
        .axis(
            Knob::Predictor,
            [PredictorFlavor::Shared, PredictorFlavor::FlushOnSwitch],
        )
        .build();
    println!("grid: {} configs", spec.configs.len());
    for nc in &spec.configs {
        println!("  - {}", nc.name);
    }

    let matrix = CampaignMatrix::run(&spec)?;
    let (a, d, c) = matrix.shape();
    println!("matrix: {a} attacks × {d} defenses × {c} configs");
    assert_eq!((a, d, c), (3, 2, 4));

    // Sharded execution merges to the identical matrix — with every part
    // round-tripped through its JSON file, exactly as the `campaign` CLI
    // ships shards between processes.
    let parts = spec
        .shards(3)
        .iter()
        .enumerate()
        .map(
            |(i, shard)| -> Result<CampaignPart, Box<dyn std::error::Error>> {
                let path = std::env::temp_dir().join(format!(
                    "campaign-smoke-part{i}-{}.json",
                    std::process::id()
                ));
                shard.run()?.save_json(&path)?;
                let part = CampaignPart::load_json(&path)?;
                std::fs::remove_file(&path).ok();
                assert_eq!(part.spec_fingerprint(), spec.fingerprint());
                Ok(part)
            },
        )
        .collect::<Result<Vec<_>, _>>()?;
    let merged = CampaignMatrix::merge(parts)?;
    assert_eq!(merged.to_json(), matrix.to_json());
    println!("shard/merge: 3 part files merged bit-identically");

    // JSON round trip through a file.
    let path = std::env::temp_dir().join(format!("campaign-smoke-{}.json", std::process::id()));
    matrix.save_json(&path)?;
    let loaded = CampaignMatrix::load_json(&path)?;
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.to_json(), matrix.to_json());
    println!("save/load: JSON round trip is bit-identical");

    // Incremental re-run against the loaded matrix: nothing to do.
    let (again, report) = CampaignMatrix::run_incremental(&spec, Some(&loaded))?;
    assert_eq!(report.evaluated, 0, "unchanged spec must reuse every cell");
    assert_eq!(report.reused, spec.total_tasks());
    assert_eq!(again.to_json(), matrix.to_json());
    println!(
        "incremental: 0 evaluated, {} reused — campaign smoke OK",
        report.reused
    );

    // Defense-stack sweep: the Linux bundle and STT side by side, with
    // the stack cells round-tripping through JSON like singletons do.
    let stacked = CampaignSpec::builder(UarchConfig::default())
        .attacks([
            attacks::find(attacks::names::SPECTRE_V1).expect("registered"),
            attacks::find(attacks::names::SPECTRE_V2).expect("registered"),
            attacks::find(attacks::names::BHI).expect("registered"),
        ])
        .defense_stacks([
            defenses::presets::linux_default(),
            DefenseStack::parse("stt").expect("parses"),
        ])
        .build();
    let stack_matrix = CampaignMatrix::run(&stacked)?;
    let linux = defenses::presets::linux_default();
    let v2 = stack_matrix
        .cell(attacks::names::SPECTRE_V2, linux.name(), 0)
        .expect("stack cell");
    assert_eq!(v2.evaluation.mechanism, Verdict::Blocked);
    let v1 = stack_matrix
        .cell(attacks::names::SPECTRE_V1, linux.name(), 0)
        .expect("stack cell");
    assert!(
        v1.false_sense_of_security(),
        "the Linux bundle is the stack-level §V-B false sense vs v1"
    );
    let reloaded = CampaignMatrix::from_json(&stack_matrix.to_json())?;
    assert_eq!(reloaded.to_json(), stack_matrix.to_json());
    println!(
        "stacks: '{}' blocks Spectre v2, still leaks Spectre v1 (false sense) — stack smoke OK",
        linux.name()
    );
    Ok(())
}
