//! Offline stand-in for the `criterion` crate: the API subset this
//! workspace's benches use. Each benchmark runs a short warm-up, then a
//! timed batch, and prints the mean time per iteration. Deterministic
//! iteration counts keep runs reproducible; see `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall time for one benchmark's measured batch.
const TARGET: Duration = Duration::from_millis(200);
/// Warm-up wall time before measuring.
const WARMUP: Duration = Duration::from_millis(50);

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of just a parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures and accumulates timing.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((TARGET.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / batch as f64;
        self.iters = batch;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.mean_ns;
    let human = if per >= 1e9 {
        format!("{:.3} s", per / 1e9)
    } else if per >= 1e6 {
        format!("{:.3} ms", per / 1e6)
    } else if per >= 1e3 {
        format!("{:.3} µs", per / 1e3)
    } else {
        format!("{per:.1} ns")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / per * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / per * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<56} {human:>12}/iter  [{} iters]{extra}", b.iters);
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (sample counts are derived from wall time here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::default();
        routine(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_label()),
            &b,
            self.throughput,
        );
        self
    }

    /// Benchmarks `routine` with an explicit input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::default();
        routine(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_label()),
            &b,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Things usable as a benchmark label.
pub trait IntoLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::default();
        routine(&mut b);
        report(&name.into_label(), &b, None);
        self
    }
}

/// Declares a group function invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
