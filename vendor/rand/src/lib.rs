//! Offline stand-in for the `rand` crate: the API subset this workspace
//! uses (`StdRng::seed_from_u64`, `gen_bool`, `gen_range`, `next_u64`),
//! backed by SplitMix64. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly like rand's float protocol.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_plausible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut hits = 0;
        for _ in 0..10_000 {
            if a.gen_bool(0.25) {
                hits += 1;
            }
        }
        assert!(
            (2_000..3_000).contains(&hits),
            "gen_bool(0.25) gave {hits}/10000"
        );
        for _ in 0..100 {
            let v = a.gen_range(5..9);
            assert!((5..9).contains(&v));
        }
    }
}
