//! Offline stand-in for the `proptest` crate: the API subset this
//! workspace's property tests use, with deterministic case generation and
//! no shrinking. See `vendor/README.md` for scope and semantics.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic per-case RNG.

    /// How many cases a property runs, etc.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator (SplitMix64) seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case` of a property.
        #[must_use]
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F)
                    ^ 0x2545_F491_4F6C_DD1D,
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates an intermediate value, then a strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Boxes a strategy for heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> std::fmt::Debug for OneOf<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "OneOf({} arms)", self.arms.len())
        }
    }

    impl<V> OneOf<V> {
        /// A uniform choice among `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` over a small set of primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Wraps raw randomness.
        #[must_use]
        pub fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// This index resolved against a collection of `size` elements.
        ///
        /// # Panics
        ///
        /// Panics if `size` is zero.
        #[must_use]
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index(0)");
            (self.raw % size as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::…` paths as the prelude exposes them.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property (here: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (here: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Binds `pat in strategy` parameters of a property (internal).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident;) => {};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch [$cfg] $($rest)*);
    };
    (@munch [$cfg:expr] $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $crate::__proptest_bind!(rng; $($params)*);
                $body
            }
        }
        $crate::proptest!(@munch [$cfg] $($rest)*);
    };
    (@munch [$cfg:expr]) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in range; maps apply.
        #[test]
        fn ranges_and_maps(v in arb_even(), small in 3u8..7, idx in any::<prop::sample::Index>()) {
            prop_assert!(v.is_multiple_of(2));
            prop_assert!((3..7).contains(&small));
            prop_assert!(idx.index(5) < 5);
        }

        /// Vectors respect their size range; oneof picks valid arms.
        #[test]
        fn vecs_and_oneof(
            xs in prop::collection::vec(prop_oneof![Just(1u32), Just(2u32), 5u32..8], 2..10),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2 || (5..8).contains(&x)));
        }

        /// flat_map chains strategies; tuples and mut patterns bind.
        #[test]
        fn flat_map_and_tuples(mut pair in (1usize..4).prop_flat_map(|n| (Just(n), 0usize..4))) {
            pair.1 %= 4;
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
