//! Prime+Probe: the *miss + access* channel (§II-C).
//!
//! The receiver fills ("primes") cache sets with its own lines, waits for
//! the sender, then probes its lines: a set where the sender's access
//! evicted a primed line probes slow, revealing which set — and hence which
//! symbol — the sender touched. Unlike Flush+Reload it needs no shared
//! memory.

use crate::reading::Reading;
use uarch::cache::LINE_SIZE;
use uarch::{Machine, UarchError};

/// A Prime+Probe channel over a contiguous range of cache sets.
///
/// Symbol `i` is carried by an access that maps to cache set
/// `base_set + i`. The receiver owns a prime buffer whose lines cover every
/// monitored set across the full associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeProbe {
    prime_base: u64,
    symbols: usize,
    base_set: usize,
}

impl PrimeProbe {
    /// Creates a channel whose prime buffer starts at `prime_base`
    /// (must be 4 KiB aligned so that it starts at cache set 0) carrying
    /// `symbols` distinct symbols on consecutive sets.
    ///
    /// # Panics
    ///
    /// Panics if `prime_base` is not page aligned.
    #[must_use]
    pub fn new(prime_base: u64, symbols: usize) -> Self {
        Self::with_base_set(prime_base, symbols, 0)
    }

    /// Creates a channel monitoring sets `base_set .. base_set + symbols`.
    ///
    /// Offsetting the monitored range away from the sets the victim's own
    /// working data maps to removes self-interference noise — the receiver
    /// tuning every real Prime+Probe attack performs.
    ///
    /// # Panics
    ///
    /// Panics if `prime_base` is not page aligned.
    #[must_use]
    pub fn with_base_set(prime_base: u64, symbols: usize, base_set: usize) -> Self {
        assert_eq!(prime_base % 4096, 0, "prime buffer must be page aligned");
        PrimeProbe {
            prime_base,
            symbols,
            base_set,
        }
    }

    /// Number of symbols (monitored sets).
    #[must_use]
    pub fn symbols(&self) -> usize {
        self.symbols
    }

    /// The attacker's prime-line address covering set
    /// `symbol` at way-slot `k` for machine `m`'s geometry.
    fn prime_address(&self, m: &Machine, symbol: usize, k: usize) -> u64 {
        let sets = m.cache().set_count() as u64;
        self.prime_base + ((k as u64) * sets + (self.base_set + symbol) as u64) * LINE_SIZE
    }

    /// The *sender's* address for symbol `i` given any sender-side buffer
    /// base (page aligned): an address that maps to the same set the
    /// receiver monitors for `i` (with this channel's set offset).
    #[must_use]
    pub fn sender_address_for(&self, sender_base: u64, i: usize) -> u64 {
        assert_eq!(sender_base % 4096, 0, "sender buffer must be page aligned");
        sender_base + ((self.base_set + i) as u64) * LINE_SIZE
    }

    /// [`PrimeProbe::sender_address_for`] with no set offset.
    #[must_use]
    pub fn sender_address(sender_base: u64, i: usize) -> u64 {
        assert_eq!(sender_base % 4096, 0, "sender buffer must be page aligned");
        sender_base + (i as u64) * LINE_SIZE
    }

    /// Primes: fills every monitored set with the receiver's own lines.
    ///
    /// # Errors
    ///
    /// Propagates [`UarchError`] from mapping/reads.
    pub fn prime(&self, m: &mut Machine) -> Result<(), UarchError> {
        let ways = m.cache().way_count();
        for sym in 0..self.symbols {
            for k in 0..ways {
                let addr = self.prime_address(m, sym, k);
                m.map_user_page(addr)?;
                m.timed_read(addr)?;
            }
        }
        Ok(())
    }

    /// Probes: re-reads every primed line; the symbol whose set shows the
    /// most misses is the recovered value.
    ///
    /// # Errors
    ///
    /// Propagates [`UarchError`] from the timed reads.
    pub fn probe(&self, m: &mut Machine) -> Result<Reading, UarchError> {
        let ways = m.cache().way_count() as u64;
        let hit = m.config().cache_hit_latency;
        let miss = m.config().cache_miss_latency;
        // A set is "victim-disturbed" when at least one of its primed ways
        // misses: total latency ≥ (ways-1)*hit + miss.
        let threshold = ways * hit + (miss - hit) / 2;
        let mut totals = Vec::with_capacity(self.symbols);
        for sym in 0..self.symbols {
            let mut total = 0;
            // Probe in reverse priming order so the probe itself does not
            // evict yet-unprobed ways.
            for k in (0..m.cache().way_count()).rev() {
                total += m.timed_read(self.prime_address(m, sym, k))?;
            }
            totals.push(total);
        }
        // Invert the classification: *slow* sets are the signal.
        let hits: Vec<usize> = totals
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t >= threshold)
            .map(|(i, _)| i)
            .collect();
        let recovered = if hits.len() == 1 { Some(hits[0]) } else { None };
        Ok(Reading {
            latencies: totals,
            threshold,
            recovered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn roundtrip_recovers_symbol() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = PrimeProbe::new(0x40_0000, 8);
        ch.prime(&mut m).unwrap();
        // Sender (no shared memory with receiver) touches its own line that
        // maps to monitored set 5.
        let sender = PrimeProbe::sender_address(0x80_0000, 5);
        m.map_user_page(sender).unwrap();
        m.timed_read(sender).unwrap();
        let r = ch.probe(&mut m).unwrap();
        assert_eq!(r.recovered, Some(5));
    }

    #[test]
    fn silence_means_no_signal() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = PrimeProbe::new(0x40_0000, 4);
        ch.prime(&mut m).unwrap();
        let r = ch.probe(&mut m).unwrap();
        assert_eq!(r.recovered, None);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_base_panics() {
        let _ = PrimeProbe::new(0x40_0040, 4);
    }

    #[test]
    fn sender_addresses_stride_by_line() {
        assert_eq!(
            PrimeProbe::sender_address(0x1000, 1) - PrimeProbe::sender_address(0x1000, 0),
            LINE_SIZE
        );
    }

    #[test]
    fn base_set_offsets_the_monitored_range() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = PrimeProbe::with_base_set(0x40_0000, 4, 16);
        ch.prime(&mut m).unwrap();
        let sender = ch.sender_address_for(0x80_0000, 2); // set 18
        m.map_user_page(sender).unwrap();
        m.timed_read(sender).unwrap();
        let r = ch.probe(&mut m).unwrap();
        assert_eq!(r.recovered, Some(2));
    }
}
