//! Channel quality measurement: bandwidth and accuracy over multi-symbol
//! transfers.
//!
//! §II-C observes that "the Flush-Reload attack is faster and less noisy
//! than the other cache covert channel attacks" — this module makes that
//! comparison measurable on the simulator: transmit a message symbol by
//! symbol, count correct receptions, and divide by the cycles consumed.

use crate::flush_reload::FlushReload;
use crate::prime_probe::PrimeProbe;
use uarch::{Machine, UarchError};

/// Result of a multi-symbol transfer experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelQuality {
    /// Symbols transmitted.
    pub transmitted: usize,
    /// Symbols received correctly.
    pub correct: usize,
    /// Total simulated cycles for the whole transfer (send + receive).
    pub cycles: u64,
}

impl ChannelQuality {
    /// Fraction of symbols received correctly.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.transmitted == 0 {
            return 0.0;
        }
        self.correct as f64 / self.transmitted as f64
    }

    /// Throughput in symbols per kilocycle.
    #[must_use]
    pub fn symbols_per_kilocycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.transmitted as f64 * 1000.0 / self.cycles as f64
    }
}

/// Transmits `message` over a Flush+Reload channel (one prepare / send /
/// receive round per symbol) and measures quality.
///
/// # Errors
///
/// Propagates [`UarchError`] from channel operations.
pub fn measure_flush_reload(
    m: &mut Machine,
    channel: &FlushReload,
    message: &[usize],
) -> Result<ChannelQuality, UarchError> {
    let start = m.cycle();
    let mut correct = 0;
    for &sym in message {
        channel.prepare(m)?;
        m.touch(channel.slot_address(sym))?; // the sender
        if channel.receive(m)?.recovered == Some(sym) {
            correct += 1;
        }
    }
    Ok(ChannelQuality {
        transmitted: message.len(),
        correct,
        cycles: m.cycle() - start,
    })
}

/// Transmits `message` over a Prime+Probe channel and measures quality.
/// `sender_base` is the sender's (non-shared) page-aligned buffer.
///
/// # Errors
///
/// Propagates [`UarchError`] from channel operations.
pub fn measure_prime_probe(
    m: &mut Machine,
    channel: &PrimeProbe,
    sender_base: u64,
    message: &[usize],
) -> Result<ChannelQuality, UarchError> {
    let start = m.cycle();
    let mut correct = 0;
    for &sym in message {
        channel.prime(m)?;
        let addr = channel.sender_address_for(sender_base, sym);
        m.map_user_page(addr)?;
        m.timed_read(addr)?; // the sender
        if channel.probe(m)?.recovered == Some(sym) {
            correct += 1;
        }
    }
    Ok(ChannelQuality {
        transmitted: message.len(),
        correct,
        cycles: m.cycle() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    fn message(n: usize, symbols: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 7 + 3) % symbols).collect()
    }

    #[test]
    fn flush_reload_is_exact_on_the_simulator() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = FlushReload::new(0x10_0000, 16);
        let msg = message(24, 16);
        let q = measure_flush_reload(&mut m, &ch, &msg).unwrap();
        assert_eq!(q.correct, q.transmitted);
        assert!((q.accuracy() - 1.0).abs() < 1e-12);
        assert!(q.cycles > 0);
        assert!(q.symbols_per_kilocycle() > 0.0);
    }

    #[test]
    fn prime_probe_is_exact_but_slower() {
        let mut m = Machine::new(UarchConfig::default());
        let fr = FlushReload::new(0x10_0000, 8);
        let pp = PrimeProbe::with_base_set(0x40_0000, 8, 32);
        let msg = message(8, 8);
        let qf = measure_flush_reload(&mut m, &fr, &msg).unwrap();
        let qp = measure_prime_probe(&mut m, &pp, 0x80_0000, &msg).unwrap();
        assert_eq!(qf.accuracy(), 1.0);
        assert_eq!(qp.accuracy(), 1.0);
        // §II-C: Flush+Reload is the faster channel — fewer memory touches
        // per symbol (1 probe line vs. ways×sets prime/probe traffic).
        assert!(
            qf.symbols_per_kilocycle() > qp.symbols_per_kilocycle(),
            "F+R {} vs P+P {}",
            qf.symbols_per_kilocycle(),
            qp.symbols_per_kilocycle()
        );
    }

    #[test]
    fn empty_message_is_degenerate() {
        let q = ChannelQuality {
            transmitted: 0,
            correct: 0,
            cycles: 0,
        };
        assert_eq!(q.accuracy(), 0.0);
        assert_eq!(q.symbols_per_kilocycle(), 0.0);
    }
}
