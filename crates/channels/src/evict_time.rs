//! Evict+Time: the *miss + operation* channel (§II-C).
//!
//! The attacker measures the **whole-operation** time of a victim program,
//! then evicts a chosen cache set and re-measures: if the victim slowed
//! down, it uses a line in the evicted set. Repeating over sets maps the
//! victim's access footprint without any per-access timing.

use isa::Program;
use uarch::cache::LINE_SIZE;
use uarch::{Machine, UarchError};

/// Measures a victim operation's duration in cycles.
///
/// # Errors
///
/// Propagates [`UarchError`] from the run.
pub fn time_operation(m: &mut Machine, victim: &Program) -> Result<u64, UarchError> {
    Ok(m.run(victim)?.cycles)
}

/// Evicts the cache set that `target_set_addr` maps to by reading
/// `ways` conflicting lines from the attacker's eviction buffer.
///
/// # Errors
///
/// Propagates [`UarchError`] from mapping/reads.
pub fn evict_set(m: &mut Machine, evict_base: u64, target_set_addr: u64) -> Result<(), UarchError> {
    let sets = m.cache().set_count() as u64;
    let target_set = (target_set_addr / LINE_SIZE) % sets;
    for k in 0..m.cache().way_count() as u64 {
        let addr = evict_base + (k * sets + target_set) * LINE_SIZE;
        m.map_user_page(addr)?;
        m.timed_read(addr)?;
    }
    Ok(())
}

/// One Evict+Time probe: warm the victim, time a warm run, evict the set of
/// `probe_addr`, re-time. Returns `(warm_cycles, evicted_cycles)`; a
/// significant increase means the victim uses that set.
///
/// # Errors
///
/// Propagates [`UarchError`] from the runs.
pub fn probe(
    m: &mut Machine,
    victim: &Program,
    evict_base: u64,
    probe_addr: u64,
) -> Result<(u64, u64), UarchError> {
    // Warm-up run populates the victim's working set.
    time_operation(m, victim)?;
    let warm = time_operation(m, victim)?;
    evict_set(m, evict_base, probe_addr)?;
    let evicted = time_operation(m, victim)?;
    Ok((warm, evicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{ProgramBuilder, Reg};
    use uarch::UarchConfig;

    /// A victim that loads one secret-dependent line.
    fn victim(addr: u64) -> Program {
        ProgramBuilder::new()
            .imm(Reg::R0, addr)
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap()
    }

    #[test]
    fn eviction_slows_victim_that_uses_the_set() {
        let mut m = Machine::new(UarchConfig::default());
        let secret_addr = 0x30_0000;
        m.map_user_page(secret_addr).unwrap();
        let v = victim(secret_addr);
        let (warm, evicted) = probe(&mut m, &v, 0x60_0000, secret_addr).unwrap();
        assert!(
            evicted > warm,
            "evicting the victim's set must slow it: warm={warm} evicted={evicted}"
        );
    }

    #[test]
    fn eviction_of_unused_set_changes_nothing() {
        let mut m = Machine::new(UarchConfig::default());
        let secret_addr = 0x30_0000;
        m.map_user_page(secret_addr).unwrap();
        let v = victim(secret_addr);
        // Probe a different set (offset by one line).
        let (warm, evicted) = probe(&mut m, &v, 0x60_0000, secret_addr + LINE_SIZE).unwrap();
        assert_eq!(warm, evicted);
    }
}
