//! Cache collision: the *hit + operation* channel (§II-C).
//!
//! The attacker pre-loads ("warms") candidate data shared with the victim,
//! then times a whole victim operation: the operation runs *faster* when
//! the victim's secret-dependent access collides with (hits on) the warmed
//! line. Scanning candidates, the fastest operation reveals the secret —
//! the inverse polarity of Evict+Time.

use isa::Program;
use uarch::{Machine, UarchError};

/// Times the victim operation after warming candidate line `i` of
/// `candidates`, for every candidate; returns the per-candidate cycles.
///
/// The victim's secret-dependent address set should overlap exactly one
/// candidate; that run is the fastest.
///
/// # Errors
///
/// Propagates [`UarchError`] from runs and cache operations.
pub fn scan(m: &mut Machine, victim: &Program, candidates: &[u64]) -> Result<Vec<u64>, UarchError> {
    let mut timings = Vec::with_capacity(candidates.len());
    for &cand in candidates {
        // Reset: flush every candidate so only the warmed one is resident.
        for &c in candidates {
            m.map_user_page(c)?;
            m.flush_line(c)?;
        }
        m.touch(cand)?;
        timings.push(m.run(victim)?.cycles);
    }
    Ok(timings)
}

/// Runs [`scan`] and returns the index of the fastest candidate if it is
/// uniquely fastest, else `None`.
///
/// # Errors
///
/// Propagates [`UarchError`] from [`scan`].
pub fn recover(
    m: &mut Machine,
    victim: &Program,
    candidates: &[u64],
) -> Result<Option<usize>, UarchError> {
    let timings = scan(m, victim, candidates)?;
    let min = *timings
        .iter()
        .min()
        .ok_or(UarchError::Unmapped { vaddr: 0 })?;
    let fastest: Vec<usize> = timings
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t == min)
        .map(|(i, _)| i)
        .collect();
    Ok(if fastest.len() == 1 {
        Some(fastest[0])
    } else {
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{ProgramBuilder, Reg};
    use uarch::UarchConfig;

    #[test]
    fn collision_reveals_victim_address() {
        let mut m = Machine::new(UarchConfig::default());
        // Victim touches candidate #2's line as its secret-dependent access.
        let candidates: Vec<u64> = (0..4u64).map(|i| 0x30_0000 + i * 4096).collect();
        for &c in &candidates {
            m.map_user_page(c).unwrap();
        }
        let victim = ProgramBuilder::new()
            .imm(Reg::R0, candidates[2])
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        let got = recover(&mut m, &victim, &candidates).unwrap();
        assert_eq!(got, Some(2));
    }

    #[test]
    fn no_overlap_gives_no_unique_winner() {
        let mut m = Machine::new(UarchConfig::default());
        let candidates: Vec<u64> = (0..3u64).map(|i| 0x30_0000 + i * 4096).collect();
        // Victim touches none of the candidates.
        m.map_user_page(0x77_0000).unwrap();
        let victim = ProgramBuilder::new()
            .imm(Reg::R0, 0x77_0000)
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        let got = recover(&mut m, &victim, &candidates).unwrap();
        assert_eq!(got, None);
    }
}
