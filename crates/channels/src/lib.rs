//! # `channels` — cache covert and side channels
//!
//! Implementations of the four cache-timing channel classes of §II-C of
//! "New Models for Understanding and Reasoning about Speculative Execution
//! Attacks" (HPCA 2021), built on the [`uarch`] simulator:
//!
//! | class | example | module |
//! |---|---|---|
//! | hit + access | Flush+Reload | [`flush_reload`] |
//! | miss + access | Prime+Probe | [`prime_probe`] |
//! | miss + operation | Evict+Time | [`evict_time`] |
//! | hit + operation | cache collision | [`collision`] |
//!
//! The *sender* side of a speculative attack is a transient memory access
//! performed by the victim/gadget (the "Load R to Cache" node of the
//! paper's attack graphs); the *receiver* side is implemented here as timed
//! architectural reads ([`uarch::Machine::timed_read`], the simulator's
//! `rdtsc; load; rdtsc` primitive).
//!
//! ```
//! use channels::flush_reload::FlushReload;
//! use uarch::{Machine, UarchConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(UarchConfig::default());
//! let ch = FlushReload::new(0x10_0000, 16);
//! ch.prepare(&mut m)?;               // flush all probe lines
//! m.touch(ch.slot_address(9))?;      // the covert "send": touch slot 9
//! let reading = ch.receive(&mut m)?; // reload & time
//! assert_eq!(reading.recovered, Some(9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collision;
pub mod evict_time;
pub mod flush_reload;
pub mod prime_probe;
pub mod stats;

mod reading;

pub use reading::Reading;
pub use stats::ChannelQuality;
