//! Flush+Reload: the *hit + access* channel (§II-C), the default covert
//! channel of most speculative attacks and of this reproduction.
//!
//! The receiver flushes a shared probe array (one page per symbol to defeat
//! prefetching, as in the paper's Listing 1), waits for the sender to touch
//! the slot indexed by the secret, then reloads every slot and times it:
//! one fast (hit) slot reveals the secret.

use crate::reading::Reading;
use uarch::{Machine, UarchError};

/// Bytes between consecutive probe slots: one 4 KiB page per symbol (as in
/// `Array_A[secret * 4096]` of the paper's Listing 1) **plus one cache
/// line**. The extra line skews consecutive slots into distinct cache sets
/// of the simulator's single-level 64-set cache; real attacks get the same
/// property from the many-set last-level cache, where page-strided probes
/// do not collide.
pub const SLOT_STRIDE: u64 = 4096 + 64;

/// A Flush+Reload channel over `slots` page-strided probe lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReload {
    base: u64,
    slots: usize,
}

impl FlushReload {
    /// Creates a channel with probe array at `base` (page aligned
    /// recommended) and `slots` symbols.
    #[must_use]
    pub fn new(base: u64, slots: usize) -> Self {
        FlushReload { base, slots }
    }

    /// A channel sized for one byte of secret (256 slots) — the classic
    /// Spectre/Meltdown configuration.
    #[must_use]
    pub fn for_byte(base: u64) -> Self {
        Self::new(base, 256)
    }

    /// The probe array base address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of symbol slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The virtual address of probe slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.slots()`.
    #[must_use]
    pub fn slot_address(&self, i: usize) -> u64 {
        assert!(i < self.slots, "slot {i} out of range");
        self.base + (i as u64) * SLOT_STRIDE
    }

    /// The hit/miss decision threshold for `m`'s latency configuration.
    #[must_use]
    pub fn threshold(m: &Machine) -> u64 {
        (m.config().cache_hit_latency + m.config().cache_miss_latency) / 2
    }

    /// Step 1(a) of the paper's attack flow: maps the probe pages and
    /// flushes every slot, establishing the channel.
    ///
    /// # Errors
    ///
    /// Propagates [`UarchError`] from mapping/flushing.
    pub fn prepare(&self, m: &mut Machine) -> Result<(), UarchError> {
        for i in 0..self.slots {
            let addr = self.slot_address(i);
            m.map_user_page(addr)?;
            m.flush_line(addr)?;
        }
        Ok(())
    }

    /// Step 5 (receive): reloads every slot with timed reads and classifies.
    ///
    /// # Errors
    ///
    /// Propagates [`UarchError`] from the timed reads.
    pub fn receive(&self, m: &mut Machine) -> Result<Reading, UarchError> {
        let threshold = Self::threshold(m);
        let mut latencies = Vec::with_capacity(self.slots);
        for i in 0..self.slots {
            latencies.push(m.timed_read(self.slot_address(i))?);
        }
        Ok(Reading::classify(latencies, threshold))
    }

    /// Convenience: which slots are currently resident, via the cache
    /// oracle (no state perturbation) — useful in tests.
    ///
    /// # Errors
    ///
    /// Propagates [`UarchError`] from translation.
    pub fn resident_slots(&self, m: &Machine) -> Result<Vec<usize>, UarchError> {
        let mut v = Vec::new();
        for i in 0..self.slots {
            if m.cache_contains(self.slot_address(i))? {
                v.push(i);
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn roundtrip_recovers_symbol() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = FlushReload::new(0x10_0000, 32);
        ch.prepare(&mut m).unwrap();
        assert!(ch.resident_slots(&m).unwrap().is_empty());
        m.touch(ch.slot_address(17)).unwrap();
        let r = ch.receive(&mut m).unwrap();
        assert_eq!(r.recovered, Some(17));
    }

    #[test]
    fn no_send_means_no_signal() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = FlushReload::new(0x10_0000, 8);
        ch.prepare(&mut m).unwrap();
        let r = ch.receive(&mut m).unwrap();
        assert_eq!(r.recovered, None);
        assert!(r.hit_slots().is_empty());
    }

    #[test]
    fn for_byte_has_256_slots() {
        let ch = FlushReload::for_byte(0x20_0000);
        assert_eq!(ch.slots(), 256);
        assert_eq!(ch.slot_address(1) - ch.slot_address(0), SLOT_STRIDE);
        assert_eq!(ch.base(), 0x20_0000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        let _ = FlushReload::new(0, 4).slot_address(4);
    }

    #[test]
    fn reprepare_clears_previous_send() {
        let mut m = Machine::new(UarchConfig::default());
        let ch = FlushReload::new(0x10_0000, 8);
        ch.prepare(&mut m).unwrap();
        m.touch(ch.slot_address(3)).unwrap();
        ch.prepare(&mut m).unwrap();
        let r = ch.receive(&mut m).unwrap();
        assert_eq!(r.recovered, None);
    }
}
