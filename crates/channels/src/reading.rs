//! Receiver measurement results.

use std::fmt;

/// The outcome of one receive pass over an access-based channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reading {
    /// Measured latency per slot.
    pub latencies: Vec<u64>,
    /// The decision threshold used (latencies strictly below it count as
    /// hits).
    pub threshold: u64,
    /// The recovered symbol: the single slot that hit, if exactly one did.
    /// `None` when zero or multiple slots hit (no clean signal).
    pub recovered: Option<usize>,
}

impl Reading {
    /// Classifies latencies against a threshold and derives the recovered
    /// symbol.
    #[must_use]
    pub fn classify(latencies: Vec<u64>, threshold: u64) -> Self {
        let hits: Vec<usize> = latencies
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l < threshold)
            .map(|(i, _)| i)
            .collect();
        let recovered = if hits.len() == 1 { Some(hits[0]) } else { None };
        Reading {
            latencies,
            threshold,
            recovered,
        }
    }

    /// The slots classified as cache hits.
    #[must_use]
    pub fn hit_slots(&self) -> Vec<usize> {
        self.latencies
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l < self.threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Reading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.recovered {
            Some(i) => write!(f, "recovered symbol {i}"),
            None => write!(f, "no clean signal ({} hits)", self.hit_slots().len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hit_recovers() {
        let r = Reading::classify(vec![80, 80, 4, 80], 42);
        assert_eq!(r.recovered, Some(2));
        assert_eq!(r.hit_slots(), vec![2]);
        assert!(r.to_string().contains("2"));
    }

    #[test]
    fn zero_or_multiple_hits_is_none() {
        assert_eq!(Reading::classify(vec![80, 80], 42).recovered, None);
        let r = Reading::classify(vec![4, 4, 80], 42);
        assert_eq!(r.recovered, None);
        assert_eq!(r.hit_slots(), vec![0, 1]);
        assert!(r.to_string().contains("no clean signal"));
    }

    #[test]
    fn threshold_is_strict() {
        let r = Reading::classify(vec![42, 41], 42);
        assert_eq!(r.recovered, Some(1));
    }
}
