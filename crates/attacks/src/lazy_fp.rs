//! Lazy FP — stale floating-point register leakage (Figure 5): on a lazy
//! FPU context switch, the first FP instruction of the new context faults
//! ("FPU owner check"), but transiently reads the *previous* context's
//! physical FP registers.

use crate::common::{finish, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig5_special_register;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, FReg, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Lazy FP state leakage.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyFp;

impl Attack for LazyFp {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::LAZY_FP,
            cve: Some("CVE-2018-3665"),
            impact: "Leak of FPU state",
            authorization: "FPU owner check",
            illegal_access: "Read stale FPU state",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig5_special_register("Permission Check", "Read from FPU", SecretSource::Fpu)
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        // The victim computes with the secret in f0…
        let victim = m.current_context();
        m.set_fpu_reg(victim, 0, SECRET);
        // …then the OS switches to the attacker. Under lazy switching the
        // physical FPU still holds the victim's registers.
        let attacker = m.add_context(Privilege::User, ExceptionBehavior::Halt);
        m.switch_context(attacker)?;

        let program = ProgramBuilder::new()
            .fpmov(Reg::R6, FReg::new(0)) // FPU owner check races with read
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0)
            .label("done")
            .map_err(AttackError::Isa)?
            .halt()
            .build()
            .map_err(AttackError::Isa)?;
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&program)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;

    #[test]
    fn lazy_fp_leaks_on_baseline() {
        let out = LazyFp.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.transient_forwards >= 1);
    }

    #[test]
    fn blocked_by_eager_fpu_switch() {
        // The industry fix: save/restore FP state eagerly on every context
        // switch — there is no stale state to read.
        let out = LazyFp
            .run(&UarchConfig::builder().lazy_fpu(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_no_transient_forwarding() {
        let out = LazyFp
            .run(&UarchConfig::builder().transient_forwarding(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_nda() {
        let out = LazyFp
            .run(&UarchConfig::builder().nda(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn architectural_read_after_switch_sees_zero() {
        // After the #NM-style fault the FPU is switched eagerly and the
        // attacker's own (zero) registers are read architecturally.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        let victim = m.current_context();
        m.set_fpu_reg(victim, 0, SECRET);
        let attacker = m.add_context(Privilege::User, ExceptionBehavior::Halt);
        m.switch_context(attacker).unwrap();
        let p = ProgramBuilder::new()
            .fpmov(Reg::R6, FReg::new(0))
            .halt()
            .build()
            .unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.reg(Reg::R6), 0);
    }
}
