//! Zenbleed (CVE-2023-20593) — stale vector-register leakage in the shadow
//! of a mispredicted branch.
//!
//! On affected Zen 2 cores, a `vzeroupper` executed speculatively and then
//! rolled back leaves the physical upper-ymm halves marked free while the
//! register file still holds another sibling's data; the next consumer
//! reads a stale value. In this model the analog is the lazy-FPU register
//! file: the victim's FP state is still physically resident while the
//! attacker runs, and an `fpmov` placed behind a slow-resolving,
//! mistrained branch reads it *transiently* — a Figure-1-shaped graph
//! (branch-resolution authorization) over a Figure-5 secret source
//! (stale FPU registers).
//!
//! Unlike [`crate::lazy_fp::LazyFp`], the faulting read never retires:
//! the branch squash both hides the fault *and* provides the window, which
//! is what lets the attack be replayed indefinitely without tripping the
//! eager #NM-handler switch.

use crate::common::{
    finish, probe_channel, BOUND_CELL, BOUND_PTR, PROBE_BASE, PROBE_STRIDE, SECRET,
};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, FReg, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Zenbleed: use-after-free of a physical vector register.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZenBleed;

/// The "feature flag" value stored at [`BOUND_CELL`]; trigger values below
/// it fall through into the gadget (the training direction), values at or
/// above it resolve the branch taken (the attack direction).
const FLAG: u64 = 1;

/// Trigger value used by the attack run: `TRIGGER >= FLAG`, so the branch
/// architecturally skips the gadget — it only ever runs transiently.
const TRIGGER: u64 = 8;

impl ZenBleed {
    /// The attacker's own gadget. Register conventions: `r0` — trigger,
    /// `r2` — `&flag_ptr` (two flushed hops: the speculation window),
    /// `r3` — probe array base.
    ///
    /// # Errors
    ///
    /// [`AttackError::Isa`] if assembly fails (it cannot for this fixed
    /// program).
    pub fn program() -> Result<Program, AttackError> {
        ProgramBuilder::new()
            .load(Reg::R4, Reg::R2, 0) // flag_ptr -> &flag (miss)
            .load(Reg::R4, Reg::R4, 0) // &flag -> flag     (miss)
            .branch_if(Cond::Ge, Reg::R0, Reg::R4, "out") // rollback point
            .fpmov(Reg::R6, FReg::new(0)) // read stale physical FP state
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0) // send: Load R to cache
            .label("out")
            .map_err(AttackError::Isa)?
            .halt()
            .build()
            .map_err(AttackError::Isa)
    }
}

impl Attack for ZenBleed {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::ZENBLEED,
            cve: Some("CVE-2023-20593"),
            impact: "Leak of stale vector-register state",
            authorization: "Branch resolution: vzeroupper rollback",
            illegal_access: "Read stale FP/SIMD register",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Branch resolution: vzeroupper rollback",
            "Read stale FP register",
            SecretSource::Fpu,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_user_page(BOUND_PTR)?;
        m.write_u64(BOUND_PTR, BOUND_CELL)?;
        m.write_u64(BOUND_CELL, FLAG)?;
        let program = Self::program()?;

        // Step 1: the attacker trains its own branch not-taken. It still
        // owns the FPU, so the gadget's fpmov reads the attacker's own
        // (zero) f0 and the zero-guard keeps the channel clean.
        for _ in 0..4 {
            m.set_reg(Reg::R0, 0);
            m.set_reg(Reg::R2, BOUND_PTR);
            m.set_reg(Reg::R3, PROBE_BASE);
            m.run(&program)?;
        }

        // Step 2: the victim computes with the secret in f0. Writing FP
        // state switches the physical FPU to the victim; under lazy
        // switching the attacker's next run leaves it resident — the
        // use-after-free window.
        let victim = m.add_context(Privilege::User, ExceptionBehavior::Halt);
        m.set_fpu_reg(victim, 0, SECRET);

        // Step 3: flush the flag chain (delay the branch resolution), pass
        // a trigger that resolves the branch taken, and run. The fpmov
        // executes only in the mispredicted shadow: the stale read forwards
        // and is sent before the squash.
        m.flush_line(BOUND_PTR)?;
        m.flush_line(BOUND_CELL)?;
        probe_channel().prepare(m)?;
        m.clear_events();
        m.set_reg(Reg::R0, TRIGGER);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&program)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn zenbleed_leaks_on_baseline() {
        let out = ZenBleed.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.transient_forwards >= 1);
        assert!(out.squashes >= 1);
    }

    #[test]
    fn fault_never_retires() {
        // The branch squash hides the #NM fault: the run reports no
        // architectural faults at all (contrast with Lazy FP, whose
        // faulting fpmov retires and triggers the eager handler switch).
        let mut m = crate::common::machine_with_channel(&UarchConfig::default()).unwrap();
        let out = ZenBleed.run_in(&mut m).unwrap();
        assert!(out.leaked, "{out}");
        // The attacker still does not own the FPU: no handler ran.
        assert!(!m.fpu().owned_by(m.current_context()));
    }

    #[test]
    fn blocked_by_eager_fpu_switch() {
        let out = ZenBleed
            .run(&UarchConfig::builder().lazy_fpu(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_no_transient_forwarding() {
        let out = ZenBleed
            .run(&UarchConfig::builder().transient_forwarding(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_data_use_defenses() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
        ] {
            let out = ZenBleed.run(&cfg).unwrap();
            assert!(!out.leaked, "{cfg:?}");
        }
    }

    #[test]
    fn graph_names_the_fpu_source() {
        let sa = ZenBleed.graph();
        assert!(sa.graph().find_by_label("Read stale FP register").is_some());
    }
}
