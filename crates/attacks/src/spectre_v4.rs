//! Spectre v4 (Speculative Store Bypass, Spectre-STL) — Figure 6: the
//! memory-disambiguation predictor lets a load bypass an older store whose
//! address is still unresolved, transiently reading *stale* data the store
//! should have overwritten.

use crate::common::{finish, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig6_disambiguation;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::SecurityAnalysis;
use uarch::Machine;

/// The shared location X: holds the stale secret, about to be overwritten.
const LOCATION_X: u64 = 0x58_0000;

/// Cell holding X's address; flushed so the store's address resolves late.
const ADDR_CELL: u64 = 0x59_0000;

/// The value the (slow-addressed) store writes over the secret.
const NEW_VALUE: u64 = 0x11;

/// Victim sequence: overwrite X (via a slowly-computed pointer), then read
/// X and use the result. The disambiguation predictor lets the read bypass
/// the pending store.
///
/// `r2` = `&ADDR_CELL` (flushed), `r10` = X directly, `r11` = new value,
/// `r12` = new value (guard compare), `r3` = probe base.
fn program() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0) // slow: the store's address
        .store(Reg::R11, Reg::R4, 0) // store NEW to X, address pending
        .load(Reg::R6, Reg::R10, 0) // bypasses the store: reads stale SECRET
        .branch_if(Cond::Eq, Reg::R6, Reg::R12, "out") // replay guard
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

fn setup(m: &mut Machine) -> Result<(), AttackError> {
    m.map_user_page(LOCATION_X)?;
    m.map_user_page(ADDR_CELL)?;
    m.write_u64(LOCATION_X, SECRET)?; // the stale data
    m.write_u64(ADDR_CELL, LOCATION_X)?;
    // The victim touched X recently — the stale read hits in L1 fast
    // enough to beat the disambiguation resolution.
    m.touch(LOCATION_X)?;
    m.flush_line(ADDR_CELL)?;
    Ok(())
}

/// Spectre v4: speculative store bypass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV4;

impl Attack for SpectreV4 {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V4,
            cve: Some("CVE-2018-3639"),
            impact: "Speculative store bypass, read stale data in memory",
            authorization: "Store-load address dependency resolution",
            illegal_access: "Read stale data",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig6_disambiguation()
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup(m)?;
        let p = program()?;
        m.set_reg(Reg::R2, ADDR_CELL);
        m.set_reg(Reg::R10, LOCATION_X);
        m.set_reg(Reg::R11, NEW_VALUE);
        m.set_reg(Reg::R12, NEW_VALUE);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&p)?;
        let out = finish(m, SECRET, start)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::TraceEvent;
    use uarch::UarchConfig;

    #[test]
    fn v4_leaks_stale_data_on_baseline() {
        let out = SpectreV4.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
    }

    #[test]
    fn v4_architectural_result_is_the_new_value() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup(&mut m).unwrap();
        let p = program().unwrap();
        m.set_reg(Reg::R2, ADDR_CELL);
        m.set_reg(Reg::R10, LOCATION_X);
        m.set_reg(Reg::R11, NEW_VALUE);
        m.set_reg(Reg::R12, NEW_VALUE);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.run(&p).unwrap();
        // After replay the load architecturally observes the store.
        assert_eq!(m.reg(Reg::R6), NEW_VALUE);
        assert_eq!(m.read_u64(LOCATION_X).unwrap(), NEW_VALUE);
        // And the machine recorded the bypass + the disambiguation squash.
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::DisambiguationBypass { .. })));
    }

    #[test]
    fn v4_blocked_by_ssb_disable() {
        let out = SpectreV4
            .run(&UarchConfig::builder().ssb_disable(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v4_blocked_by_ssbb_barrier_in_program() {
        // The ARM SSBB industry defense: a barrier between the store and
        // the load forbids the bypass.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup(&mut m).unwrap();
        let p = ProgramBuilder::new()
            .load(Reg::R4, Reg::R2, 0)
            .store(Reg::R11, Reg::R4, 0)
            .fence(isa::FenceKind::Ssbb)
            .load(Reg::R6, Reg::R10, 0)
            .branch_if(Cond::Eq, Reg::R6, Reg::R12, "out")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0)
            .label("out")
            .unwrap()
            .halt()
            .build()
            .unwrap();
        m.set_reg(Reg::R2, ADDR_CELL);
        m.set_reg(Reg::R10, LOCATION_X);
        m.set_reg(Reg::R11, NEW_VALUE);
        m.set_reg(Reg::R12, NEW_VALUE);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&p).unwrap();
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(!out.leaked, "SSBB must forbid the bypass: {out}");
    }

    #[test]
    fn v4_blocked_by_stt_and_nda() {
        for cfg in [
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().nda(true).build(),
        ] {
            let out = SpectreV4.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn v4_trains_the_disambiguation_predictor() {
        // After one aliasing mispredict, the predictor turns conservative
        // for that load pc: a second identical run does not bypass.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup(&mut m).unwrap();
        let p = program().unwrap();
        for pass in 0..2 {
            m.write_u64(LOCATION_X, SECRET).unwrap();
            m.touch(LOCATION_X).unwrap();
            m.flush_line(ADDR_CELL).unwrap();
            m.set_reg(Reg::R2, ADDR_CELL);
            m.set_reg(Reg::R10, LOCATION_X);
            m.set_reg(Reg::R11, NEW_VALUE);
            m.set_reg(Reg::R12, NEW_VALUE);
            m.set_reg(Reg::R3, PROBE_BASE);
            m.clear_events();
            m.run(&p).unwrap();
            let bypassed = m
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::DisambiguationBypass { .. }));
            if pass == 0 {
                assert!(bypassed, "first pass speculates");
            } else {
                assert!(!bypassed, "predictor learned the alias");
            }
        }
    }
}
