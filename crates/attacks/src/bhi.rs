//! BHI — Branch History Injection (CVE-2022-0001): cross-privilege
//! history aliasing on the indirect-branch predictor, *without* any RSB
//! underflow. The attacker runs in the same context as the victim branch
//! (the real-world shape: unprivileged syscall/eBPF-reachable code
//! steering an in-kernel indirect branch), so the shared branch history
//! it poisons is **not** cleared by context-switch barriers — eIBRS/IBPB
//! flush predictor state *between* contexts, and there is no switch
//! between training and victim here.
//!
//! That makes BHI the predictor-flavor discriminator the stack-cover
//! search needs:
//!
//! * flush-on-switch (IBPB/IBRS/STIBP, strategy ④) does **not** block it
//!   — unlike Spectre v2, where training crosses a switch;
//! * RSB stuffing is irrelevant — unlike Retbleed, no return and no
//!   underflow is involved;
//! * retpoline-style prediction avoidance (`no_indirect_prediction`)
//!   blocks it, as do the strategy-①/②/③ data-path defenses.
//!
//! The graph is the same Figure-1 shape as Spectre v2: the authorization
//! is the indirect branch's target resolution.

use crate::common::{finish, probe_channel, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::Machine;

/// Victim-private page whose contents the gadget exfiltrates.
const VICTIM_SECRET: u64 = 0x60_0000;

/// Cell holding the indirect target (first hop of the slow chain).
const TARGET_PTR: u64 = 0x61_0000;

/// Second hop: the actual target value lives here.
const TARGET_CELL: u64 = 0x61_1000;

/// Attacker-readable dummy the gadget reads during history training.
const ATTACKER_DUMMY: u64 = 0x62_0000;

/// The shared victim/attacker binary (BHI steers an *existing* in-kernel
/// branch, so training executes the very same code):
///
/// ```text
/// 0: load rA,[r9]   ; slow double-chase to the indirect target
/// 1: load r1,[rA]
/// 2: jmpi r1        ; the steered indirect branch
/// 3: halt           ; legitimate target
/// 4: gadget: load r6,[r5] …send…  ; history-aliased target
/// ```
fn binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R9, 0)
        .load(Reg::R1, Reg::R4, 0)
        .jump_indirect(Reg::R1)
        .halt() // 3: legitimate target
        // 4: the gadget
        .load(Reg::R6, Reg::R5, 0)
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

/// The gadget's instruction index in [`binary`].
const GADGET_PC: u64 = 4;

/// The legitimate target's index.
const BENIGN_PC: u64 = 3;

fn setup_memory(m: &mut Machine) -> Result<(), AttackError> {
    m.map_user_page(VICTIM_SECRET)?;
    m.map_user_page(TARGET_PTR)?;
    m.map_user_page(TARGET_CELL)?;
    m.map_user_page(ATTACKER_DUMMY)?;
    m.write_u64(TARGET_PTR, TARGET_CELL)?;
    m.write_u64(VICTIM_SECRET, SECRET)?;
    // Non-zero dummy so training does not mis-train the zero guard.
    m.write_u64(ATTACKER_DUMMY, 1)?;
    Ok(())
}

/// BHI: same-context branch history injection (no RSB involvement).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bhi;

impl Attack for Bhi {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::BHI,
            cve: Some("CVE-2022-0001"),
            impact: "Intra-mode branch history injection",
            authorization: "Indirect branch target resolution",
            illegal_access: "Execute code not intended to be executed",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Indirect branch target resolution",
            "Load S (gadget)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup_memory(m)?;
        let binary = binary()?;

        // --- History training: attacker-reachable code drives the *same*
        // indirect branch at the gadget, in the *same* context as the
        // victim run below. No context switch follows, so strategy-④
        // flush-on-switch barriers never fire — the BHI discriminator.
        m.write_u64(TARGET_CELL, GADGET_PC)?;
        for _ in 0..3 {
            m.set_reg(Reg::R9, TARGET_PTR);
            m.set_reg(Reg::R5, ATTACKER_DUMMY);
            m.set_reg(Reg::R3, PROBE_BASE);
            m.run(&binary)?;
        }

        // The receiver re-establishes the channel after training.
        probe_channel().prepare(m)?;

        // --- Victim invocation (still the same context): the legitimate
        // target is restored but resolves slowly (flushed chain); the
        // poisoned history steers fetch into the gadget, which now reads
        // the victim's secret.
        m.write_u64(TARGET_CELL, BENIGN_PC)?;
        m.flush_line(TARGET_PTR)?;
        m.flush_line(TARGET_CELL)?;
        m.touch(VICTIM_SECRET)?; // the victim's own working data
        m.clear_events();
        m.set_reg(Reg::R9, TARGET_PTR);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&binary)?;

        // --- The attacker reloads and times (step 5); no switch needed.
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;

    #[test]
    fn bhi_leaks_on_baseline() {
        let out = Bhi.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.squashes >= 1, "the steered branch must squash");
    }

    #[test]
    fn flush_on_switch_is_not_enough() {
        // The discriminator: IBPB-style barriers act on context switches,
        // and BHI's training and victim run share one context — the reason
        // eIBRS machines still needed retpoline-style fixes.
        let out = Bhi
            .run(
                &UarchConfig::builder()
                    .flush_predictors_on_switch(true)
                    .build(),
            )
            .unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn rsb_stuffing_is_irrelevant() {
        // No return, no underflow: the RSB never participates.
        let out = Bhi
            .run(&UarchConfig::builder().rsb_stuffing(true).build())
            .unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_retpoline_effect() {
        // No BTB/history prediction for indirect branches: fetch stalls
        // until the target resolves.
        let out = Bhi
            .run(&UarchConfig::builder().no_indirect_prediction(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
        assert_eq!(out.squashes, 0, "no transient path is ever fetched");
    }

    #[test]
    fn blocked_by_data_path_strategies() {
        for cfg in [
            UarchConfig::builder().no_speculative_loads(true).build(),
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = Bhi.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn architecturally_jumps_to_benign_target() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup_memory(&mut m).unwrap();
        let binary = binary().unwrap();
        m.write_u64(TARGET_CELL, BENIGN_PC).unwrap();
        m.set_reg(Reg::R9, TARGET_PTR);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let r = m.run(&binary).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R6), 0, "gadget never ran architecturally");
    }
}
