//! The Micro-architectural Data Sampling family — RIDL (load port /
//! line fill buffer), ZombieLoad (line fill buffer) and Fallout (store
//! buffer). A *hard-faulting* load aggressively forwards stale data from a
//! leaky buffer instead of memory (Figure 4, branches ②③④).

use crate::common::{finish, KERNEL_SECRET, PROBE_BASE, PROBE_STRIDE, SECRET, UNMAPPED};
use crate::graphs::fig4_faulting_load;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// The sampling gadget: a faulting load at an *unmapped* address (`r5`),
/// then transform & send. The faulting load's "value" is whatever stale
/// data the vulnerable machine forwards from its buffers.
fn sampling_program() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R6, Reg::R5, 0) // hard fault: samples a leaky buffer
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("done")?
        .halt()
        .build()?)
}

fn run_sampler(m: &mut Machine, fault_vaddr: u64) -> Result<(), AttackError> {
    m.set_privilege(Privilege::User);
    let program = sampling_program()?;
    m.set_exception_behavior(ExceptionBehavior::Handler(
        program.label("done").expect("label exists"),
    ));
    m.set_reg(Reg::R5, fault_vaddr);
    m.set_reg(Reg::R3, PROBE_BASE);
    m.run(&program)?;
    Ok(())
}

/// Runs a victim load of the kernel secret so the secret transits the
/// line fill buffer (cache miss) or only the load ports (cache hit).
fn victim_loads_secret(m: &mut Machine) -> Result<(), AttackError> {
    m.map_kernel_page(KERNEL_SECRET)?;
    m.write_u64(KERNEL_SECRET, SECRET)?;
    m.set_privilege(Privilege::Kernel);
    let victim = ProgramBuilder::new()
        .load(Reg::R1, Reg::R0, 0)
        .halt()
        .build()?;
    m.set_reg(Reg::R0, KERNEL_SECRET);
    m.run(&victim)?;
    Ok(())
}

/// RIDL: Rogue In-Flight Data Load — samples stale data from the **load
/// ports** (this PoC) or the line fill buffer (see [`ZombieLoad`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ridl;

impl Attack for Ridl {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::RIDL,
            cve: Some("CVE-2018-12127"),
            impact: "Cross-privilege in-flight data sampling",
            authorization: "Load fault check",
            illegal_access: "Forward data from fill buffer and load port",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "Load Permission Check",
            "Read from load port",
            SecretSource::LoadPort,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        // Victim's secret is already cached, so its load *hits*: the value
        // transits only the load ports — the RIDL datapath.
        m.map_kernel_page(KERNEL_SECRET)?;
        m.write_u64(KERNEL_SECRET, SECRET)?;
        m.touch(KERNEL_SECRET)?;
        m.clear_leaky_buffers(); // LFB/SB now empty; ports refilled below
        victim_loads_secret(m)?;
        m.clear_events();
        let start = m.cycle();
        run_sampler(m, UNMAPPED)?;
        finish(m, SECRET, start)
    }
}

/// ZombieLoad: samples the **line fill buffer** — the victim's secret-line
/// fill is still resident in the LFB when the attacker's faulting load
/// executes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZombieLoad;

impl Attack for ZombieLoad {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::ZOMBIELOAD,
            cve: Some("CVE-2018-12130"),
            impact: "Cross-privilege-boundary data sampling",
            authorization: "Load fault check",
            illegal_access: "Forward data from fill buffer",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "Load Permission Check",
            "Read from line fill buffer",
            SecretSource::LineFillBuffer,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.clear_leaky_buffers();
        // Victim load *misses*, pulling the secret line through the LFB.
        victim_loads_secret(m)?;
        m.clear_events();
        let start = m.cycle();
        // Attacker faults at an address whose line offset matches the
        // secret's (offset 0 here); page offsets differ from any store.
        run_sampler(m, UNMAPPED)?;
        finish(m, SECRET, start)
    }
}

/// Fallout: samples the **store buffer** — a just-retired victim store's
/// value is forwarded to a faulting load whose *page offset* matches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fallout;

/// Page offset at which the victim stores and the attacker faults.
const FALLOUT_OFFSET: u64 = 0x7C0;

impl Attack for Fallout {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::FALLOUT,
            cve: Some("CVE-2018-12126"),
            impact: "Leak of recent kernel stores (MSBDS)",
            authorization: "Load fault check",
            illegal_access: "Forward data from store buffer",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "Load Permission Check",
            "Read from store buffer",
            SecretSource::StoreBuffer,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.clear_leaky_buffers();
        // Victim (kernel) stores the secret at its own address.
        m.map_kernel_page(KERNEL_SECRET)?;
        m.set_privilege(Privilege::Kernel);
        let victim = ProgramBuilder::new()
            .store(Reg::R1, Reg::R0, 0)
            .halt()
            .build()?;
        m.set_reg(Reg::R0, KERNEL_SECRET + FALLOUT_OFFSET);
        m.set_reg(Reg::R1, SECRET);
        m.run(&victim)?;
        m.clear_events();
        let start = m.cycle();
        // Attacker faults at an unmapped user address with the *same page
        // offset* — the store buffer's partial address match forwards the
        // victim's value.
        run_sampler(m, UNMAPPED + FALLOUT_OFFSET)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use crate::common::USER_SCRATCH;
    use uarch::UarchConfig;
    use uarch::{TraceEvent, TransientSource};

    fn forwarded_from(m_events: &[TraceEvent], src: TransientSource) -> bool {
        m_events.iter().any(|e| {
            matches!(e, TraceEvent::TransientForward { source, value, .. }
                if *source == src && *value == SECRET)
        })
    }

    #[test]
    fn ridl_leaks_via_load_port() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.map_kernel_page(KERNEL_SECRET).unwrap();
        m.write_u64(KERNEL_SECRET, SECRET).unwrap();
        m.touch(KERNEL_SECRET).unwrap();
        m.clear_leaky_buffers();
        victim_loads_secret(&mut m).unwrap();
        m.clear_events();
        let start = m.cycle();
        run_sampler(&mut m, UNMAPPED).unwrap();
        assert!(
            forwarded_from(m.events(), TransientSource::LoadPort),
            "RIDL must sample the load port"
        );
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn zombieload_leaks_via_lfb() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.clear_leaky_buffers();
        victim_loads_secret(&mut m).unwrap();
        m.clear_events();
        let start = m.cycle();
        run_sampler(&mut m, UNMAPPED).unwrap();
        assert!(
            forwarded_from(m.events(), TransientSource::LineFillBuffer),
            "ZombieLoad must sample the LFB"
        );
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn fallout_leaks_via_store_buffer() {
        let out = Fallout.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn all_blocked_by_mds_fix() {
        let cfg = UarchConfig::builder().mds_forwarding(false).build();
        for a in [&Ridl as &dyn Attack, &ZombieLoad, &Fallout] {
            let out = a.run(&cfg).unwrap();
            assert!(!out.leaked, "{}: {out}", a.info().name);
        }
    }

    #[test]
    fn all_blocked_by_buffer_clearing() {
        // VERW-style mitigation: clear the buffers between victim and
        // attacker.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.clear_leaky_buffers();
        victim_loads_secret(&mut m).unwrap();
        m.clear_leaky_buffers(); // the mitigation
        m.clear_events();
        let start = m.cycle();
        run_sampler(&mut m, UNMAPPED).unwrap();
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn all_blocked_by_nda() {
        let cfg = UarchConfig::builder().nda(true).build();
        for a in [&Ridl as &dyn Attack, &ZombieLoad, &Fallout] {
            let out = a.run(&cfg).unwrap();
            assert!(!out.leaked, "{}: {out}", a.info().name);
        }
    }

    #[test]
    fn scratch_region_is_distinct() {
        // Layout sanity: the fault page must be unmapped and distinct from
        // scratch regions used elsewhere.
        assert_ne!(UNMAPPED / 4096, USER_SCRATCH / 4096);
        assert_ne!(UNMAPPED / 4096, KERNEL_SECRET / 4096);
    }
}
