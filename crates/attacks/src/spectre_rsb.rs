//! Spectre-RSB — return address mis-prediction (Figure 1 with the return
//! stack buffer as the mis-trained predictor): the attacker leaves stale
//! entries in the shared RSB; the victim's `ret` transiently "returns" into
//! an attacker-chosen gadget.

use crate::common::{finish, probe_channel, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Victim-private secret page.
const VICTIM_SECRET: u64 = 0x5A_0000;

/// Cell whose (flushed) load delays the victim's return resolution.
const DELAY_CELL: u64 = 0x5B_0000;

/// The victim binary. The gadget sits at index 3 — the value the attacker
/// plants in the RSB.
///
/// ```text
/// 0: load r4,[r2]  ; slow — the ret below resolves only at ROB head
/// 1: ret           ; no matching call: predicts from the polluted RSB
/// 2: halt
/// 3: gadget: load r6,[r5] …send…
/// ```
fn victim_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0)
        .ret()
        .halt()
        // 3: the gadget
        .load(Reg::R6, Reg::R5, 0)
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

/// The gadget's index in [`victim_binary`]; the attacker's `call` sits at
/// index 2 of its own binary so the pushed return address equals this.
#[cfg(test)]
const GADGET_PC: usize = 3;

/// The attacker binary: a call at pc `GADGET_PC - 1` pushes `GADGET_PC`
/// onto the RSB and never returns, leaving the entry stale.
fn attacker_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .nop() // 0
        .nop() // 1
        .call("f") // 2: pushes return address 3 == GADGET_PC
        .halt() // 3 (never reached in the attacker binary)
        .label("f")?
        .halt() // 4: the callee exits without `ret`
        .build()?)
}

/// Spectre-RSB: return mis-prediction into an attacker gadget.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreRsb;

impl Attack for SpectreRsb {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_RSB,
            cve: Some("CVE-2018-15572"),
            impact: "Return mis-predict, execute wrong code",
            authorization: "Return target resolution",
            illegal_access: "Execute code not intended to be executed",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Return target resolution",
            "Load S (gadget)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_user_page(VICTIM_SECRET)?;
        m.map_user_page(DELAY_CELL)?;
        m.write_u64(VICTIM_SECRET, SECRET)?;
        let victim_ctx = m.add_context(Privilege::User, ExceptionBehavior::Halt);

        // --- Attacker pollutes the RSB, establishes the channel, yields.
        m.run(&attacker_binary()?)?;
        probe_channel().prepare(m)?;
        let attacker = m.current_context();

        // --- Context switch to the victim (strategy-④ defenses and RSB
        // stuffing act here).
        m.switch_context(victim_ctx)?;
        m.flush_line(DELAY_CELL)?;
        m.touch(VICTIM_SECRET)?; // the victim's own working data
        m.clear_events();
        m.set_reg(Reg::R2, DELAY_CELL);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&victim_binary()?)?;

        // --- Back to the attacker, who reloads and times (step 5).
        m.switch_context(attacker)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn rsb_attack_leaks_on_baseline() {
        let out = SpectreRsb.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
    }

    #[test]
    fn attacker_binary_plants_gadget_pc() {
        let p = attacker_binary().unwrap();
        // The call sits at index 2, so its pushed return address is 3.
        match p[2] {
            isa::Instruction::Call { target } => assert_eq!(target, 4),
            ref other => panic!("unexpected {other}"),
        }
        assert_eq!(GADGET_PC, 3);
    }

    #[test]
    fn blocked_by_rsb_stuffing() {
        let out = SpectreRsb
            .run(&UarchConfig::builder().rsb_stuffing(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_predictor_flush() {
        let out = SpectreRsb
            .run(
                &UarchConfig::builder()
                    .flush_predictors_on_switch(true)
                    .build(),
            )
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_strategy_2_and_3() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = SpectreRsb.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }
}
