//! TSX-based attacks — TAA (TSX Asynchronous Abort) and CacheOut: a fault
//! inside a transaction never raises architecturally; the abort plays the
//! role of the delayed authorization, and the in-flight transient window
//! samples the L1 (TAA) or the line fill buffer (CacheOut).

use crate::common::{finish, KERNEL_SECRET, PROBE_BASE, PROBE_STRIDE, SECRET, UNMAPPED};
use crate::graphs::fig4_faulting_load;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{Machine, Privilege};

/// The transactional sampling gadget: fault inside the transaction, use and
/// send before the asynchronous abort completes.
fn tx_program() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .tx_begin()
        .load(Reg::R6, Reg::R5, 0) // faults; abort is asynchronous
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "inside_done")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0) // send, still inside the transaction
        .label("inside_done")?
        .tx_end()
        .halt() // abort fallback lands here (after TxEnd)
        .build()?)
}

/// TAA — TSX Asynchronous Abort: reads a privileged, L1-resident secret
/// inside a transaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Taa;

impl Attack for Taa {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::TAA,
            cve: Some("CVE-2019-11135"),
            impact: "Transactional sampling of L1/store/load buffers",
            authorization: "TSX Asynchronous Abort Completion",
            illegal_access: "Load data from L1D cache, store or load buffers",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "TSX Asynchronous Abort Completion",
            "Read from Cache",
            SecretSource::Cache,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_kernel_page(KERNEL_SECRET)?;
        if m.config().kpti {
            m.map_user_page(KERNEL_SECRET)?;
            m.write_u64(KERNEL_SECRET, SECRET)?;
            m.touch(KERNEL_SECRET)?;
            m.map_kernel_page(KERNEL_SECRET)?;
        } else {
            m.write_u64(KERNEL_SECRET, SECRET)?;
            m.touch(KERNEL_SECRET)?; // the secret is L1-resident
        }
        m.set_privilege(Privilege::User);
        let p = tx_program()?;
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&p)?;
        finish(m, SECRET, start)
    }
}

/// CacheOut — transactional sampling of the **line fill buffer** after the
/// victim's data transited it.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheOut;

impl Attack for CacheOut {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::CACHEOUT,
            cve: Some("CVE-2020-0549"),
            impact: "Leak data via cache evictions through the fill buffer",
            authorization: "TSX Asynchronous Abort Completion",
            illegal_access: "Forward data from fill buffer",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "TSX Asynchronous Abort Completion",
            "Read from line fill buffer",
            SecretSource::LineFillBuffer,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.clear_leaky_buffers();
        // The victim's secret transits the LFB (evicted then re-read, as in
        // the CacheOut eviction trick; here: a missing load pulls it
        // through the fill buffer).
        m.map_kernel_page(KERNEL_SECRET)?;
        m.write_u64(KERNEL_SECRET, SECRET)?;
        let victim = ProgramBuilder::new()
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()?;
        m.set_reg(Reg::R0, KERNEL_SECRET);
        m.run(&victim)?;

        // Attacker: transactional faulting load at an unmapped address.
        m.set_privilege(Privilege::User);
        let p = tx_program()?;
        m.set_reg(Reg::R5, UNMAPPED);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&p)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;

    #[test]
    fn taa_leaks_and_suppresses_the_fault() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.map_kernel_page(KERNEL_SECRET).unwrap();
        m.write_u64(KERNEL_SECRET, SECRET).unwrap();
        m.touch(KERNEL_SECRET).unwrap();
        m.set_privilege(Privilege::User);
        let p = tx_program().unwrap();
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        let r = m.run(&p).unwrap();
        assert_eq!(r.tx_aborts, 1, "the fault must abort the transaction");
        assert!(r.faults.is_empty(), "the fault is suppressed, not raised");
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn taa_via_public_api() {
        let out = Taa.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn cacheout_leaks_via_lfb() {
        let out = CacheOut.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn taa_blocked_by_hardening() {
        for cfg in [
            UarchConfig::builder()
                .transient_forwarding(false)
                .mds_forwarding(false)
                .build(),
            UarchConfig::builder().eager_permission_check(true).build(),
            UarchConfig::builder().nda(true).build(),
        ] {
            let out = Taa.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn cacheout_blocked_by_mds_fix() {
        let out = CacheOut
            .run(&UarchConfig::builder().mds_forwarding(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }
}
