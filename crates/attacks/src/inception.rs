//! Inception — recursive RSB injection / Speculative Return Stack
//! Overflow (CVE-2023-20569): the attacker *floods* the shared return
//! stack buffer with gadget addresses by spraying calls from a call site
//! whose pushed return address aliases the victim gadget, overflowing the
//! RSB until every live entry is attacker-chosen. Unlike Spectre-RSB's
//! single stale entry, the poison survives partial RSB consumption (the
//! victim may execute returns of its own before reaching the vulnerable
//! one), and unlike Retbleed the prediction comes from the RSB *pop*
//! path, not the BTB fallback — so retpoline-style
//! `no_indirect_prediction`, which kills Retbleed, does **not** help.
//! The mitigations that do are the RSB-scrubbing ones: stuffing benign
//! entries on context switch, or flushing predictor state entirely
//! (AMD's "safe RET"/IBPB guidance for real hardware).
//!
//! The graph is the Figure-1 shape with return target resolution as the
//! authorization — same race as the other return-predictor variants; the
//! campaign's predictor-flavor knob decides the verdict.

use crate::common::{finish, probe_channel, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Victim-private secret page.
const VICTIM_SECRET: u64 = 0x5E_0000;

/// Cell whose (flushed) load delays the victim's return resolution.
const DELAY_CELL: u64 = 0x5F_0000;

/// Spray iterations: comfortably more than any configured RSB depth
/// (default 16), so the buffer overflows and holds *only* gadget entries.
const SPRAY: u64 = 24;

/// The gadget's index in [`victim_binary`]; the attacker's spray `call`
/// sits at index 2 of its own binary so every pushed return address
/// equals this. (Pinned by the layout test; not read on the hot path.)
#[cfg(test)]
const GADGET_PC: usize = 3;

/// The attacker binary: a call loop that pushes `GADGET_PC` onto the RSB
/// [`SPRAY`] times. The callee never returns — it decrements the counter
/// and branches straight back to the call site — so nothing pops what the
/// spray pushed and the RSB overflows into an all-gadget state.
///
/// ```text
/// 0: imm  r9, SPRAY
/// 1: nop
/// 2: call f        ; pushes 3 == GADGET_PC, every iteration
/// 3: halt          ; (call target is f; never falls through here)
/// f:
/// 4: sub  r9, r9, 1
/// 5: bne  r9, 2    ; back to the call — no ret, the entries stay
/// 6: halt
/// ```
fn attacker_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .imm(Reg::R9, SPRAY)
        .nop()
        .label("spray")?
        .call("f") // 2: pushed return address 3 == GADGET_PC
        .halt()
        .label("f")?
        .alu_imm(AluOp::Sub, Reg::R9, Reg::R9, 1)
        .branch_if(Cond::Ne, Reg::R9, Reg::ZERO, "spray")
        .halt()
        .build()?)
}

/// A victim warm-up routine: one unrelated `ret` that consumes the
/// youngest RSB entry before the vulnerable return runs. A single-entry
/// poison (Spectre-RSB) would be spent here; the overflowed RSB still
/// holds a gadget address for the return that matters.
fn victim_warmup() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .ret() // 0: pops one poisoned entry; transient target 3 is a halt
        .halt()
        .halt()
        .halt()
        .build()?)
}

/// The victim binary proper — the same vulnerable shape as the other
/// return-predictor variants: a slow load delays the return's resolution
/// while the front-end speculates into whatever the RSB supplies.
///
/// ```text
/// 0: load r4,[r2]  ; slow — the ret below resolves only at ROB head
/// 1: ret           ; pops a sprayed entry: transiently enters the gadget
/// 2: halt
/// 3: gadget: load r6,[r5] …send…
/// ```
fn victim_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0)
        .ret()
        .halt()
        // 3: the gadget
        .load(Reg::R6, Reg::R5, 0)
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

/// Inception: recursive RSB overflow with attacker-chosen return targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inception;

impl Attack for Inception {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::INCEPTION,
            cve: Some("CVE-2023-20569"),
            impact: "RSB overflow: every return predicts attacker code",
            authorization: "Return target resolution",
            illegal_access: "Execute code not intended to be executed",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Return target resolution",
            "Load S (gadget)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_user_page(VICTIM_SECRET)?;
        m.map_user_page(DELAY_CELL)?;
        m.write_u64(VICTIM_SECRET, SECRET)?;
        let victim_ctx = m.add_context(Privilege::User, ExceptionBehavior::Halt);

        // --- Attacker floods the RSB past capacity with gadget entries,
        // establishes the channel, and yields.
        m.run(&attacker_binary()?)?;
        probe_channel().prepare(m)?;
        let attacker = m.current_context();

        // --- Context switch to the victim (RSB stuffing and strategy-④
        // flushing act here).
        m.switch_context(victim_ctx)?;
        // The victim first runs an unrelated return: one poisoned entry
        // is consumed harmlessly. Overflow is what keeps the attack alive
        // past this point — a lone stale entry would now be gone.
        m.run(&victim_warmup()?)?;
        m.flush_line(DELAY_CELL)?;
        m.touch(VICTIM_SECRET)?; // the victim's own working data
        m.clear_events();
        m.set_reg(Reg::R2, DELAY_CELL);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&victim_binary()?)?;

        // --- Back to the attacker, who reloads and times (step 5).
        m.switch_context(attacker)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn inception_leaks_on_baseline() {
        let out = Inception.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
    }

    #[test]
    fn spray_call_pushes_the_gadget_pc() {
        let p = attacker_binary().unwrap();
        // The spray call sits at index 2, so every pushed return address
        // is 3 — the victim gadget's pc.
        match p[GADGET_PC - 1] {
            isa::Instruction::Call { .. } => {}
            ref other => panic!("unexpected {other:?}"),
        }
        // The loop-back branch targets the call site, not the callee.
        match p[5] {
            isa::Instruction::BranchIf { target, .. } => assert_eq!(target, 2),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn survives_partial_rsb_consumption() {
        // run_in always routes through the warm-up return, so the
        // baseline leak already proves the poison outlives one pop; this
        // pins the deeper claim — the spray exceeds the RSB depth, so
        // *every* live entry is the gadget, not just the youngest.
        assert!(SPRAY as usize > UarchConfig::default().rsb_depth);
        let out = Inception.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        // Only the victim window is counted (the warm-up's own squash
        // lands before `clear_events`): exactly the vulnerable return.
        assert!(
            out.squashes >= 1,
            "the victim return must mispredict: {out}"
        );
    }

    #[test]
    fn retpoline_alone_does_not_help() {
        // The prediction comes from the RSB pop path, not the BTB
        // fallback — `no_indirect_prediction` (which blocks Retbleed)
        // leaves Inception intact. The fix must scrub the RSB itself.
        let out = Inception
            .run(&UarchConfig::builder().no_indirect_prediction(true).build())
            .unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_rsb_stuffing() {
        let out = Inception
            .run(&UarchConfig::builder().rsb_stuffing(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_predictor_flush() {
        let out = Inception
            .run(
                &UarchConfig::builder()
                    .flush_predictors_on_switch(true)
                    .build(),
            )
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_strategy_2_and_3() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = Inception.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }
}
