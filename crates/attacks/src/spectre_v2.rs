//! Spectre v2 — branch target injection (Figure 1 with an indirect
//! branch): the attacker mis-trains the shared BTB so the victim's indirect
//! jump transiently executes an attacker-chosen gadget.

use crate::common::{finish, probe_channel, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Victim-private page whose contents the gadget exfiltrates.
const VICTIM_SECRET: u64 = 0x50_0000;

/// Cell holding the indirect target (first hop of the slow chain).
const TARGET_PTR: u64 = 0x51_0000;

/// Second hop: the actual target value lives here.
const TARGET_CELL: u64 = 0x51_1000;

/// Attacker-owned dummy the gadget reads during training.
const ATTACKER_DUMMY: u64 = 0x52_0000;

/// Builds the victim binary. Layout (instruction indices matter — the BTB
/// is indexed by pc):
///
/// ```text
/// 0: load rA,[r9]   ; slow double-chase to the indirect target
/// 1: load r1,[rA]
/// 2: jmpi r1        ; the victim's indirect branch
/// 3: halt           ; legitimate target
/// 4: gadget: load r6,[r5] …send…  ; attacker-chosen target
/// ```
fn victim_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R9, 0)
        .load(Reg::R1, Reg::R4, 0)
        .jump_indirect(Reg::R1)
        .halt() // 3: legitimate target
        // 4: the gadget
        .load(Reg::R6, Reg::R5, 0)
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

/// The gadget's instruction index in [`victim_binary`].
const GADGET_PC: u64 = 4;

/// The legitimate target's index.
const BENIGN_PC: u64 = 3;

fn setup_memory(m: &mut Machine) -> Result<(), AttackError> {
    m.map_user_page(VICTIM_SECRET)?;
    m.map_user_page(TARGET_PTR)?;
    m.map_user_page(TARGET_CELL)?;
    m.map_user_page(ATTACKER_DUMMY)?;
    m.write_u64(TARGET_PTR, TARGET_CELL)?;
    m.write_u64(VICTIM_SECRET, SECRET)?;
    // Non-zero dummy so training does not mis-train the zero guard.
    m.write_u64(ATTACKER_DUMMY, 1)?;
    Ok(())
}

/// Spectre v2: branch target injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV2;

impl Attack for SpectreV2 {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V2,
            cve: Some("CVE-2017-5715"),
            impact: "Branch target injection",
            authorization: "Indirect branch target resolution",
            illegal_access: "Execute code not intended to be executed",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Indirect branch target resolution",
            "Load S (gadget)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup_memory(m)?;
        let binary = victim_binary()?;
        // (The current context is the attacker.)
        let victim = m.add_context(Privilege::User, ExceptionBehavior::Halt);

        // --- Training (attacker context): the attacker executes the same
        // binary with the indirect target aimed at the gadget, and the
        // gadget reading the attacker's own dummy. The shared, untagged BTB
        // learns pc 2 → gadget.
        m.write_u64(TARGET_CELL, GADGET_PC)?;
        for _ in 0..3 {
            m.set_reg(Reg::R9, TARGET_PTR);
            m.set_reg(Reg::R5, ATTACKER_DUMMY);
            m.set_reg(Reg::R3, PROBE_BASE);
            m.run(&binary)?;
        }

        // The receiver (attacker) establishes the channel before yielding.
        probe_channel().prepare(m)?;
        let attacker = m.current_context();

        // --- Victim run: the OS switches to the victim (strategy-④
        // defenses act here). The legitimate target is restored but its
        // resolution is slow (flushed chain); the poisoned BTB redirects
        // fetch to the gadget, which now reads the *victim's* secret.
        m.switch_context(victim)?;
        m.write_u64(TARGET_CELL, BENIGN_PC)?;
        m.flush_line(TARGET_PTR)?;
        m.flush_line(TARGET_CELL)?;
        // The victim touched its secret recently (it is its working data).
        m.touch(VICTIM_SECRET)?;
        m.clear_events();
        m.set_reg(Reg::R9, TARGET_PTR);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&binary)?;

        // --- Back to the attacker, who reloads and times (step 5).
        m.switch_context(attacker)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;

    #[test]
    fn v2_leaks_on_baseline() {
        let out = SpectreV2.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.squashes >= 1);
    }

    #[test]
    fn v2_blocked_by_predictor_flush_on_switch() {
        // Strategy ④ (IBPB / predictor invalidation on context switch).
        let out = SpectreV2
            .run(
                &UarchConfig::builder()
                    .flush_predictors_on_switch(true)
                    .build(),
            )
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v2_blocked_by_retpoline_effect() {
        // No BTB prediction: fetch stalls until the target resolves.
        let out = SpectreV2
            .run(&UarchConfig::builder().no_indirect_prediction(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
        assert_eq!(out.squashes, 0, "no transient path is ever fetched");
    }

    #[test]
    fn v2_blocked_by_strategy_2_and_3() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().invisible_spec(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = SpectreV2.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn v2_architecturally_jumps_to_benign_target() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup_memory(&mut m).unwrap();
        let binary = victim_binary().unwrap();
        m.write_u64(TARGET_CELL, BENIGN_PC).unwrap();
        m.set_reg(Reg::R9, TARGET_PTR);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let r = m.run(&binary).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R6), 0, "gadget never ran architecturally");
    }
}
