//! Spectre v1 (bounds check bypass), v1.1 (speculative buffer overflow) and
//! v1.2 (read-only overwrite) — the conditional-branch-triggered family of
//! Figure 1 and Listing 1 of the paper.

use crate::common::{
    finish, probe_channel, BOUND_CELL, BOUND_PTR, PROBE_BASE, PROBE_STRIDE, SECRET, USER_SCRATCH,
    VICTIM_ARRAY,
};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::mmu::PageEntry;
use uarch::Machine;

/// In-bounds length of the victim array (in 8-byte words).
const BOUND: u64 = 8;

/// Out-of-bounds index used by the attack: `VICTIM_ARRAY + X*8` is the
/// secret's address.
const OOB_INDEX: u64 = 64;

/// Register conventions shared by the v1-family gadgets.
///
/// * `r0` — attacker-controlled index `x`
/// * `r1` — `&Array_Victim`
/// * `r2` — `&bound_ptr` (two flushed hops to the length: the window)
/// * `r3` — probe array base
fn victim_prologue() -> ProgramBuilder {
    // The two chained loads delay the bounds check — the *delayed
    // authorization* (step 2). The branch is trained not-taken (in-bounds).
    ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0) // bound_ptr -> &bound (miss)
        .load(Reg::R4, Reg::R4, 0) // &bound -> bound     (miss)
        .branch_if(Cond::Ge, Reg::R0, Reg::R4, "out") // authorization
}

/// The send gadget: transform the value in `r6` into a probe-line fill.
/// The `beq r6, zero` guard keeps architectural re-executions (which see 0)
/// from polluting the channel.
fn send_epilogue(b: ProgramBuilder) -> Result<Program, AttackError> {
    Ok(b.branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE) // use secret
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0) // send: Load R to cache
        .label("out")?
        .halt()
        .build()?)
}

fn setup_victim_memory(m: &mut Machine) -> Result<(), AttackError> {
    m.map_user_page(VICTIM_ARRAY)?;
    m.map_user_page(BOUND_PTR)?;
    m.write_u64(BOUND_PTR, BOUND_CELL)?;
    m.write_u64(BOUND_CELL, BOUND)?;
    // Plant the secret out of bounds (within the same mapped page).
    m.write_u64(VICTIM_ARRAY + OOB_INDEX * 8, SECRET)?;
    // In-bounds words are non-zero so the training runs do not mis-train
    // the zero-guard branch of the send gadget.
    for i in 0..BOUND {
        m.write_u64(VICTIM_ARRAY + i * 8, 1)?;
    }
    Ok(())
}

fn train_branch(m: &mut Machine, program: &Program) -> Result<(), AttackError> {
    // Step 1(b): run the victim with in-bounds indices so the bounds-check
    // branch learns "not taken".
    for i in 0..4 {
        m.set_reg(Reg::R0, i % BOUND);
        m.set_reg(Reg::R1, VICTIM_ARRAY);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.run(program)?;
    }
    Ok(())
}

fn attack_run(m: &mut Machine, program: &Program) -> Result<(), AttackError> {
    // Step 2 onward: flush the bound chain (delay the authorization), pass
    // the out-of-bounds index, run.
    m.flush_line(BOUND_PTR)?;
    m.flush_line(BOUND_CELL)?;
    probe_channel().prepare(m)?;
    m.clear_events();
    m.set_reg(Reg::R0, OOB_INDEX);
    m.set_reg(Reg::R1, VICTIM_ARRAY);
    m.set_reg(Reg::R2, BOUND_PTR);
    m.set_reg(Reg::R3, PROBE_BASE);
    m.run(program)?;
    Ok(())
}

/// Spectre v1: bounds-check bypass — transiently **reads** out-of-bounds
/// memory (Listing 1 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV1;

impl SpectreV1 {
    /// The victim gadget of Listing 1:
    /// `if (x < size) y = Array_A[Array_Victim[x] * stride];`.
    ///
    /// # Errors
    ///
    /// [`AttackError::Isa`] if assembly fails (it cannot for this fixed
    /// program).
    pub fn program() -> Result<Program, AttackError> {
        let b = victim_prologue()
            .alu_imm(AluOp::Shl, Reg::R5, Reg::R0, 3) // x * 8
            .alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R1)
            .load(Reg::R6, Reg::R5, 0); // Load S: out-of-bounds read
        send_epilogue(b)
    }
}

impl Attack for SpectreV1 {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V1,
            cve: Some("CVE-2017-5753"),
            impact: "Boundary check bypass",
            authorization: "Boundary-check branch resolution",
            illegal_access: "Read out-of-bounds memory",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Branch resolution: correct flow",
            "Load S",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup_victim_memory(m)?;
        let program = Self::program()?;
        train_branch(m, &program)?;
        let start = m.cycle();
        attack_run(m, &program)?;
        finish(m, SECRET, start)
    }
}

/// Spectre v1.1: speculative buffer overflow — a transient **out-of-bounds
/// store** plants an attacker value that younger transient code consumes
/// (via store-to-load forwarding) and leaks.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV1_1;

/// The attacker-chosen value the transient overflow writes; its appearance
/// on the covert channel proves the overflow steered transient dataflow.
const INJECTED: u64 = 0x5B;

impl SpectreV1_1 {
    /// Victim gadget with a write primitive: `if (x < size)
    /// Array_Victim[x] = v; y = Array_A[Array_Victim[x] * stride];`.
    ///
    /// # Errors
    ///
    /// [`AttackError::Isa`] if assembly fails.
    pub fn program() -> Result<Program, AttackError> {
        let b = victim_prologue()
            .alu_imm(AluOp::Shl, Reg::R5, Reg::R0, 3)
            .alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R1)
            .imm(Reg::R9, INJECTED)
            .store(Reg::R9, Reg::R5, 0) // transient OOB write
            .load(Reg::R6, Reg::R5, 0); // forwarded back: dataflow hijacked
        send_epilogue(b)
    }
}

impl Attack for SpectreV1_1 {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V1_1,
            cve: Some("CVE-2018-3693"),
            impact: "Speculative buffer overflow",
            authorization: "Boundary-check branch resolution",
            illegal_access: "Write out-of-bounds memory",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Branch resolution: correct flow",
            "Store S (out of bounds)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup_victim_memory(m)?;
        let program = Self::program()?;
        train_branch(m, &program)?;
        let start = m.cycle();
        attack_run(m, &program)?;
        let mut out = finish(m, INJECTED, start)?;
        // Success = the *injected* value crossed the channel; the planted
        // OOB word must meanwhile be architecturally unmodified.
        let intact = m.read_u64(VICTIM_ARRAY + OOB_INDEX * 8)? == SECRET;
        out.leaked = out.leaked && intact;
        Ok(out)
    }
}

/// Spectre v1.2: transient **store to read-only memory** — the write
/// bypasses the page's write-protection inside the window; store-to-load
/// forwarding makes the overwrite visible to transient readers.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV1_2;

impl SpectreV1_2 {
    /// Victim gadget: transiently overwrite a read-only word (`r10` points
    /// into the read-only page) and leak the forwarded result.
    ///
    /// # Errors
    ///
    /// [`AttackError::Isa`] if assembly fails.
    pub fn program() -> Result<Program, AttackError> {
        let b = victim_prologue()
            .imm(Reg::R9, INJECTED)
            .store(Reg::R9, Reg::R10, 0) // transient write to read-only page
            .load(Reg::R6, Reg::R10, 0); // forwarded: protection bypassed
        send_epilogue(b)
    }
}

impl Attack for SpectreV1_2 {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V1_2,
            cve: None,
            impact: "Overwrite read-only memory",
            authorization: "Page read-only bit check",
            illegal_access: "Write read-only memory",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Read-only bit check resolution",
            "Store S (read-only page)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        setup_victim_memory(m)?;
        // A read-only page the transient store will violate.
        let ro_page = USER_SCRATCH;
        m.map_page(
            ro_page,
            PageEntry {
                writable: false,
                ..PageEntry::user_rw(ro_page / 4096)
            },
        );
        m.write_u64(ro_page, 0)?;
        let program = Self::program()?;
        // Train with the write target pointed at a harmless writable word;
        // only the attack run aims it at the read-only page.
        m.set_reg(Reg::R10, BOUND_PTR + 64);
        train_branch(m, &program)?;
        m.set_reg(Reg::R10, ro_page);
        let start = m.cycle();
        attack_run(m, &program)?;
        let mut out = finish(m, INJECTED, start)?;
        // The read-only word must be architecturally untouched.
        let intact = m.read_u64(ro_page)? == 0;
        out.leaked = out.leaked && intact;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::TraceEvent;
    use uarch::UarchConfig;

    #[test]
    fn v1_leaks_on_baseline() {
        let out = SpectreV1.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.squashes >= 1, "the mis-speculation must squash");
    }

    #[test]
    fn v1_architectural_state_is_clean() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup_victim_memory(&mut m).unwrap();
        let p = SpectreV1::program().unwrap();
        train_branch(&mut m, &p).unwrap();
        attack_run(&mut m, &p).unwrap();
        // The out-of-bounds value never reached an architectural register:
        // the attack run's branch was *taken* architecturally, skipping the
        // gadget, so r6 still holds the last training run's in-bounds value.
        assert_eq!(m.reg(Reg::R6), 1);
        assert_ne!(m.reg(Reg::R6), SECRET);
        assert_ne!(m.reg(Reg::R8), SECRET);
    }

    #[test]
    fn v1_blocked_by_nda() {
        let cfg = UarchConfig::builder().nda(true).build();
        let out = SpectreV1.run(&cfg).unwrap();
        assert!(!out.leaked, "{out}");
        assert!(out.defense_blocks > 0);
    }

    #[test]
    fn v1_blocked_by_stt() {
        let out = SpectreV1
            .run(&UarchConfig::builder().stt(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v1_blocked_by_strategy3_variants() {
        for cfg in [
            UarchConfig::builder().delay_on_miss(true).build(),
            UarchConfig::builder().invisible_spec(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = SpectreV1.run(&cfg).unwrap();
            assert!(!out.leaked, "strategy ③ must block v1: {out}");
        }
    }

    #[test]
    fn v1_blocked_by_no_speculative_loads() {
        let out = SpectreV1
            .run(&UarchConfig::builder().no_speculative_loads(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v1_not_blocked_by_meltdown_only_defenses() {
        // Strategy ① at the intra-instruction level (eager permission
        // checks) and KPTI do not address Spectre v1 — the paper's point
        // that defenses must match the missing dependency.
        for cfg in [
            UarchConfig::builder().eager_permission_check(true).build(),
            UarchConfig::builder().kpti(true).build(),
        ] {
            let out = SpectreV1.run(&cfg).unwrap();
            assert!(out.leaked, "v1 must still leak: {out}");
        }
    }

    #[test]
    fn v1_1_overflow_leaks_injected_value() {
        let out = SpectreV1_1.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(INJECTED));
    }

    #[test]
    fn v1_1_blocked_by_nda() {
        let out = SpectreV1_1
            .run(&UarchConfig::builder().nda(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v1_2_overwrites_read_only_transiently() {
        let out = SpectreV1_2.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(INJECTED));
    }

    #[test]
    fn v1_2_blocked_by_invisible_spec() {
        let out = SpectreV1_2
            .run(&UarchConfig::builder().invisible_spec(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn v1_emits_speculative_execution_events() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        setup_victim_memory(&mut m).unwrap();
        let p = SpectreV1::program().unwrap();
        train_branch(&mut m, &p).unwrap();
        attack_run(&mut m, &p).unwrap();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::SpeculativeExecute { .. })));
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::SpeculativeFill { .. })));
    }
}
