//! Load Value Injection (LVI) — the *inverted* MDS attack of Figure 7: the
//! attacker plants a malicious value `M` in the leaky buffers; the
//! **victim's** faulting load transiently consumes `M`, diverting the
//! victim's own dataflow so that the victim leaks its own secret to the
//! attacker's channel.

use crate::common::{
    finish, KERNEL_SECRET, PROBE_BASE, PROBE_STRIDE, SECRET, UNMAPPED, USER_SCRATCH,
};
use crate::graphs::fig7_lvi;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, ProgramBuilder, Reg};
use tsg::SecurityAnalysis;
use uarch::{ExceptionBehavior, Machine, Privilege};

/// The index the attacker injects: it steers the victim's table lookup to
/// the secret's slot.
const MALICIOUS_INDEX: u64 = 5;

/// Page offset shared by the attacker's planting store and the victim's
/// faulting load (the store-buffer partial-address match).
const PLANT_OFFSET: u64 = 0x3C0;

/// Load Value Injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lvi;

impl Attack for Lvi {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::LVI,
            cve: Some("CVE-2020-0551"),
            impact: "Transient injection hijacks victim dataflow",
            authorization: "Load fault check",
            illegal_access: "Forward data from micro-architectural buffers",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig7_lvi()
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.clear_leaky_buffers();

        // Victim-side data: a table whose slot MALICIOUS_INDEX holds the
        // secret the attacker wants.
        m.map_kernel_page(KERNEL_SECRET)?;
        m.write_u64(KERNEL_SECRET + MALICIOUS_INDEX * 8, SECRET)?;
        // The victim's table is its working data, resident in L1 — the
        // two-level transient gadget (index → table → send) must fit in the
        // window opened by the delayed fault.
        m.touch(KERNEL_SECRET + MALICIOUS_INDEX * 8)?;

        // Step 1: the attacker plants M in the store buffer with the page
        // offset the victim's faulting load will use.
        m.map_user_page(USER_SCRATCH)?;
        m.set_privilege(Privilege::User);
        let plant = ProgramBuilder::new()
            .store(Reg::R1, Reg::R0, 0)
            .halt()
            .build()?;
        m.set_reg(Reg::R0, USER_SCRATCH + PLANT_OFFSET);
        m.set_reg(Reg::R1, MALICIOUS_INDEX);
        m.run(&plant)?;

        // Step 2: the *victim* (kernel) runs a gadget containing a faulting
        // load (e.g. a lazily-unmapped page). The injected M replaces the
        // loaded index; the victim then indexes its own table and touches a
        // probe line — becoming a confused-deputy sender.
        m.set_privilege(Privilege::Kernel);
        let victim = ProgramBuilder::new()
            .load(Reg::R6, Reg::R5, 0) // faulting load: consumes injected M
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
            .alu_imm(AluOp::Shl, Reg::R6, Reg::R6, 3)
            .alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R4) // &table[M]
            .load(Reg::R6, Reg::R6, 0) // Load S: the victim's secret
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0) // send
            .label("done")?
            .halt()
            .build()?;
        m.set_exception_behavior(ExceptionBehavior::Handler(
            victim.label("done").expect("label exists"),
        ));
        m.set_reg(Reg::R5, UNMAPPED + PLANT_OFFSET); // the faulting address
        m.set_reg(Reg::R4, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&victim)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;
    use uarch::{TraceEvent, TransientSource};

    #[test]
    fn lvi_injects_and_leaks_victim_secret() {
        let out = Lvi.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
    }

    #[test]
    fn injection_comes_from_store_buffer() {
        // Run with a probe on events: the faulting load must forward the
        // *attacker's index*, not the secret, from the store buffer.
        let mut observed = false;
        let cfg = UarchConfig::default();
        // Re-run and inspect via a custom harness replicating run();
        // simplest: run the attack and verify it both leaked and recorded a
        // StoreBuffer forward of MALICIOUS_INDEX.
        let mut m = machine_with_channel(&cfg).unwrap();
        m.clear_leaky_buffers();
        m.map_kernel_page(KERNEL_SECRET).unwrap();
        m.write_u64(KERNEL_SECRET + MALICIOUS_INDEX * 8, SECRET)
            .unwrap();
        m.map_user_page(USER_SCRATCH).unwrap();
        m.set_privilege(Privilege::User);
        let plant = ProgramBuilder::new()
            .store(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        m.set_reg(Reg::R0, USER_SCRATCH + PLANT_OFFSET);
        m.set_reg(Reg::R1, MALICIOUS_INDEX);
        m.run(&plant).unwrap();
        m.set_privilege(Privilege::Kernel);
        let victim = ProgramBuilder::new()
            .load(Reg::R6, Reg::R5, 0)
            .halt()
            .build()
            .unwrap();
        m.set_exception_behavior(ExceptionBehavior::Handler(1));
        m.set_reg(Reg::R5, UNMAPPED + PLANT_OFFSET);
        m.clear_events();
        m.run(&victim).unwrap();
        for e in m.events() {
            if let TraceEvent::TransientForward { source, value, .. } = e {
                if *source == TransientSource::StoreBuffer && *value == MALICIOUS_INDEX {
                    observed = true;
                }
            }
        }
        assert!(observed, "victim's faulting load must consume injected M");
    }

    #[test]
    fn blocked_by_mds_fix_or_buffer_clearing() {
        let out = Lvi
            .run(&UarchConfig::builder().mds_forwarding(false).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_nda_and_stt() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
        ] {
            let out = Lvi.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }
}
