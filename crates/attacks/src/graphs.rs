//! Attack-graph builders reproducing Figures 1 and 3–7 of the paper.
//!
//! Every builder returns the **vulnerable baseline** graph: the nodes and
//! the dependencies the hardware actually enforces (program order into the
//! speculation trigger, data/address dependencies among the transient
//! instructions, and the squash-or-commit resolution) — but *no* edge from
//! the delayed authorization to the secret access / use / send nodes. Those
//! orderings are declared as [`SecurityAnalysis`] *requirements*, so
//! Theorem 1 reports them as races, and patching them reproduces the
//! paper's red dashed defense arrows (Figure 8 strategies ①–③).

use tsg::{EdgeKind, NodeKind, SecretSource, SecurityAnalysis};

/// Figure 1: the Spectre v1/v2 attack graph (also v1.1, v1.2 and
/// Spectre-RSB with relabeled authorization/access nodes).
///
/// Node labels follow the figure: "Mistrain predictor", "Flush Array_A",
/// the branch instruction issuing the delayed authorization,
/// "Load S" (access), "Compute load address R" (use), "Load R to Cache"
/// (send), "Reload Array_A / Measure time" (receive), and the
/// "Branch resolution" / "Squash or commit" pair.
#[must_use]
pub fn fig1_branch_attack(
    authorization: &str,
    access: &str,
    access_source: SecretSource,
) -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let mistrain = g.add_node("Mistrain predictor", NodeKind::Setup);
    let branch = g.add_node("Conditional/Indirect Branch Instruction", NodeKind::Compute);
    let resolution = g.add_node(authorization, NodeKind::Authorization);
    let access_n = g.add_node(access, NodeKind::SecretAccess(access_source));
    let use_n = g.add_node("Compute load address R", NodeKind::UseSecret);
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    let squash = g.add_node("Squash or commit", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    let edges = [
        (flush, branch, EdgeKind::Program),
        (mistrain, branch, EdgeKind::Program), // setup precedes the victim
        (branch, resolution, EdgeKind::Data),  // the branch initiates its own resolution
        (branch, access_n, EdgeKind::Control), // speculative fetch of the transient path
        (access_n, use_n, EdgeKind::Data),
        (use_n, send, EdgeKind::Address),
        (resolution, squash, EdgeKind::Data),
        (squash, reload, EdgeKind::Program), // receiver runs after the window closes
        (reload, measure, EdgeKind::Data),
    ];
    for (u, v, k) in edges {
        g.add_edge(u, v, k).expect("figure 1 is acyclic");
    }
    sa.require(resolution, access_n).expect("nodes exist");
    sa.require(resolution, use_n).expect("nodes exist");
    sa.require(resolution, send).expect("nodes exist");
    sa
}

/// Figures 3 and 4: the Meltdown / Foreshadow / MDS attack graph, where the
/// authorization ("Load Permission Check") and the access ("Read S from
/// <source>") are micro-ops of the *same* load instruction.
#[must_use]
pub fn fig4_faulting_load(
    authorization: &str,
    access: &str,
    source: SecretSource,
) -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let load = g.add_node("Load instruction", NodeKind::Compute);
    let check = g.add_node(authorization, NodeKind::Authorization);
    let read = g.add_node(access, NodeKind::SecretAccess(source));
    let use_n = g.add_node("Compute load address R", NodeKind::UseSecret);
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    let squash = g.add_node("Load exception: Squash pipe", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    let edges = [
        (flush, load, EdgeKind::Program),
        (load, check, EdgeKind::Data), // the load issues its own permission check…
        (load, read, EdgeKind::Data),  // …and its own data read: the intra-instruction race
        (read, use_n, EdgeKind::Data),
        (use_n, send, EdgeKind::Address),
        (check, squash, EdgeKind::Data),
        (squash, reload, EdgeKind::Program),
        (reload, measure, EdgeKind::Data),
    ];
    for (u, v, k) in edges {
        g.add_edge(u, v, k).expect("figure 4 is acyclic");
    }
    sa.require(check, read).expect("nodes exist");
    sa.require(check, use_n).expect("nodes exist");
    sa.require(check, send).expect("nodes exist");
    sa
}

/// The **unified** Figure 4 graph exactly as the paper draws it: one load
/// instruction whose permission check races with *five* alternative secret
/// sources — memory (Meltdown), cache (Foreshadow), load port (RIDL), line
/// fill buffer (RIDL/ZombieLoad) and store buffer (Fallout) — all feeding
/// the same use→send→receive chain. The paper's red dashed arrows ①–④ are
/// the security dependencies this graph *requires* but does not contain.
#[must_use]
pub fn fig4_unified() -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let load = g.add_node("Load instruction", NodeKind::Compute);
    let check = g.add_node("Load Permission Check", NodeKind::Authorization);
    let sources = [
        ("Read from Memory", SecretSource::Memory),
        ("Read from Cache", SecretSource::Cache),
        ("Read from load port", SecretSource::LoadPort),
        ("Read from line fill buffer", SecretSource::LineFillBuffer),
        ("Read from store buffer", SecretSource::StoreBuffer),
    ];
    let reads: Vec<_> = sources
        .iter()
        .map(|&(label, src)| g.add_node(label, NodeKind::SecretAccess(src)))
        .collect();
    let use_n = g.add_node("Compute load address R", NodeKind::UseSecret);
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    let squash = g.add_node("Load exception: Squash pipe", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    g.add_edge(flush, load, EdgeKind::Program).expect("acyclic");
    g.add_edge(load, check, EdgeKind::Data).expect("acyclic");
    for &r in &reads {
        g.add_edge(load, r, EdgeKind::Data).expect("acyclic");
        g.add_edge(r, use_n, EdgeKind::Data).expect("acyclic");
    }
    g.add_edge(use_n, send, EdgeKind::Address).expect("acyclic");
    g.add_edge(check, squash, EdgeKind::Data).expect("acyclic");
    g.add_edge(squash, reload, EdgeKind::Program)
        .expect("acyclic");
    g.add_edge(reload, measure, EdgeKind::Data)
        .expect("acyclic");

    for &r in &reads {
        sa.require(check, r).expect("nodes exist");
    }
    sa.require(check, use_n).expect("nodes exist");
    sa.require(check, send).expect("nodes exist");
    sa
}

/// Figure 5: special-register attacks (Spectre v3a, Lazy FP): the illegal
/// access reads a special register or stale FPU state instead of memory.
#[must_use]
pub fn fig5_special_register(
    authorization: &str,
    access: &str,
    source: SecretSource,
) -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let reg_access = g.add_node("Register Access", NodeKind::Compute);
    let check = g.add_node(authorization, NodeKind::Authorization);
    let read = g.add_node(access, NodeKind::SecretAccess(source));
    let use_n = g.add_node("Compute load address R", NodeKind::UseSecret);
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    let squash = g.add_node("(Illegal Access) Squash", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    let edges = [
        (flush, reg_access, EdgeKind::Program),
        (reg_access, check, EdgeKind::Data),
        (reg_access, read, EdgeKind::Data),
        (read, use_n, EdgeKind::Data),
        (use_n, send, EdgeKind::Address),
        (check, squash, EdgeKind::Data),
        (squash, reload, EdgeKind::Program),
        (reload, measure, EdgeKind::Data),
    ];
    for (u, v, k) in edges {
        g.add_edge(u, v, k).expect("figure 5 is acyclic");
    }
    sa.require(check, read).expect("nodes exist");
    sa.require(check, use_n).expect("nodes exist");
    sa.require(check, send).expect("nodes exist");
    sa
}

/// Figure 6: the memory-disambiguation attack (Spectre v4): the
/// authorization is the store-load address disambiguation; the illegal
/// access reads stale data the pending store should have overwritten.
#[must_use]
pub fn fig6_disambiguation() -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let store = g.add_node("Store S", NodeKind::Compute);
    let load = g.add_node("Load instruction", NodeKind::Compute);
    let disamb = g.add_node("Memory address disambiguation", NodeKind::Authorization);
    let read = g.add_node(
        "Read S (stale)",
        NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
    );
    let use_n = g.add_node("Compute load address R", NodeKind::UseSecret);
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    let squash = g.add_node("(Illegal Access) Squash", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    let edges = [
        (flush, store, EdgeKind::Program),
        (store, load, EdgeKind::Program),
        (store, disamb, EdgeKind::Data), // the pending store's address feeds disambiguation
        (load, disamb, EdgeKind::Data),
        (load, read, EdgeKind::Data),
        (read, use_n, EdgeKind::Data),
        (use_n, send, EdgeKind::Address),
        (disamb, squash, EdgeKind::Data),
        (squash, reload, EdgeKind::Program),
        (reload, measure, EdgeKind::Data),
    ];
    for (u, v, k) in edges {
        g.add_edge(u, v, k).expect("figure 6 is acyclic");
    }
    sa.require(disamb, read).expect("nodes exist");
    sa.require(disamb, use_n).expect("nodes exist");
    sa.require(disamb, send).expect("nodes exist");
    sa
}

/// Figure 7: Load Value Injection — the attacker *plants* a malicious value
/// M in the leaky buffers; the victim's faulting load consumes it and the
/// victim's own code becomes the confused-deputy sender.
#[must_use]
pub fn fig7_lvi() -> SecurityAnalysis {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let plant = g.add_node(
        "Place a malicious value M in hardware buffers",
        NodeKind::Setup,
    );
    let flush = g.add_node("Flush Array_A", NodeKind::Setup);
    let load = g.add_node("Load instruction", NodeKind::Compute);
    let check = g.add_node("Load permission check", NodeKind::Authorization);
    let read_m = g.add_node(
        "Read M from store buffer",
        NodeKind::SecretAccess(SecretSource::StoreBuffer),
    );
    let divert = g.add_node(
        "Victim's control or data flow diverted by M",
        NodeKind::UseSecret,
    );
    let access_s = g.add_node("Load S", NodeKind::UseSecret);
    let send = g.add_node("Load R to cache", NodeKind::Send);
    let squash = g.add_node("(Illegal Access) Squash", NodeKind::Resolution);
    let reload = g.add_node("Reload Array_A", NodeKind::Receive);
    let measure = g.add_node("Measure time", NodeKind::Receive);

    let edges = [
        (plant, load, EdgeKind::Program),
        (flush, load, EdgeKind::Program),
        (load, check, EdgeKind::Data),
        (load, read_m, EdgeKind::Data),
        (read_m, divert, EdgeKind::Data),
        (divert, access_s, EdgeKind::Address),
        (access_s, send, EdgeKind::Address),
        (check, squash, EdgeKind::Data),
        (squash, reload, EdgeKind::Program),
        (reload, measure, EdgeKind::Data),
    ];
    for (u, v, k) in edges {
        g.add_edge(u, v, k).expect("figure 7 is acyclic");
    }
    sa.require(check, read_m).expect("nodes exist");
    sa.require(check, divert).expect("nodes exist");
    sa.require(check, send).expect("nodes exist");
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_baseline_races(sa: &SecurityAnalysis, expected_vulns: usize) {
        let v = sa.vulnerabilities().unwrap();
        assert_eq!(v.len(), expected_vulns, "baseline must race: {v:?}");
        // Patching the *access* edge alone fixes the downstream chain.
        let mut patched = sa.clone();
        patched.patch(v[0].dependency).unwrap();
        assert!(patched.is_secure().unwrap());
    }

    #[test]
    fn fig1_has_three_missing_dependencies() {
        let sa = fig1_branch_attack(
            "Branch resolution: correct flow",
            "Load S",
            SecretSource::ArchitecturalMemory,
        );
        check_baseline_races(&sa, 3);
        assert_eq!(sa.graph().node_count(), 10);
    }

    #[test]
    fn fig4_models_intra_instruction_race() {
        let sa = fig4_faulting_load(
            "Load Permission Check",
            "Read from Memory",
            SecretSource::Memory,
        );
        check_baseline_races(&sa, 3);
        // The load instruction issues *both* the check and the read — the
        // same-instruction decomposition of Insight 6.
        let g = sa.graph();
        let load = g.find_by_label("Load instruction").unwrap();
        let check = g.find_by_label("Load Permission Check").unwrap();
        let read = g.find_by_label("Read from Memory").unwrap();
        assert!(g.has_path(load, check).unwrap());
        assert!(g.has_path(load, read).unwrap());
        assert!(g.has_race(check, read).unwrap());
    }

    #[test]
    fn fig5_fig6_fig7_race() {
        check_baseline_races(
            &fig5_special_register("Permission Check", "Read from FPU", SecretSource::Fpu),
            3,
        );
        check_baseline_races(&fig6_disambiguation(), 3);
        check_baseline_races(&fig7_lvi(), 3);
    }

    #[test]
    fn fig4_unified_has_five_source_races() {
        let sa = fig4_unified();
        // 5 sources + use + send = 7 missing dependencies.
        assert_eq!(sa.vulnerabilities().unwrap().len(), 7);
        // Patching only the memory read leaves the other four sources
        // racing — the §V-B insufficiency argument on the real figure.
        let mut partial = sa.clone();
        let check = partial
            .graph()
            .find_by_label("Load Permission Check")
            .unwrap();
        let mem = partial.graph().find_by_label("Read from Memory").unwrap();
        partial
            .graph_mut()
            .add_edge(check, mem, EdgeKind::Security)
            .unwrap();
        let left = partial.vulnerabilities().unwrap();
        assert_eq!(left.len(), 4, "four alternative sources still race");
        // Patching *every* datapath (or equivalently, the use node) fixes it.
        let mut full = sa.clone();
        full.patch_all().unwrap();
        assert!(full.is_secure().unwrap());
    }

    #[test]
    fn dot_export_works_for_every_figure() {
        for sa in [
            fig1_branch_attack("auth", "acc", SecretSource::ArchitecturalMemory),
            fig4_faulting_load("auth", "acc", SecretSource::Memory),
            fig5_special_register("auth", "acc", SecretSource::SpecialRegister),
            fig6_disambiguation(),
            fig7_lvi(),
        ] {
            let dot = sa.graph().to_dot("figure");
            assert!(dot.contains("digraph"));
        }
    }
}
