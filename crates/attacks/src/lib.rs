//! # `attacks` — executable speculative-execution attack variants
//!
//! Every attack of Table III of "New Models for Understanding and Reasoning
//! about Speculative Execution Attacks" (HPCA 2021), each provided as:
//!
//! 1. an **executable proof of concept** on the [`uarch`] simulator
//!    ([`Attack::run`]): the attack program is written in the [`isa`],
//!    mis-trains/faults its way into a transient window, exfiltrates a
//!    planted secret through a Flush+Reload channel, and reports whether
//!    the secret was recovered;
//! 2. an **attack graph** ([`Attack::graph`]): the paper's TSG model of the
//!    same attack (Figures 1 and 3–7), with the authorization → access
//!    security-dependency requirements declared, so the missing edges can
//!    be found with Theorem 1 and patched;
//! 3. **catalog metadata** ([`Attack::info`]): CVE, impact, authorization
//!    and illegal-access node names — the rows of Tables I and III.
//!
//! ```
//! use attacks::{catalog, Attack};
//! use uarch::UarchConfig;
//!
//! # fn main() -> Result<(), attacks::AttackError> {
//! for attack in catalog() {
//!     let out = attack.run(&UarchConfig::default())?;
//!     assert!(out.leaked, "{} must leak on the vulnerable baseline", attack.info().name);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bhi;
pub mod common;
pub mod foreshadow;
pub mod graphs;
pub mod inception;
pub mod lazy_fp;
pub mod lvi;
pub mod mds;
pub mod meltdown;
pub mod retbleed;
pub mod spectre_rsb;
pub mod spectre_v1;
pub mod spectre_v2;
pub mod spectre_v4;
pub mod tsx;
pub mod zenbleed;

use std::error::Error;
use std::fmt;
use tsg::SecurityAnalysis;
use uarch::{Machine, UarchConfig};

pub use common::{BatchRunner, RunnerPool};

/// Whether authorization and access live in one instruction or two — the
/// paper's Insight 6, which decides the modeling level (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// Spectre-type: authorization (a branch / disambiguation) and access
    /// are *different* instructions — instruction-level modeling suffices.
    Spectre,
    /// Meltdown-type: authorization and access are micro-ops of the *same*
    /// instruction — intra-instruction modeling is required.
    Meltdown,
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackClass::Spectre => f.write_str("Spectre-type (inter-instruction)"),
            AttackClass::Meltdown => f.write_str("Meltdown-type (intra-instruction)"),
        }
    }
}

/// Catalog metadata for one attack (rows of Tables I and III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackInfo {
    /// Canonical name, e.g. `"Spectre v1"`.
    pub name: &'static str,
    /// CVE identifier, if assigned.
    pub cve: Option<&'static str>,
    /// Impact summary (Table I).
    pub impact: &'static str,
    /// The authorization node (Table III).
    pub authorization: &'static str,
    /// The illegal-access node (Table III).
    pub illegal_access: &'static str,
    /// Inter- vs intra-instruction race.
    pub class: AttackClass,
}

/// Outcome of one attack execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The secret planted for the attack to steal.
    pub secret: u64,
    /// The symbol the covert-channel receiver recovered, if any.
    pub recovered: Option<u64>,
    /// Whether the recovered symbol equals the secret.
    pub leaked: bool,
    /// Transient forwards observed during the attack.
    pub transient_forwards: usize,
    /// Squash events observed.
    pub squashes: usize,
    /// Defense-blocked events observed (why a defended run failed).
    pub defense_blocks: usize,
    /// Total cycles the attack consumed (all phases).
    pub cycles: u64,
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "secret={:#x} recovered={} leaked={} (forwards={}, squashes={}, blocks={})",
            self.secret,
            self.recovered
                .map_or_else(|| "none".to_owned(), |v| format!("{v:#x}")),
            self.leaked,
            self.transient_forwards,
            self.squashes,
            self.defense_blocks
        )
    }
}

/// Errors from attack construction or execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// The simulator failed.
    Uarch(uarch::UarchError),
    /// The attack program failed to assemble.
    Isa(isa::IsaError),
    /// The attack graph failed to build.
    Tsg(tsg::TsgError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Uarch(e) => write!(f, "simulator error: {e}"),
            AttackError::Isa(e) => write!(f, "program error: {e}"),
            AttackError::Tsg(e) => write!(f, "attack graph error: {e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Uarch(e) => Some(e),
            AttackError::Isa(e) => Some(e),
            AttackError::Tsg(e) => Some(e),
        }
    }
}

impl From<uarch::UarchError> for AttackError {
    fn from(e: uarch::UarchError) -> Self {
        AttackError::Uarch(e)
    }
}

impl From<isa::IsaError> for AttackError {
    fn from(e: isa::IsaError) -> Self {
        AttackError::Isa(e)
    }
}

impl From<tsg::TsgError> for AttackError {
    fn from(e: tsg::TsgError) -> Self {
        AttackError::Tsg(e)
    }
}

/// Canonical attack-name constants — the single source for every string
/// that identifies a Table-III variant, shared by the registry, the bench
/// binaries, and the campaign engine. Matching on one of these instead of
/// a literal keeps a renamed variant from silently un-matching a consumer.
pub mod names {
    /// Spectre v1 (bounds-check bypass).
    pub const SPECTRE_V1: &str = "Spectre v1";
    /// Spectre v1.1 (bounds-check bypass store).
    pub const SPECTRE_V1_1: &str = "Spectre v1.1";
    /// Spectre v1.2 (read-only protection bypass).
    pub const SPECTRE_V1_2: &str = "Spectre v1.2";
    /// Spectre v2 (branch target injection).
    pub const SPECTRE_V2: &str = "Spectre v2";
    /// Meltdown (user reads kernel memory).
    pub const MELTDOWN: &str = "Meltdown";
    /// Spectre v3a (system-register read).
    pub const SPECTRE_V3A: &str = "Spectre v3a";
    /// Spectre v4 (speculative store bypass).
    pub const SPECTRE_V4: &str = "Spectre v4";
    /// Spectre-RSB (return stack buffer underflow/poisoning).
    pub const SPECTRE_RSB: &str = "Spectre-RSB";
    /// Foreshadow (L1TF against SGX enclaves).
    pub const FORESHADOW: &str = "Foreshadow";
    /// Foreshadow-OS (L1TF-NG against the OS).
    pub const FORESHADOW_OS: &str = "Foreshadow-OS";
    /// Foreshadow-VMM (L1TF-NG across virtual machines).
    pub const FORESHADOW_VMM: &str = "Foreshadow-VMM";
    /// Lazy FP state restore.
    pub const LAZY_FP: &str = "Lazy FP";
    /// RIDL (MDS via load ports).
    pub const RIDL: &str = "RIDL";
    /// ZombieLoad (MDS via line fill buffers).
    pub const ZOMBIELOAD: &str = "ZombieLoad";
    /// Fallout (MDS via store buffers).
    pub const FALLOUT: &str = "Fallout";
    /// Load Value Injection.
    pub const LVI: &str = "LVI";
    /// TSX Asynchronous Abort.
    pub const TAA: &str = "TAA";
    /// CacheOut (L1D eviction sampling).
    pub const CACHEOUT: &str = "CacheOut";
    /// Retbleed (BTB-fallback return target injection, BHI-style).
    pub const RETBLEED: &str = "Retbleed";
    /// BHI (same-context branch history injection, no RSB underflow).
    pub const BHI: &str = "BHI";
    /// Zenbleed (vector-register use-after-free behind a rolled-back branch).
    pub const ZENBLEED: &str = "Zenbleed";
    /// Inception (recursive RSB overflow / speculative return stack overflow).
    pub const INCEPTION: &str = "Inception";
}

/// One attack variant: metadata, attack graph, and executable PoC.
///
/// `Send + Sync` is required so variants can live in the `'static`
/// [`registry`] and be evaluated from campaign worker threads; every
/// variant is a plain value type, so this costs implementors nothing.
pub trait Attack: fmt::Debug + Send + Sync {
    /// Catalog metadata (Tables I and III).
    fn info(&self) -> AttackInfo;

    /// The attack graph (the paper's figure for this variant), with the
    /// authorization → access/use/send security dependencies declared as
    /// requirements but **not** enforced by edges — i.e. the vulnerable
    /// baseline graph.
    fn graph(&self) -> SecurityAnalysis;

    /// Runs the attack on a *prepared* machine: pristine (fresh from
    /// [`Machine::new`] or [`Machine::reset`]) with the probe channel
    /// established and the event log cleared — exactly the state
    /// [`common::machine_with_channel`] and [`BatchRunner`] provide. This is
    /// the batched entry point: campaign workers reset one warm machine per
    /// task instead of rebuilding it.
    ///
    /// # Errors
    ///
    /// [`AttackError`] if the simulator rejects the run (cycle limit, bad
    /// mapping) — *not* when the attack merely fails to leak; that is
    /// reported via [`AttackOutcome::leaked`].
    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError>;

    /// Runs the attack end-to-end on a fresh machine with configuration
    /// `cfg` and reports the outcome. Thin wrapper over [`Attack::run_in`]
    /// that builds (and drops) a machine per call; batch consumers should
    /// prefer a [`BatchRunner`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Attack::run_in`].
    fn run(&self, cfg: &UarchConfig) -> Result<AttackOutcome, AttackError> {
        let mut m = Machine::new(cfg.clone());
        common::prepare_channel(&mut m)?;
        self.run_in(&mut m)
    }
}

/// The one list of Table-III variants, in the paper's order. Every
/// consumer view ([`registry`], [`catalog`]) is generated from this macro,
/// so adding a variant here updates every table, figure, and campaign.
macro_rules! with_attack_list {
    ($apply:ident) => {
        $apply!(
            spectre_v1::SpectreV1,
            spectre_v1::SpectreV1_1,
            spectre_v1::SpectreV1_2,
            spectre_v2::SpectreV2,
            meltdown::Meltdown,
            meltdown::SpectreV3a,
            spectre_v4::SpectreV4,
            spectre_rsb::SpectreRsb,
            foreshadow::Foreshadow::sgx(),
            foreshadow::Foreshadow::os(),
            foreshadow::Foreshadow::vmm(),
            lazy_fp::LazyFp,
            mds::Ridl,
            mds::ZombieLoad,
            mds::Fallout,
            lvi::Lvi,
            tsx::Taa,
            tsx::CacheOut,
            retbleed::Retbleed,
            bhi::Bhi,
            zenbleed::ZenBleed,
            inception::Inception,
        )
    };
}

macro_rules! as_static_registry {
    ($($attack:expr),+ $(,)?) => {
        &[$(&$attack),+]
    };
}

macro_rules! as_boxed_catalog {
    ($($attack:expr),+ $(,)?) => {
        vec![$(Box::new($attack)),+]
    };
}

/// All 17 attack variants of Table III (18 rows: Foreshadow-NG contributes
/// OS and VMM flavors) in the paper's order, plus post-paper registry
/// growth (Retbleed, BHI, Zenbleed, Inception) appended at the end, as a
/// `'static` registry.
///
/// This is the canonical iteration surface: the campaign engine, the bench
/// binaries and the examples all consume this slice, so a new variant
/// added to the internal list shows up in every table and matrix at once.
#[must_use]
pub fn registry() -> &'static [&'static dyn Attack] {
    static REGISTRY: &[&'static dyn Attack] = with_attack_list!(as_static_registry);
    REGISTRY
}

/// Looks up a registry attack by its canonical [`names`] constant.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Attack> {
    registry().iter().copied().find(|a| a.info().name == name)
}

/// The Table-III variants as owned trait objects (same list and order as
/// [`registry`]), for callers that want to extend or reorder the set.
#[must_use]
pub fn catalog() -> Vec<Box<dyn Attack>> {
    with_attack_list!(as_boxed_catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_table_iii() {
        let c = catalog();
        // 17 Table-III rows (Foreshadow-NG contributes OS+VMM) + Retbleed,
        // BHI, Zenbleed and Inception from post-paper registry growth.
        assert_eq!(c.len(), 22);
        let names: Vec<&str> = c.iter().map(|a| a.info().name).collect();
        for expected in [
            "Spectre v1",
            "Spectre v1.1",
            "Spectre v1.2",
            "Spectre v2",
            "Meltdown",
            "Spectre v3a",
            "Spectre v4",
            "Spectre-RSB",
            "Foreshadow",
            "Foreshadow-OS",
            "Foreshadow-VMM",
            "Lazy FP",
            "RIDL",
            "ZombieLoad",
            "Fallout",
            "LVI",
            "TAA",
            "CacheOut",
            "Retbleed",
            "BHI",
            "Zenbleed",
            "Inception",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_attack_has_consistent_metadata() {
        for a in catalog() {
            let info = a.info();
            assert!(!info.name.is_empty());
            assert!(!info.impact.is_empty());
            assert!(!info.authorization.is_empty());
            assert!(!info.illegal_access.is_empty());
        }
    }

    #[test]
    fn every_graph_has_a_missing_security_dependency() {
        // The vulnerable baseline graph of every variant must exhibit at
        // least one authorization/access race (the paper's root cause).
        for a in catalog() {
            let g = a.graph();
            let vulns = g.vulnerabilities().unwrap();
            assert!(
                !vulns.is_empty(),
                "{} graph shows no missing security dependency",
                a.info().name
            );
        }
    }

    #[test]
    fn registry_and_catalog_are_the_same_list() {
        let reg = registry();
        let cat = catalog();
        assert_eq!(reg.len(), cat.len());
        for (r, c) in reg.iter().zip(&cat) {
            assert_eq!(r.info(), c.info());
        }
    }

    #[test]
    fn find_resolves_every_registered_name_and_rejects_others() {
        for a in registry() {
            let found = find(a.info().name).expect("registered name resolves");
            assert_eq!(found.info(), a.info());
        }
        assert!(find("Spectre v9").is_none());
    }

    #[test]
    fn registry_names_match_the_names_module() {
        let names: Vec<&str> = registry().iter().map(|a| a.info().name).collect();
        for expected in [
            names::SPECTRE_V1,
            names::SPECTRE_V1_1,
            names::SPECTRE_V1_2,
            names::SPECTRE_V2,
            names::MELTDOWN,
            names::SPECTRE_V3A,
            names::SPECTRE_V4,
            names::SPECTRE_RSB,
            names::FORESHADOW,
            names::FORESHADOW_OS,
            names::FORESHADOW_VMM,
            names::LAZY_FP,
            names::RIDL,
            names::ZOMBIELOAD,
            names::FALLOUT,
            names::LVI,
            names::TAA,
            names::CACHEOUT,
            names::RETBLEED,
            names::BHI,
            names::ZENBLEED,
            names::INCEPTION,
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn class_display() {
        assert!(AttackClass::Spectre.to_string().contains("inter"));
        assert!(AttackClass::Meltdown.to_string().contains("intra"));
    }

    #[test]
    fn outcome_display() {
        let o = AttackOutcome {
            secret: 0xa7,
            recovered: Some(0xa7),
            leaked: true,
            transient_forwards: 1,
            squashes: 1,
            defense_blocks: 0,
            cycles: 100,
        };
        assert!(o.to_string().contains("leaked=true"));
        let o2 = AttackOutcome {
            recovered: None,
            leaked: false,
            ..o
        };
        assert!(o2.to_string().contains("none"));
    }
}
