//! Shared plumbing for the attack PoCs: memory layout, the covert-channel
//! receiver harness, and event accounting.

use crate::{Attack, AttackError, AttackOutcome};
use channels::flush_reload::{FlushReload, SLOT_STRIDE};
use uarch::{Machine, TraceEvent, UarchConfig};

/// Probe array base for the Flush+Reload channel (step 1a).
pub const PROBE_BASE: u64 = 0x100_0000;

/// Number of probe slots: one byte of secret per pass.
pub const PROBE_SLOTS: usize = 256;

/// Victim in-bounds array (Spectre v1 family).
pub const VICTIM_ARRAY: u64 = 0x1000;

/// Two-level pointer chain that delays the bounds check: `BOUND_PTR`
/// holds the address of `BOUND_CELL`, which holds the array length.
/// Flushing both lines makes the *authorization* ~2 misses slow — the
/// speculation window.
pub const BOUND_PTR: u64 = 0x2000;

/// Second hop of the bound pointer chain.
pub const BOUND_CELL: u64 = 0x2100;

/// Kernel page holding the Meltdown/Foreshadow secret.
pub const KERNEL_SECRET: u64 = 0x20_0000;

/// A scratch user page various PoCs use.
pub const USER_SCRATCH: u64 = 0x30_0000;

/// An *unmapped* virtual page used by MDS PoCs for their faulting loads.
pub const UNMAPPED: u64 = 0x66_0000;

/// The byte value planted as the secret in every PoC (non-zero so the
/// architectural re-execution guard `beq r, zero` can filter dead paths).
pub const SECRET: u64 = 0xA7;

/// The Flush+Reload channel every PoC uses by default.
#[must_use]
pub fn probe_channel() -> FlushReload {
    FlushReload::new(PROBE_BASE, PROBE_SLOTS)
}

/// The slot stride as an immediate for attack programs
/// (`send_addr = PROBE_BASE + secret * PROBE_STRIDE`).
pub const PROBE_STRIDE: u64 = SLOT_STRIDE;

/// Builds the outcome from the machine's event log and the channel verdict.
///
/// # Errors
///
/// Propagates [`AttackError`] from the receive pass.
pub fn finish(
    m: &mut Machine,
    secret: u64,
    start_cycle: u64,
) -> Result<AttackOutcome, AttackError> {
    let reading = probe_channel().receive(m)?;
    let recovered = reading.recovered.map(|s| s as u64);
    let mut transient_forwards = 0;
    let mut squashes = 0;
    let mut defense_blocks = 0;
    for e in m.events() {
        match e {
            TraceEvent::TransientForward { .. } => transient_forwards += 1,
            TraceEvent::Squash { .. } => squashes += 1,
            TraceEvent::DefenseBlocked { .. } => defense_blocks += 1,
            _ => {}
        }
    }
    Ok(AttackOutcome {
        secret,
        recovered,
        leaked: recovered == Some(secret),
        transient_forwards,
        squashes,
        defense_blocks,
        cycles: m.cycle() - start_cycle,
    })
}

/// Prepares the probe channel (mapped + flushed) on a pristine machine —
/// fresh from [`Machine::new`] or [`Machine::reset`] — and clears the event
/// log: the common step-1 setup shared by the per-call and batched paths.
///
/// # Errors
///
/// Propagates [`AttackError`] from channel preparation.
pub fn prepare_channel(m: &mut Machine) -> Result<(), AttackError> {
    probe_channel().prepare(m)?;
    m.clear_events();
    Ok(())
}

/// Creates a machine with the probe channel prepared (mapped + flushed) and
/// the event log cleared — the common step-1 setup.
///
/// # Errors
///
/// Propagates [`AttackError`] from channel preparation.
pub fn machine_with_channel(cfg: &UarchConfig) -> Result<Machine, AttackError> {
    let mut m = Machine::new(cfg.clone());
    prepare_channel(&mut m)?;
    Ok(m)
}

/// A warm-machine pool of one: runs attacks back-to-back on a single
/// reusable [`Machine`], resetting (never rebuilding) between runs.
///
/// [`BatchRunner::run`] is observationally identical to [`Attack::run`] —
/// [`Machine::reset`] restores pristine post-`new` state and
/// [`prepare_channel`] re-establishes the covert channel — but skips every
/// per-cell heap allocation, which dominates campaign setup cost. Each
/// campaign worker thread owns one `BatchRunner`.
#[derive(Debug, Default)]
pub struct BatchRunner {
    machine: Option<Machine>,
}

impl BatchRunner {
    /// Creates an empty pool; the machine is built lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `attack` under `cfg` on the pooled machine.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Attack::run`].
    pub fn run(
        &mut self,
        attack: &dyn Attack,
        cfg: &UarchConfig,
    ) -> Result<AttackOutcome, AttackError> {
        let m = match self.machine.as_mut() {
            Some(m) => {
                m.reset(cfg);
                m
            }
            None => self.machine.insert(Machine::new(cfg.clone())),
        };
        prepare_channel(m)?;
        attack.run_in(m)
    }
}

/// A shared checkout/checkin pool of warm [`BatchRunner`]s for callers
/// whose workers are not long-lived threads — e.g. a verdict-store
/// simulate-on-miss path where any request thread may need a machine for
/// one run.
///
/// `checkout` hands back an idle warm runner when one exists (its machine
/// survives from the previous user, so the next [`BatchRunner::run`] is a
/// reset, not a rebuild) and a cold one otherwise; `checkin` returns the
/// runner for the next caller. The pool never blocks: contention degrades
/// to building a fresh runner, never to waiting.
#[derive(Debug, Default)]
pub struct RunnerPool {
    idle: std::sync::Mutex<Vec<BatchRunner>>,
}

impl RunnerPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a runner out of the pool — warm if one is idle, freshly
    /// built otherwise.
    #[must_use]
    pub fn checkout(&self) -> BatchRunner {
        self.idle
            .lock()
            .map(|mut idle| idle.pop())
            .unwrap_or_default()
            .unwrap_or_default()
    }

    /// Returns a runner to the pool so its warm machine serves the next
    /// [`RunnerPool::checkout`].
    pub fn checkin(&self, runner: BatchRunner) {
        if let Ok(mut idle) = self.idle.lock() {
            idle.push(runner);
        }
    }

    /// How many warm runners are currently idle in the pool.
    #[must_use]
    pub fn idle_runners(&self) -> usize {
        self.idle.lock().map(|idle| idle.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_pool_checkout_checkin_keeps_machines_warm() {
        let pool = RunnerPool::new();
        assert_eq!(pool.idle_runners(), 0);
        let mut r = pool.checkout();
        let out = r
            .run(crate::registry()[0], &uarch::UarchConfig::default())
            .unwrap();
        assert!(out.cycles > 0);
        pool.checkin(r);
        assert_eq!(pool.idle_runners(), 1);
        // The next checkout reuses the warm runner instead of building one.
        let _warm = pool.checkout();
        assert_eq!(pool.idle_runners(), 0);
    }

    #[test]
    fn channel_setup_is_clean() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        let ch = probe_channel();
        assert!(ch.resident_slots(&m).unwrap().is_empty());
        assert!(m.events().is_empty());
        // A send then finish() recovers it.
        m.touch(ch.slot_address(SECRET as usize)).unwrap();
        let start = m.cycle();
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(out.leaked);
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.cycles > 0);
    }

    #[test]
    fn finish_reports_miss_when_nothing_sent() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        let start = m.cycle();
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(!out.leaked);
        assert_eq!(out.recovered, None);
    }
}
