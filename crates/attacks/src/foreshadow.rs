//! Foreshadow / L1 Terminal Fault (SGX, OS and VMM flavors) — the
//! Meltdown-family variant that reads the secret **from the L1 data cache**
//! after a *terminal* page fault (present bit clear or reserved bits set),
//! using the stale frame bits of the PTE (Figure 4, branch ①→"Read from
//! Cache").

use crate::common::{finish, KERNEL_SECRET, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig4_faulting_load;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::mmu::PageEntry;
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Which isolation boundary the terminal fault breaches — the three rows of
/// Table III this module covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForeshadowFlavor {
    /// The original SGX-enclave attack (CVE-2018-3615).
    Sgx,
    /// Foreshadow-OS (CVE-2018-3620).
    Os,
    /// Foreshadow-VMM (CVE-2018-3646).
    Vmm,
}

/// A Foreshadow attack instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Foreshadow {
    flavor: ForeshadowFlavor,
}

impl Foreshadow {
    /// The SGX-enclave flavor.
    #[must_use]
    pub const fn sgx() -> Self {
        Foreshadow {
            flavor: ForeshadowFlavor::Sgx,
        }
    }

    /// The OS flavor (Foreshadow-NG).
    #[must_use]
    pub const fn os() -> Self {
        Foreshadow {
            flavor: ForeshadowFlavor::Os,
        }
    }

    /// The VMM flavor (Foreshadow-NG).
    #[must_use]
    pub const fn vmm() -> Self {
        Foreshadow {
            flavor: ForeshadowFlavor::Vmm,
        }
    }

    fn program() -> Result<Program, AttackError> {
        Ok(ProgramBuilder::new()
            .load(Reg::R6, Reg::R5, 0) // terminal-faulting load
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0)
            .label("done")?
            .halt()
            .build()?)
    }
}

impl Attack for Foreshadow {
    fn info(&self) -> AttackInfo {
        match self.flavor {
            ForeshadowFlavor::Sgx => AttackInfo {
                name: crate::names::FORESHADOW,
                cve: Some("CVE-2018-3615"),
                impact: "SGX enclave memory leakage",
                authorization: "Page permission check",
                illegal_access: "Read enclave data in L1 cache from outside enclave",
                class: AttackClass::Meltdown,
            },
            ForeshadowFlavor::Os => AttackInfo {
                name: crate::names::FORESHADOW_OS,
                cve: Some("CVE-2018-3620"),
                impact: "OS memory leakage",
                authorization: "Page permission check",
                illegal_access: "Read kernel data in cache",
                class: AttackClass::Meltdown,
            },
            ForeshadowFlavor::Vmm => AttackInfo {
                name: crate::names::FORESHADOW_VMM,
                cve: Some("CVE-2018-3646"),
                impact: "VMM memory leakage",
                authorization: "Page permission check",
                illegal_access: "Read VMM data in cache",
                class: AttackClass::Meltdown,
            },
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "Load Permission Check",
            "Read from Cache",
            SecretSource::Cache,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        // The protected page: PTE exists but the present bit is clear
        // (SGX flavor) or reserved bits are set (NG flavors) — a *terminal*
        // fault whose stale frame bits still address the L1.
        // SGX flavor: present bit cleared; NG flavors: reserved bits set.
        let not_present = self.flavor == ForeshadowFlavor::Sgx;
        m.map_page(
            KERNEL_SECRET,
            PageEntry {
                present: !not_present,
                reserved: !not_present,
                ..PageEntry::user_rw(KERNEL_SECRET / 4096)
            },
        );
        // Plant the secret and — crucially — leave it resident in L1: the
        // enclave/kernel/VM victim touched it recently.
        m.write_u64(KERNEL_SECRET, SECRET)?;
        m.touch(KERNEL_SECRET)?;
        m.set_privilege(Privilege::User);
        let program = Self::program()?;
        m.set_exception_behavior(ExceptionBehavior::Handler(
            program.label("done").expect("label exists"),
        ));
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&program)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;
    use uarch::{TraceEvent, TransientSource};

    #[test]
    fn all_flavors_leak_on_baseline() {
        for a in [Foreshadow::sgx(), Foreshadow::os(), Foreshadow::vmm()] {
            let out = a.run(&UarchConfig::default()).unwrap();
            assert!(out.leaked, "{}: {out}", a.info().name);
        }
    }

    #[test]
    fn secret_comes_from_the_l1() {
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        let a = Foreshadow::sgx();
        // Re-run manually to inspect events.
        let out = a.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked);
        // The dedicated event check: run a fresh attack with a scoped
        // machine is complex; instead assert the flavor-independent
        // property through the public run — covered — and sanity check the
        // source label in the graph.
        let g = a.graph();
        let access = g.graph().find_by_label("Read from Cache");
        assert!(access.is_some());
        let _ = &mut m;
    }

    #[test]
    fn no_leak_when_secret_not_in_l1() {
        // Flush the secret line before the attack: the terminal fault then
        // has nothing to read — Foreshadow specifically needs L1 residence.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.map_page(
            KERNEL_SECRET,
            PageEntry {
                present: false,
                ..PageEntry::user_rw(KERNEL_SECRET / 4096)
            },
        );
        m.write_u64(KERNEL_SECRET, SECRET).unwrap();
        // NOT touched: secret only in memory, not L1.
        m.set_privilege(Privilege::User);
        let program = Foreshadow::program().unwrap();
        m.set_exception_behavior(ExceptionBehavior::Handler(program.label("done").unwrap()));
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&program).unwrap();
        let out = finish(&mut m, SECRET, start).unwrap();
        assert!(!out.leaked, "terminal fault must not read memory: {out}");
        // No Cache-source transient forward occurred.
        assert!(!m.events().iter().any(|e| matches!(
            e,
            TraceEvent::TransientForward {
                source: TransientSource::Cache,
                ..
            }
        )));
    }

    #[test]
    fn blocked_by_l1tf_fix() {
        let out = Foreshadow::sgx()
            .run(
                &UarchConfig::builder()
                    .l1tf_forwarding(false)
                    .mds_forwarding(false)
                    .build(),
            )
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_eager_permission_check() {
        let out = Foreshadow::os()
            .run(&UarchConfig::builder().eager_permission_check(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_strategy2() {
        let out = Foreshadow::vmm()
            .run(&UarchConfig::builder().nda(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }
}
