//! Retbleed — BTB-fallback return target injection (CVE-2022-29901):
//! when the return stack buffer underflows, the front-end predicts the
//! `ret` like an ordinary indirect branch, from the *untagged, shared*
//! branch target buffer. The attacker therefore trains the BTB at the
//! victim return's pc (BHI-style cross-context history aliasing) and the
//! victim's return transiently "returns" into an attacker-chosen gadget —
//! Spectre v2 reach through an instruction every mitigation list treated
//! as covered by RSB stuffing alone.
//!
//! The variant post-dates the paper, but its graph is the same Figure-1
//! shape: the authorization is the return target resolution; the
//! predictor-flavor knob of the campaign grid decides the verdict.
//! A shared BTB leaks; flush-on-switch and retpoline-style prediction
//! avoidance block; RSB *stuffing* — sufficient for Spectre-RSB — does
//! **not**: the transient path drains the stuffed entries and still
//! reaches the BTB fallback, mirroring why the real-world fix was
//! retpoline-on-ret/IBPB rather than stuffing.

use crate::common::{finish, probe_channel, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::fig1_branch_attack;
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// Victim-private secret page.
const VICTIM_SECRET: u64 = 0x5C_0000;

/// Cell whose (flushed) load delays the victim's return resolution.
const DELAY_CELL: u64 = 0x5D_0000;

/// The victim binary. Its RSB is *empty* at the `ret` (no matching call,
/// and — unlike Spectre-RSB — the attacker leaves no stale entries), so
/// prediction falls back to the BTB the attacker poisoned.
///
/// ```text
/// 0: load r4,[r2]  ; slow — the ret below resolves only at ROB head
/// 1: ret           ; RSB underflow: predicts from the shared BTB
/// 2: halt
/// 3: gadget: load r6,[r5] …send…
/// ```
fn victim_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0)
        .ret()
        .halt()
        // 3: the gadget
        .load(Reg::R6, Reg::R5, 0)
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0)
        .label("out")?
        .halt()
        .build()?)
}

/// The victim `ret`'s instruction index — the BTB slot the attacker trains.
#[cfg(test)]
const RET_PC: usize = 1;

/// The gadget's index in [`victim_binary`] — the trained target.
const GADGET_PC: u64 = 3;

/// The attacker binary: an indirect jump at the *same pc* as the victim's
/// `ret`, aimed at the gadget. Resolving it writes the untagged BTB entry
/// `RET_PC → GADGET_PC` that the victim's underflowed return will consume.
///
/// ```text
/// 0: imm  r1, GADGET_PC
/// 1: jmpi r1           ; trains BTB[1] = 3
/// 2: halt
/// 3: halt              ; the jump target inside the attacker binary
/// ```
fn attacker_binary() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .imm(Reg::R1, GADGET_PC)
        .jump_indirect(Reg::R1)
        .halt()
        .halt()
        .build()?)
}

/// Retbleed: return target injection via the BTB fallback on RSB underflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct Retbleed;

impl Attack for Retbleed {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::RETBLEED,
            cve: Some("CVE-2022-29901"),
            impact: "Return target injection via BTB fallback",
            authorization: "Return target resolution",
            illegal_access: "Execute code not intended to be executed",
            class: AttackClass::Spectre,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig1_branch_attack(
            "Return target resolution",
            "Load S (gadget)",
            SecretSource::ArchitecturalMemory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_user_page(VICTIM_SECRET)?;
        m.map_user_page(DELAY_CELL)?;
        m.write_u64(VICTIM_SECRET, SECRET)?;
        let victim_ctx = m.add_context(Privilege::User, ExceptionBehavior::Halt);

        // --- Attacker trains the BTB at the victim return's pc (no calls,
        // so the RSB stays empty), establishes the channel, and yields.
        for _ in 0..3 {
            m.run(&attacker_binary()?)?;
        }
        probe_channel().prepare(m)?;
        let attacker = m.current_context();

        // --- Context switch to the victim (strategy-④ flushing and RSB
        // stuffing act here).
        m.switch_context(victim_ctx)?;
        m.flush_line(DELAY_CELL)?;
        m.touch(VICTIM_SECRET)?; // the victim's own working data
        m.clear_events();
        m.set_reg(Reg::R2, DELAY_CELL);
        m.set_reg(Reg::R5, VICTIM_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let start = m.cycle();
        m.run(&victim_binary()?)?;

        // --- Back to the attacker, who reloads and times (step 5).
        m.switch_context(attacker)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::UarchConfig;

    #[test]
    fn retbleed_leaks_on_baseline() {
        let out = Retbleed.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
        assert!(out.squashes >= 1, "the poisoned return must squash");
    }

    #[test]
    fn attacker_trains_the_ret_slot() {
        let p = attacker_binary().unwrap();
        match p[RET_PC] {
            isa::Instruction::JumpIndirect { .. } => {}
            ref other => panic!("unexpected {other}"),
        }
        match victim_binary().unwrap()[RET_PC] {
            isa::Instruction::Ret => {}
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn blocked_by_predictor_flush_on_switch() {
        // Strategy ④: the poisoned BTB entry does not survive the switch.
        let out = Retbleed
            .run(
                &UarchConfig::builder()
                    .flush_predictors_on_switch(true)
                    .build(),
            )
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_retpoline_effect() {
        // No BTB fallback: the underflowed return stalls until it resolves.
        let out = Retbleed
            .run(&UarchConfig::builder().no_indirect_prediction(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn rsb_stuffing_is_not_enough() {
        // The mitigation that stopped Spectre-RSB does *not* stop Retbleed:
        // the stuffed benign entries send the return into a transient loop
        // that pops one entry per iteration, drains the RSB inside the
        // resolution window, and then falls back to the poisoned BTB — the
        // reason the real-world fix was retpoline-on-ret/IBPB, not
        // stuffing.
        let out = Retbleed
            .run(&UarchConfig::builder().rsb_stuffing(true).build())
            .unwrap();
        assert!(out.leaked, "{out}");
    }

    #[test]
    fn blocked_by_strategy_2_and_3() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
        ] {
            let out = Retbleed.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }
}
