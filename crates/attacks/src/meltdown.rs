//! Meltdown (Spectre v3) and the Rogue System Register Read variant
//! (Spectre v3a) — Figure 3 / Figure 5 of the paper: the authorization
//! (privilege check) and the access are micro-ops of the *same*
//! instruction.

use crate::common::{finish, KERNEL_SECRET, PROBE_BASE, PROBE_STRIDE, SECRET};
use crate::graphs::{fig4_faulting_load, fig5_special_register};
use crate::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use isa::{AluOp, Cond, Msr, Program, ProgramBuilder, Reg};
use tsg::{SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege};

/// The MSR number whose content Spectre v3a steals.
const TARGET_MSR: Msr = Msr(0x10);

/// The Meltdown gadget of Listing 2: faulting kernel read, then transform
/// and send. `r5` = kernel secret address, `r3` = probe base. The zero
/// guard keeps the post-fault handler path from polluting the channel.
fn meltdown_program() -> Result<Program, AttackError> {
    Ok(ProgramBuilder::new()
        .load(Reg::R6, Reg::R5, 0) // authorize-and-access in one instruction
        .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE) // use
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0) // send
        .label("done")?
        .halt()
        .build()?)
}

/// Meltdown: an unprivileged load of kernel memory transiently forwards
/// the data before the page-privilege check (the delayed authorization)
/// squashes it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Meltdown;

impl Attack for Meltdown {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::MELTDOWN,
            cve: Some("CVE-2017-5754"),
            impact: "Kernel content leakage to unprivileged attacker",
            authorization: "Kernel privilege check",
            illegal_access: "Read from kernel memory",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig4_faulting_load(
            "Load Permission Check",
            "Read from Memory",
            SecretSource::Memory,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.map_kernel_page(KERNEL_SECRET)?;
        // Plant the kernel secret. Under KPTI the page has no user-visible
        // PTE, so the secret lives in physical memory only — write it
        // through a temporary kernel mapping trick: the host accessor needs
        // a PTE, so plant before unmapping is not possible; instead plant
        // via a scratch identity mapping of the same frame.
        if m.config().kpti {
            // Map temporarily, write, then restore the KPTI state (unmap).
            m.map_user_page(KERNEL_SECRET)?;
            m.write_u64(KERNEL_SECRET, SECRET)?;
            m.map_kernel_page(KERNEL_SECRET)?;
        } else {
            m.write_u64(KERNEL_SECRET, SECRET)?;
        }
        m.set_privilege(Privilege::User);
        let program = meltdown_program()?;
        m.set_exception_behavior(ExceptionBehavior::Handler(
            program.label("done").expect("label exists"),
        ));
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&program)?;
        finish(m, SECRET, start)
    }
}

/// Spectre v3a: rogue system register read — `rdmsr` at user privilege
/// transiently forwards the MSR value before its privilege check resolves.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectreV3a;

impl Attack for SpectreV3a {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: crate::names::SPECTRE_V3A,
            cve: Some("CVE-2018-3640"),
            impact: "System register value leakage to unprivileged attacker",
            authorization: "RDMSR instruction privilege check",
            illegal_access: "Read system register",
            class: AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        fig5_special_register(
            "Permission Check",
            "Read from Special Register",
            SecretSource::SpecialRegister,
        )
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        m.set_msr(TARGET_MSR.0, SECRET);
        m.set_privilege(Privilege::User);
        let program = Ok::<_, AttackError>(
            ProgramBuilder::new()
                .rdmsr(Reg::R6, TARGET_MSR) // authorize-and-access
                .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
                .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, PROBE_STRIDE)
                .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
                .load(Reg::R8, Reg::R7, 0)
                .label("done")
                .map_err(AttackError::Isa)?
                .halt()
                .build()
                .map_err(AttackError::Isa)?,
        )?;
        m.set_exception_behavior(ExceptionBehavior::Handler(
            program.label("done").expect("label exists"),
        ));
        m.set_reg(Reg::R3, PROBE_BASE);
        m.clear_events();
        let start = m.cycle();
        m.run(&program)?;
        finish(m, SECRET, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::machine_with_channel;
    use uarch::UarchConfig;

    #[test]
    fn meltdown_leaks_on_baseline() {
        let out = Meltdown.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert!(out.transient_forwards >= 1);
        assert!(out.squashes >= 1, "the fault must squash the pipe");
    }

    #[test]
    fn meltdown_blocked_by_kpti() {
        let out = Meltdown
            .run(&UarchConfig::builder().kpti(true).build())
            .unwrap();
        assert!(!out.leaked, "KPTI removes the transient data path: {out}");
    }

    #[test]
    fn meltdown_blocked_by_eager_permission_check() {
        let out = Meltdown
            .run(&UarchConfig::builder().eager_permission_check(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn meltdown_blocked_by_no_transient_forwarding() {
        // The silicon fix: faulting loads return zeros.
        let cfg = UarchConfig::builder()
            .transient_forwarding(false)
            .mds_forwarding(false)
            .build();
        let out = Meltdown.run(&cfg).unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn meltdown_blocked_by_strategy2_and_3() {
        for cfg in [
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().invisible_spec(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
            UarchConfig::builder().delay_on_miss(true).build(),
        ] {
            let out = Meltdown.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn meltdown_fault_is_architecturally_raised() {
        let mut observed = false;
        let out = Meltdown.run(&UarchConfig::default()).unwrap();
        // finish() counts events; a cheap re-check: the attack still
        // recovered the secret *and* squashed at least once due to the
        // fault.
        if out.squashes > 0 {
            observed = true;
        }
        assert!(observed);
    }

    #[test]
    fn v3a_leaks_on_baseline() {
        let out = SpectreV3a.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked, "{out}");
        assert_eq!(out.recovered, Some(SECRET));
    }

    #[test]
    fn v3a_blocked_by_eager_check_or_no_forwarding() {
        for cfg in [
            UarchConfig::builder().eager_permission_check(true).build(),
            UarchConfig::builder()
                .transient_forwarding(false)
                .mds_forwarding(false)
                .build(),
        ] {
            let out = SpectreV3a.run(&cfg).unwrap();
            assert!(!out.leaked, "{out}");
        }
    }

    #[test]
    fn v3a_blocked_by_nda() {
        let out = SpectreV3a
            .run(&UarchConfig::builder().nda(true).build())
            .unwrap();
        assert!(!out.leaked, "{out}");
    }

    #[test]
    fn meltdown_in_kernel_mode_is_legal_not_an_attack() {
        // Sanity: the same program run *with* privilege reads the value
        // architecturally and no fault occurs.
        let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
        m.map_kernel_page(KERNEL_SECRET).unwrap();
        m.write_u64(KERNEL_SECRET, SECRET).unwrap();
        let p = meltdown_program().unwrap();
        m.set_reg(Reg::R5, KERNEL_SECRET);
        m.set_reg(Reg::R3, PROBE_BASE);
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert!(r.faults.is_empty());
        assert_eq!(m.reg(Reg::R6), SECRET);
    }
}
