//! Property: a warm [`BatchRunner`] is observationally equal to a cold
//! per-call run — `runner.run(attack, cfg) == attack.run(cfg)` for every
//! registered attack under randomized configurations, even when the pooled
//! machine was just dirtied by a *different* attack under a *different*
//! configuration.
//!
//! This is the oracle that licenses the campaign executor's warm-machine
//! pooling: [`uarch::Machine::reset`] must erase every trace of the
//! previous run (caches, buffers, predictors, page tables, FPU ownership,
//! contexts, event log) and adopt the new configuration's geometry.

use attacks::{registry, BatchRunner};
use proptest::prelude::*;
use uarch::UarchConfig;

/// Decodes a bitmask into a configuration, mixing structural knobs (cache
/// geometry, ROB depth) with defense knobs so resets cross *shape*
/// boundaries, not just flag flips. Forwarding stays on by default (bit
/// clear) so leak-path behavior varies but programs still complete.
fn config_from(bits: u32) -> UarchConfig {
    let mut b = UarchConfig::builder()
        .nda(bits & 1 != 0)
        .stt(bits & 2 != 0)
        .kpti(bits & 4 != 0)
        .transient_forwarding(bits & 8 == 0)
        .lazy_fpu(bits & 16 == 0)
        .delay_on_miss(bits & 32 != 0)
        .rsb_stuffing(bits & 64 != 0)
        .flush_predictors_on_switch(bits & 128 != 0)
        .eager_permission_check(bits & 256 != 0)
        .dawg(bits & 512 != 0);
    if bits & 1024 != 0 {
        b = b.cache_sets(32).cache_ways(2).rob_capacity(24);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The dirty-then-reset runner reproduces the cold run bit for bit:
    /// same `Result`, same outcome fields (including cycle counts).
    #[test]
    fn warm_reset_run_equals_cold_run(
        bits in 0u32..2048,
        dirty_bits in 0u32..2048,
        ai in 0usize..attacks::registry().len(),
        di in 0usize..attacks::registry().len(),
    ) {
        let cfg = config_from(bits);
        let attack = registry()[ai];
        let dirtier = registry()[di];

        let mut runner = BatchRunner::new();
        // Dirty the pooled machine: an unrelated attack under an unrelated
        // configuration leaves caches, predictors, contexts and FPU state
        // behind for reset to erase.
        let _ = runner.run(dirtier, &config_from(dirty_bits));

        let warm = runner.run(attack, &cfg);
        let cold = attack.run(&cfg);
        match (warm, cold) {
            (Ok(w), Ok(c)) => prop_assert_eq!(
                w, c, "warm != cold for {} (bits {:#x})", attack.info().name, bits
            ),
            (w, c) => prop_assert_eq!(
                format!("{w:?}"),
                format!("{c:?}"),
                "error divergence for {}",
                attack.info().name
            ),
        }
    }
}
