//! Register names.

use std::fmt;

/// A general-purpose 64-bit register, `r0`–`r15`.
///
/// `r15` is hard-wired to zero (like RISC-V `x0`) and exposed as
/// [`Reg::ZERO`]; writes to it are ignored by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)]
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    /// The always-zero register.
    pub const ZERO: Reg = Reg(15);

    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// Constructs `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Reg::COUNT`.
    #[must_use]
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < Self::COUNT,
            "register index {n} out of range"
        );
        Reg(n)
    }

    /// The register's index, `0..16`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            f.write_str("zero")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A floating-point register, `f0`–`f7`.
///
/// FP registers are the secret source in the Lazy-FP attack: on a context
/// switch their contents are switched lazily, so the first FP instruction in
/// a new context can transiently observe the previous context's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Number of floating-point registers.
    pub const COUNT: usize = 8;

    /// Constructs `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= FReg::COUNT`.
    #[must_use]
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < Self::COUNT,
            "fp register index {n} out of range"
        );
        FReg(n)
    }

    /// The register's index, `0..8`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A model-specific (special) register address.
///
/// Reading an MSR requires supervisor privilege; the delayed privilege check
/// is the authorization node of Spectre v3a (Rogue System Register Read).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msr(pub u32);

impl Msr {
    /// A conventional "scratch" MSR used in examples and tests.
    pub const SCRATCH: Msr = Msr(0x10);
}

impl fmt::Display for Msr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msr{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R3.to_string(), "r3");
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }

    #[test]
    fn reg_new_roundtrip() {
        for i in 0..16u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R0.is_zero());
        assert_eq!(Reg::ZERO.index(), 15);
    }

    #[test]
    fn freg_display_and_range() {
        assert_eq!(FReg::new(2).to_string(), "f2");
        assert_eq!(FReg::new(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(8);
    }

    #[test]
    fn msr_display() {
        assert_eq!(Msr(0x10).to_string(), "msr0x10");
    }
}
