//! Programs and the label-resolving builder.

use crate::error::IsaError;
use crate::inst::{AluOp, Cond, FenceKind, Instruction, Operand};
use crate::reg::{FReg, Msr, Reg};
use std::collections::HashMap;
use std::fmt;
use std::ops::Index;

/// An immutable, validated sequence of instructions.
///
/// All control-flow targets are guaranteed to be in range.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Instruction>,
    labels: HashMap<String, usize>,
}

impl Program {
    /// Builds a program from raw instructions, validating targets.
    ///
    /// # Errors
    ///
    /// [`IsaError::TargetOutOfRange`] if any branch/jump/call target is
    /// outside the program.
    pub fn from_instructions(insts: Vec<Instruction>) -> Result<Self, IsaError> {
        let len = insts.len();
        for inst in &insts {
            let target = match *inst {
                Instruction::BranchIf { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t >= len {
                    return Err(IsaError::TargetOutOfRange { target: t, len });
                }
            }
        }
        Ok(Program {
            insts,
            labels: HashMap::new(),
        })
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, if in range.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instruction> {
        self.insts.get(pc)
    }

    /// Iterates over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Instruction)> + '_ {
        self.insts.iter().enumerate()
    }

    /// All instructions as a slice.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The instruction index a label resolves to, if the label exists.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels and their targets, sorted by target.
    #[must_use]
    pub fn labels(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self.labels.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        v.sort_by_key(|&(_, t)| t);
        v
    }

    /// A copy of this program with the instruction at `pc` deleted.
    ///
    /// Branch/jump/call targets and labels after `pc` shift down by one;
    /// a target or label *at* `pc` stays put, pointing at the deleted
    /// instruction's successor. Used by mutation and shrinking passes.
    ///
    /// # Errors
    ///
    /// [`IsaError::TargetOutOfRange`] if `pc` is out of range, or if the
    /// deletion leaves some control-flow target dangling past the end
    /// (e.g. a branch to the deleted final instruction).
    pub fn with_removed(&self, pc: usize) -> Result<Self, IsaError> {
        if pc >= self.insts.len() {
            return Err(IsaError::TargetOutOfRange {
                target: pc,
                len: self.insts.len(),
            });
        }
        let remap = |t: usize| if t > pc { t - 1 } else { t };
        let insts = self
            .insts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pc)
            .map(|(_, inst)| retarget(inst, remap))
            .collect();
        let mut p = Program::from_instructions(insts)?;
        p.labels = self
            .labels
            .iter()
            .map(|(k, &t)| (k.clone(), remap(t)))
            .collect();
        Ok(p)
    }

    /// A copy of this program with `inst` inserted before the instruction
    /// at `pc` (`pc == len` appends). Targets and labels at or after `pc`
    /// shift up by one, so a branch that used to reach `pc` now reaches
    /// the inserted instruction and falls through to the old target.
    /// Any target carried by `inst` itself is taken in post-insertion
    /// coordinates.
    ///
    /// # Errors
    ///
    /// [`IsaError::TargetOutOfRange`] if `pc > len` or `inst` carries an
    /// out-of-range target.
    pub fn with_inserted(&self, pc: usize, inst: Instruction) -> Result<Self, IsaError> {
        if pc > self.insts.len() {
            return Err(IsaError::TargetOutOfRange {
                target: pc,
                len: self.insts.len(),
            });
        }
        let remap = |t: usize| if t >= pc { t + 1 } else { t };
        let mut insts: Vec<Instruction> = self.insts.iter().map(|i| retarget(i, remap)).collect();
        insts.insert(pc, inst);
        let mut p = Program::from_instructions(insts)?;
        p.labels = self
            .labels
            .iter()
            .map(|(k, &t)| (k.clone(), remap(t)))
            .collect();
        Ok(p)
    }

    /// A copy of this program with the instruction at `pc` replaced by
    /// `inst`. Targets and labels are unchanged.
    ///
    /// # Errors
    ///
    /// [`IsaError::TargetOutOfRange`] if `pc` is out of range or `inst`
    /// carries an out-of-range target.
    pub fn with_replaced(&self, pc: usize, inst: Instruction) -> Result<Self, IsaError> {
        if pc >= self.insts.len() {
            return Err(IsaError::TargetOutOfRange {
                target: pc,
                len: self.insts.len(),
            });
        }
        let mut insts = self.insts.clone();
        insts[pc] = inst;
        let mut p = Program::from_instructions(insts)?;
        p.labels = self.labels.clone();
        Ok(p)
    }
}

/// `inst` with its control-flow target (if any) passed through `remap`.
fn retarget(inst: &Instruction, remap: impl Fn(usize) -> usize) -> Instruction {
    let mut out = *inst;
    match &mut out {
        Instruction::BranchIf { target, .. }
        | Instruction::Jump { target }
        | Instruction::Call { target } => *target = remap(*target),
        _ => {}
    }
    out
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, pc: usize) -> &Instruction {
        &self.insts[pc]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_target: HashMap<usize, &str> =
            self.labels.iter().map(|(k, &v)| (v, k.as_str())).collect();
        for (pc, inst) in self.iter() {
            if let Some(l) = by_target.get(&pc) {
                writeln!(f, "{l}:")?;
            }
            writeln!(f, "  {pc:4}: {inst}")?;
        }
        Ok(())
    }
}

/// Reference to a branch target: either a resolved index or a label.
#[derive(Debug, Clone)]
enum TargetRef {
    Label(String),
}

/// Incrementally builds a [`Program`] with symbolic labels.
///
/// Forward references are allowed; all labels are resolved by
/// [`ProgramBuilder::build`].
///
/// ```
/// use isa::{ProgramBuilder, Reg, Cond};
/// # fn main() -> Result<(), isa::IsaError> {
/// let p = ProgramBuilder::new()
///     .imm(Reg::R0, 1)
///     .branch_if(Cond::Eq, Reg::R0, Reg::ZERO, "done")
///     .imm(Reg::R1, 2)
///     .label("done")?
///     .halt()
///     .build()?;
/// assert_eq!(p.label("done"), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Instruction>,
    targets: Vec<Option<TargetRef>>,
    labels: HashMap<String, usize>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count (= the pc of the next pushed instruction).
    #[must_use]
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    fn push(mut self, inst: Instruction) -> Self {
        self.insts.push(inst);
        self.targets.push(None);
        self
    }

    fn push_with_target(mut self, inst: Instruction, target: TargetRef) -> Self {
        self.insts.push(inst);
        self.targets.push(Some(target));
        self
    }

    /// Defines a label at the current position.
    ///
    /// # Errors
    ///
    /// [`IsaError::DuplicateLabel`] if the label already exists.
    pub fn label(mut self, name: impl Into<String>) -> Result<Self, IsaError> {
        let name = name.into();
        if self.labels.contains_key(&name) {
            return Err(IsaError::DuplicateLabel(name));
        }
        self.labels.insert(name, self.insts.len());
        Ok(self)
    }

    /// `dst = value`.
    #[must_use]
    pub fn imm(self, dst: Reg, value: u64) -> Self {
        self.push(Instruction::Imm { dst, value })
    }

    /// `dst = op(a, b)` with a register operand.
    #[must_use]
    pub fn alu(self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> Self {
        self.push(Instruction::Alu {
            op,
            dst,
            a,
            b: Operand::Reg(b),
        })
    }

    /// `dst = op(a, imm)` with an immediate operand.
    #[must_use]
    pub fn alu_imm(self, op: AluOp, dst: Reg, a: Reg, imm: u64) -> Self {
        self.push(Instruction::Alu {
            op,
            dst,
            a,
            b: Operand::Imm(imm),
        })
    }

    /// `dst = mem[base + offset]`.
    #[must_use]
    pub fn load(self, dst: Reg, base: Reg, offset: i64) -> Self {
        self.push(Instruction::Load { dst, base, offset })
    }

    /// `mem[base + offset] = src`.
    #[must_use]
    pub fn store(self, src: Reg, base: Reg, offset: i64) -> Self {
        self.push(Instruction::Store { src, base, offset })
    }

    /// Conditional branch to a label.
    #[must_use]
    pub fn branch_if(self, cond: Cond, a: Reg, b: Reg, label: impl Into<String>) -> Self {
        self.push_with_target(
            Instruction::BranchIf {
                cond,
                a,
                b,
                target: usize::MAX,
            },
            TargetRef::Label(label.into()),
        )
    }

    /// Unconditional jump to a label.
    #[must_use]
    pub fn jump(self, label: impl Into<String>) -> Self {
        self.push_with_target(
            Instruction::Jump { target: usize::MAX },
            TargetRef::Label(label.into()),
        )
    }

    /// Indirect jump through a register.
    #[must_use]
    pub fn jump_indirect(self, reg: Reg) -> Self {
        self.push(Instruction::JumpIndirect { reg })
    }

    /// Call a label.
    #[must_use]
    pub fn call(self, label: impl Into<String>) -> Self {
        self.push_with_target(
            Instruction::Call { target: usize::MAX },
            TargetRef::Label(label.into()),
        )
    }

    /// Return.
    #[must_use]
    pub fn ret(self) -> Self {
        self.push(Instruction::Ret)
    }

    /// Serialization fence.
    #[must_use]
    pub fn fence(self, kind: FenceKind) -> Self {
        self.push(Instruction::Fence(kind))
    }

    /// Flush the cacheline containing `base + offset`.
    #[must_use]
    pub fn clflush(self, base: Reg, offset: i64) -> Self {
        self.push(Instruction::CacheFlush { base, offset })
    }

    /// `dst = current cycle`.
    #[must_use]
    pub fn rdtsc(self, dst: Reg) -> Self {
        self.push(Instruction::ReadTime { dst })
    }

    /// Privileged MSR read.
    #[must_use]
    pub fn rdmsr(self, dst: Reg, msr: Msr) -> Self {
        self.push(Instruction::ReadMsr { dst, msr })
    }

    /// Move FP register bits into a GPR.
    #[must_use]
    pub fn fpmov(self, dst: Reg, fsrc: FReg) -> Self {
        self.push(Instruction::FpMove { dst, fsrc })
    }

    /// Begin a transaction.
    #[must_use]
    pub fn tx_begin(self) -> Self {
        self.push(Instruction::TxBegin)
    }

    /// Commit a transaction.
    #[must_use]
    pub fn tx_end(self) -> Self {
        self.push(Instruction::TxEnd)
    }

    /// Stop the machine.
    #[must_use]
    pub fn halt(self) -> Self {
        self.push(Instruction::Halt)
    }

    /// No-op.
    #[must_use]
    pub fn nop(self) -> Self {
        self.push(Instruction::Nop)
    }

    /// Pushes a raw instruction (targets must already be resolved indices).
    #[must_use]
    pub fn raw(self, inst: Instruction) -> Self {
        self.push(inst)
    }

    /// Resolves all labels and validates the program.
    ///
    /// # Errors
    ///
    /// [`IsaError::UndefinedLabel`] for dangling references and
    /// [`IsaError::TargetOutOfRange`] for bad explicit targets.
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (i, tref) in self.targets.iter().enumerate() {
            let resolved = match tref {
                None => continue,
                Some(TargetRef::Label(l)) => *self
                    .labels
                    .get(l)
                    .ok_or_else(|| IsaError::UndefinedLabel(l.clone()))?,
            };
            match &mut self.insts[i] {
                Instruction::BranchIf { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target } => *target = resolved,
                _ => unreachable!("only control flow carries targets"),
            }
        }
        // A label at the very end (== len) is allowed only if some
        // instruction follows… we permit it pointing one-past-the-end only
        // when nothing references it; references were resolved above, so
        // validate targets now.
        let mut p = Program::from_instructions(self.insts)?;
        p.labels = self.labels;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let p = ProgramBuilder::new()
            .label("top")
            .unwrap()
            .imm(Reg::R0, 5)
            .branch_if(Cond::Ne, Reg::R0, Reg::ZERO, "end")
            .jump("top")
            .label("end")
            .unwrap()
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.len(), 4);
        match p[1] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
        match p[2] {
            Instruction::Jump { target } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other}"),
        }
        assert_eq!(p.label("top"), Some(0));
        assert_eq!(p.label("end"), Some(3));
    }

    #[test]
    fn undefined_label_errors() {
        let e = ProgramBuilder::new()
            .jump("ghost")
            .halt()
            .build()
            .unwrap_err();
        assert_eq!(e, IsaError::UndefinedLabel("ghost".into()));
    }

    #[test]
    fn duplicate_label_errors() {
        let e = ProgramBuilder::new()
            .label("a")
            .unwrap()
            .nop()
            .label("a")
            .unwrap_err();
        assert_eq!(e, IsaError::DuplicateLabel("a".into()));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let e = Program::from_instructions(vec![Instruction::Jump { target: 5 }]).unwrap_err();
        assert_eq!(e, IsaError::TargetOutOfRange { target: 5, len: 1 });
    }

    #[test]
    fn label_pointing_past_end_rejected_when_referenced() {
        // A branch to a label defined after the last instruction resolves to
        // len, which is out of range.
        let e = ProgramBuilder::new()
            .jump("end")
            .label("end")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(e, IsaError::TargetOutOfRange { .. }));
    }

    #[test]
    fn display_includes_labels() {
        let p = ProgramBuilder::new()
            .label("main")
            .unwrap()
            .imm(Reg::R1, 7)
            .halt()
            .build()
            .unwrap();
        let s = p.to_string();
        assert!(s.contains("main:"));
        assert!(s.contains("imm r1, 0x7"));
    }

    #[test]
    fn iteration_and_indexing() {
        let p = ProgramBuilder::new().nop().halt().build().unwrap();
        assert!(!p.is_empty());
        assert_eq!(p.get(0), Some(&Instruction::Nop));
        assert_eq!(p.get(9), None);
        assert_eq!(p.iter().count(), 2);
        assert_eq!(p[1], Instruction::Halt);
        assert_eq!(p.instructions().len(), 2);
    }

    #[test]
    fn labels_listing_sorted_by_target() {
        let p = ProgramBuilder::new()
            .label("a")
            .unwrap()
            .nop()
            .label("b")
            .unwrap()
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.labels(), vec![("a", 0), ("b", 1)]);
    }

    #[test]
    fn empty_program_builds() {
        let p = ProgramBuilder::new().build().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn with_removed_shifts_targets_and_labels() {
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 1) // 0
            .nop() // 1 — removed
            .branch_if(Cond::Eq, Reg::R0, Reg::ZERO, "end") // 2
            .imm(Reg::R1, 2) // 3
            .label("end")
            .unwrap()
            .halt() // 4
            .build()
            .unwrap();
        let q = p.with_removed(1).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.label("end"), Some(3));
        match q[1] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn with_removed_target_at_pc_points_at_successor() {
        // jump 2; halt; nop — removing pc 2's predecessor keeps jump valid,
        // and removing the *target* makes the jump land on its successor.
        let p = Program::from_instructions(vec![
            Instruction::Jump { target: 1 },
            Instruction::Nop,
            Instruction::Halt,
        ])
        .unwrap();
        let q = p.with_removed(1).unwrap();
        assert_eq!(q[0], Instruction::Jump { target: 1 });
        assert_eq!(q[1], Instruction::Halt);
    }

    #[test]
    fn with_removed_dangling_final_target_errors() {
        let p =
            Program::from_instructions(vec![Instruction::Jump { target: 1 }, Instruction::Halt])
                .unwrap();
        // Removing the halt leaves the jump aimed one past the end.
        assert!(matches!(
            p.with_removed(1),
            Err(IsaError::TargetOutOfRange { .. })
        ));
        assert!(matches!(
            p.with_removed(7),
            Err(IsaError::TargetOutOfRange { target: 7, len: 2 })
        ));
    }

    #[test]
    fn with_inserted_shifts_targets_and_labels() {
        let p = ProgramBuilder::new()
            .branch_if(Cond::Eq, Reg::R0, Reg::ZERO, "end") // 0
            .imm(Reg::R1, 2) // 1
            .label("end")
            .unwrap()
            .halt() // 2
            .build()
            .unwrap();
        let q = p.with_inserted(1, Instruction::Nop).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q[1], Instruction::Nop);
        assert_eq!(q.label("end"), Some(3));
        match q[0] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
        // Appending works; past-end insertion errors.
        assert_eq!(p.with_inserted(3, Instruction::Nop).unwrap().len(), 4);
        assert!(p.with_inserted(4, Instruction::Nop).is_err());
    }

    #[test]
    fn with_replaced_validates_target() {
        let p = ProgramBuilder::new().nop().halt().build().unwrap();
        let q = p.with_replaced(0, Instruction::Jump { target: 1 }).unwrap();
        assert_eq!(q[0], Instruction::Jump { target: 1 });
        assert!(p.with_replaced(0, Instruction::Jump { target: 9 }).is_err());
        assert!(p.with_replaced(5, Instruction::Nop).is_err());
    }

    #[test]
    fn all_builder_methods_emit() {
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 1)
            .alu(AluOp::Add, Reg::R1, Reg::R0, Reg::R0)
            .alu_imm(AluOp::Shl, Reg::R1, Reg::R1, 2)
            .load(Reg::R2, Reg::R1, 0)
            .store(Reg::R2, Reg::R1, 8)
            .jump_indirect(Reg::R3)
            .ret()
            .fence(FenceKind::MFence)
            .clflush(Reg::R1, 0)
            .rdtsc(Reg::R4)
            .rdmsr(Reg::R5, Msr::SCRATCH)
            .fpmov(Reg::R6, FReg::new(0))
            .tx_begin()
            .tx_end()
            .nop()
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.len(), 16);
    }
}
