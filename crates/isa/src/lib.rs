//! # `isa` — the architectural substrate of the specgraph reproduction
//!
//! A minimal 64-bit RISC-like instruction set rich enough to express every
//! speculative-execution attack variant of Table III of the paper
//! ("New Models for Understanding and Reasoning about Speculative Execution
//! Attacks", HPCA 2021):
//!
//! * loads/stores with privilege-checked addressing (Meltdown, Foreshadow),
//! * conditional branches (Spectre v1/v1.1/v1.2),
//! * indirect branches and calls/returns (Spectre v2, Spectre-RSB),
//! * fences (LFENCE/MFENCE/SSBB defenses),
//! * cache flush + timer reads (Flush+Reload covert channels),
//! * privileged special-register reads (Spectre v3a),
//! * floating-point operations (Lazy FP),
//! * transactional regions (TAA, CacheOut).
//!
//! Programs are built either with [`ProgramBuilder`] (symbolic labels) or
//! assembled from text with [`asm::assemble`].
//!
//! ```
//! use isa::{ProgramBuilder, Reg, Cond};
//!
//! # fn main() -> Result<(), isa::IsaError> {
//! let p = ProgramBuilder::new()
//!     .imm(Reg::R0, 42)
//!     .label("spin")?
//!     .alu_imm(isa::AluOp::Sub, Reg::R0, Reg::R0, 1)
//!     .branch_if(Cond::Ne, Reg::R0, Reg::ZERO, "spin")
//!     .halt()
//!     .build()?;
//! assert_eq!(p.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
mod error;
mod inst;
mod program;
mod reg;

pub use error::IsaError;
pub use inst::{AluOp, Cond, FenceKind, Instruction, Operand};
pub use program::{Program, ProgramBuilder};
pub use reg::{FReg, Msr, Reg};
