//! Error type for program construction and assembly.

use std::error::Error;
use std::fmt;

/// Errors from [`ProgramBuilder`](crate::ProgramBuilder) and
/// [`asm::assemble`](crate::asm::assemble).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch/jump target is outside the program.
    TargetOutOfRange {
        /// The offending target.
        target: usize,
        /// The program length.
        len: usize,
    },
    /// Assembly text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UndefinedLabel(l) => write!(f, "undefined label '{l}'"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label '{l}'"),
            IsaError::TargetOutOfRange { target, len } => {
                write!(
                    f,
                    "target {target} out of range for program of length {len}"
                )
            }
            IsaError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            IsaError::UndefinedLabel("x".into()).to_string(),
            "undefined label 'x'"
        );
        assert!(IsaError::TargetOutOfRange { target: 9, len: 3 }
            .to_string()
            .contains('9'));
        assert!(IsaError::Parse {
            line: 2,
            message: "bad".into()
        }
        .to_string()
        .contains("line 2"));
    }
}
