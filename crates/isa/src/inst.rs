//! Instruction definitions.

use crate::reg::{FReg, Msr, Reg};
use std::fmt;

/// A register or immediate ALU operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
}

impl AluOp {
    /// Applies the operation with wrapping semantics.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Mul => "mul",
        };
        f.write_str(s)
    }
}

/// Branch conditions (unsigned comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl Cond {
    /// Evaluates the condition on two unsigned values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }

    /// The negated condition.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Serialization fences.
///
/// These are the *industry defense* primitives of Table II: a fence inserts
/// the missing security dependency by serializing execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// LFENCE: no later instruction begins execution until the fence retires.
    LFence,
    /// MFENCE: orders all memory operations across the fence.
    MFence,
    /// SSBB (Speculative Store Bypass Barrier): loads after the barrier may
    /// not bypass stores before it (defeats Spectre v4).
    Ssbb,
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FenceKind::LFence => "lfence",
            FenceKind::MFence => "mfence",
            FenceKind::Ssbb => "ssbb",
        };
        f.write_str(s)
    }
}

/// One architectural instruction.
///
/// Memory addressing is always `base register + signed immediate offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `dst = imm`.
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: u64,
    },
    /// `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First (register) operand.
        a: Reg,
        /// Second operand (register or immediate).
        b: Operand,
    },
    /// `dst = mem[base + offset]` (1 byte, zero-extended… conceptually; the
    /// simulator loads 8 bytes — byte-granularity is not needed for the
    /// attack models).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement added to the base.
        offset: i64,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Source register providing the stored value.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement added to the base.
        offset: i64,
    },
    /// Conditional branch to `target` (an instruction index) when
    /// `cond(a, b)` holds.
    BranchIf {
        /// Condition code.
        cond: Cond,
        /// Left comparison operand.
        a: Reg,
        /// Right comparison operand.
        b: Reg,
        /// Taken-path target (instruction index).
        target: usize,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump through a register (Spectre v2's victim instruction).
    JumpIndirect {
        /// Register holding the target instruction index.
        reg: Reg,
    },
    /// Direct call: pushes the return address on the (architectural) stack
    /// and the Return Stack Buffer.
    Call {
        /// Target instruction index.
        target: usize,
    },
    /// Return: pops the return address; *predicted* via the RSB
    /// (Spectre-RSB's victim instruction).
    Ret,
    /// Serialization fence.
    Fence(FenceKind),
    /// Flush the cacheline containing `base + offset` (clflush).
    CacheFlush {
        /// Base address register.
        base: Reg,
        /// Signed displacement added to the base.
        offset: i64,
    },
    /// `dst = current cycle` (rdtsc): the receiver's timing primitive.
    ReadTime {
        /// Destination register.
        dst: Reg,
    },
    /// Privileged read of a model-specific register (Spectre v3a).
    ReadMsr {
        /// Destination register.
        dst: Reg,
        /// The MSR to read.
        msr: Msr,
    },
    /// Floating-point move to a GPR: `dst = bits(fsrc)`. Touches FPU state,
    /// triggering the lazy-FPU switch logic (Lazy FP attack).
    FpMove {
        /// Destination general-purpose register.
        dst: Reg,
        /// Source floating-point register.
        fsrc: FReg,
    },
    /// Begin a transactional region (TSX). Faults inside the region abort
    /// asynchronously instead of raising exceptions (TAA/CacheOut).
    TxBegin,
    /// End (commit) a transactional region.
    TxEnd,
    /// Stop the machine.
    Halt,
    /// Do nothing.
    Nop,
}

impl Instruction {
    /// Whether the instruction is a control-flow operation subject to
    /// prediction (branch, indirect jump, call or return).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::BranchIf { .. }
                | Instruction::Jump { .. }
                | Instruction::JumpIndirect { .. }
                | Instruction::Call { .. }
                | Instruction::Ret
        )
    }

    /// Whether the instruction accesses memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. } | Instruction::Store { .. } | Instruction::CacheFlush { .. }
        )
    }

    /// The registers this instruction reads.
    #[must_use]
    pub fn sources(&self) -> Vec<Reg> {
        let (regs, n) = self.sources_fixed();
        regs[..n].to_vec()
    }

    /// The registers this instruction reads, without allocating: a fixed
    /// two-slot array plus the number of valid leading slots (no instruction
    /// reads more than two registers). Unused slots hold [`Reg::ZERO`].
    #[must_use]
    pub fn sources_fixed(&self) -> ([Reg; 2], usize) {
        match *self {
            Instruction::Alu { a, b, .. } => match b {
                Operand::Reg(r) => ([a, r], 2),
                Operand::Imm(_) => ([a, Reg::ZERO], 1),
            },
            Instruction::Load { base, .. } | Instruction::CacheFlush { base, .. } => {
                ([base, Reg::ZERO], 1)
            }
            Instruction::Store { src, base, .. } => ([src, base], 2),
            Instruction::BranchIf { a, b, .. } => ([a, b], 2),
            Instruction::JumpIndirect { reg } => ([reg, Reg::ZERO], 1),
            _ => ([Reg::ZERO, Reg::ZERO], 0),
        }
    }

    /// The register this instruction writes, if any.
    #[must_use]
    pub fn destination(&self) -> Option<Reg> {
        match *self {
            Instruction::Imm { dst, .. }
            | Instruction::Alu { dst, .. }
            | Instruction::Load { dst, .. }
            | Instruction::ReadTime { dst }
            | Instruction::ReadMsr { dst, .. }
            | Instruction::FpMove { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Imm { dst, value } => write!(f, "imm {dst}, {value:#x}"),
            Instruction::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instruction::Load { dst, base, offset } => {
                write!(f, "load {dst}, [{base}{offset:+}]")
            }
            Instruction::Store { src, base, offset } => {
                write!(f, "store {src}, [{base}{offset:+}]")
            }
            Instruction::BranchIf { cond, a, b, target } => {
                write!(f, "b{cond} {a}, {b}, @{target}")
            }
            Instruction::Jump { target } => write!(f, "jmp @{target}"),
            Instruction::JumpIndirect { reg } => write!(f, "jmpi {reg}"),
            Instruction::Call { target } => write!(f, "call @{target}"),
            Instruction::Ret => f.write_str("ret"),
            Instruction::Fence(k) => write!(f, "{k}"),
            Instruction::CacheFlush { base, offset } => {
                write!(f, "clflush [{base}{offset:+}]")
            }
            Instruction::ReadTime { dst } => write!(f, "rdtsc {dst}"),
            Instruction::ReadMsr { dst, msr } => write!(f, "rdmsr {dst}, {msr}"),
            Instruction::FpMove { dst, fsrc } => write!(f, "fpmov {dst}, {fsrc}"),
            Instruction::TxBegin => f.write_str("txbegin"),
            Instruction::TxEnd => f.write_str("txend"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX); // wrapping
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 12), 4096);
        assert_eq!(AluOp::Shr.apply(4096, 12), 1);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        // Shift counts are masked to 6 bits.
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
    }

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(1, 2));
        assert!(Cond::Ge.eval(2, 2));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge] {
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1)] {
                assert_eq!(c.negate().eval(a, b), !c.eval(a, b));
            }
        }
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instruction::Ret.is_control_flow());
        assert!(Instruction::Jump { target: 0 }.is_control_flow());
        assert!(!Instruction::Nop.is_control_flow());
        assert!(Instruction::Load {
            dst: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
        .is_memory());
        assert!(!Instruction::Halt.is_memory());
    }

    #[test]
    fn sources_and_destination() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            dst: Reg::R0,
            a: Reg::R1,
            b: Operand::Reg(Reg::R2),
        };
        assert_eq!(i.sources(), vec![Reg::R1, Reg::R2]);
        assert_eq!(i.destination(), Some(Reg::R0));

        let s = Instruction::Store {
            src: Reg::R3,
            base: Reg::R4,
            offset: 8,
        };
        assert_eq!(s.sources(), vec![Reg::R3, Reg::R4]);
        assert_eq!(s.destination(), None);
    }

    #[test]
    fn display_forms() {
        let i = Instruction::Load {
            dst: Reg::R1,
            base: Reg::R2,
            offset: -8,
        };
        assert_eq!(i.to_string(), "load r1, [r2-8]");
        assert_eq!(
            Instruction::BranchIf {
                cond: Cond::Lt,
                a: Reg::R0,
                b: Reg::R1,
                target: 7
            }
            .to_string(),
            "blt r0, r1, @7"
        );
        assert_eq!(Instruction::Fence(FenceKind::LFence).to_string(), "lfence");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::R1), Operand::Reg(Reg::R1));
        assert_eq!(Operand::from(5u64), Operand::Imm(5));
        assert_eq!(Operand::Imm(255).to_string(), "0xff");
    }
}
