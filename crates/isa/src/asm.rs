//! A small two-pass text assembler and disassembler.
//!
//! The format mirrors [`Instruction`]'s `Display` output so that
//! assemble ∘ disassemble is the identity on programs without labels:
//!
//! ```text
//! ; Spectre v1 gadget (comment)
//! main:
//!     imm   r0, 0x1000
//!     load  r1, [r0+8]
//!     blt   r1, r2, main
//!     lfence
//!     halt
//! ```
//!
//! * Comments start with `;` or `//`.
//! * Labels are `name:` on their own line (or before an instruction).
//! * ALU third operands are registers (`r3`) or immediates (`42`, `0x2a`).
//! * Memory operands are `[rN+off]` / `[rN-off]` / `[rN]`.

use crate::error::IsaError;
use crate::inst::{AluOp, Cond, FenceKind, Instruction, Operand};
use crate::program::{Program, ProgramBuilder};
use crate::reg::{FReg, Msr, Reg};
use std::fmt::Write as _;

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// [`IsaError::Parse`] with a line number for syntax errors, plus any label
/// resolution error from [`ProgramBuilder::build`].
pub fn assemble(src: &str) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Leading label(s).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty() || !is_ident(head) {
                break;
            }
            b = b
                .label(head)
                .map_err(|e| parse_err(lineno, e.to_string()))?;
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        b = parse_instruction(b, rest, lineno)?;
    }
    b.build()
}

/// Disassembles a program into assembler text (with labels).
///
/// Control-flow targets are rendered as label names; targets without a
/// user-defined label get a synthetic `L<pc>` label so the output
/// re-assembles to an identical program.
#[must_use]
pub fn disassemble(p: &Program) -> String {
    use std::collections::BTreeMap;
    // Collect the set of referenced targets.
    let mut label_for: BTreeMap<usize, String> = BTreeMap::new();
    for (name, target) in p.labels() {
        label_for.entry(target).or_insert_with(|| name.to_owned());
    }
    for (_, inst) in p.iter() {
        let t = match *inst {
            Instruction::BranchIf { target, .. }
            | Instruction::Jump { target }
            | Instruction::Call { target } => target,
            _ => continue,
        };
        label_for.entry(t).or_insert_with(|| format!("L{t}"));
    }
    let mut out = String::new();
    for (pc, inst) in p.iter() {
        if let Some(name) = label_for.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        match *inst {
            Instruction::BranchIf { cond, a, b, target } => {
                let _ = writeln!(out, "    b{cond} {a}, {b}, {}", label_for[&target]);
            }
            Instruction::Jump { target } => {
                let _ = writeln!(out, "    jmp {}", label_for[&target]);
            }
            Instruction::Call { target } => {
                let _ = writeln!(out, "    call {}", label_for[&target]);
            }
            ref other => {
                let _ = writeln!(out, "    {other}");
            }
        }
    }
    // Trailing labels (bound one-past-the-last-instruction, e.g. a shrunk
    // program whose final `halt` was deleted) still round-trip: emit them
    // after the last instruction so `assemble` re-binds them to `len`.
    for (pc, name) in &label_for {
        if *pc >= p.len() {
            let _ = writeln!(out, "{name}:");
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find(';')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn parse_err(lineno: usize, message: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line: lineno + 1,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, lineno: usize) -> Result<Reg, IsaError> {
    let t = tok.trim();
    if t.eq_ignore_ascii_case("zero") {
        return Ok(Reg::ZERO);
    }
    let body = t
        .strip_prefix('r')
        .or_else(|| t.strip_prefix('R'))
        .ok_or_else(|| parse_err(lineno, format!("expected register, got '{t}'")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| parse_err(lineno, format!("bad register '{t}'")))?;
    if (n as usize) >= Reg::COUNT {
        return Err(parse_err(lineno, format!("register '{t}' out of range")));
    }
    Ok(Reg::new(n))
}

fn parse_freg(tok: &str, lineno: usize) -> Result<FReg, IsaError> {
    let t = tok.trim();
    let body = t
        .strip_prefix('f')
        .or_else(|| t.strip_prefix('F'))
        .ok_or_else(|| parse_err(lineno, format!("expected fp register, got '{t}'")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| parse_err(lineno, format!("bad fp register '{t}'")))?;
    if (n as usize) >= FReg::COUNT {
        return Err(parse_err(lineno, format!("fp register '{t}' out of range")));
    }
    Ok(FReg::new(n))
}

fn parse_u64(tok: &str, lineno: usize) -> Result<u64, IsaError> {
    let t = tok.trim();
    let (body, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else {
        (t, 10)
    };
    u64::from_str_radix(body, radix).map_err(|_| parse_err(lineno, format!("bad immediate '{t}'")))
}

fn parse_i64(tok: &str, lineno: usize) -> Result<i64, IsaError> {
    let t = tok.trim();
    if let Some(neg) = t.strip_prefix('-') {
        Ok(-(parse_u64(neg, lineno)? as i64))
    } else {
        let t = t.strip_prefix('+').unwrap_or(t);
        Ok(parse_u64(t, lineno)? as i64)
    }
}

/// Parses `[rN]`, `[rN+off]`, `[rN-off]`.
fn parse_mem(tok: &str, lineno: usize) -> Result<(Reg, i64), IsaError> {
    let t = tok.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| parse_err(lineno, format!("expected memory operand, got '{t}'")))?;
    if let Some(plus) = inner.find('+') {
        let base = parse_reg(&inner[..plus], lineno)?;
        let off = parse_i64(&inner[plus + 1..], lineno)?;
        Ok((base, off))
    } else if let Some(minus) = inner.rfind('-') {
        let base = parse_reg(&inner[..minus], lineno)?;
        let off = parse_i64(&inner[minus..], lineno)?;
        Ok((base, off))
    } else {
        Ok((parse_reg(inner, lineno)?, 0))
    }
}

fn parse_operand(tok: &str, lineno: usize) -> Result<Operand, IsaError> {
    let t = tok.trim();
    if t.eq_ignore_ascii_case("zero")
        || (t.len() >= 2
            && (t.starts_with('r') || t.starts_with('R'))
            && t[1..].chars().all(|c| c.is_ascii_digit()))
    {
        Ok(Operand::Reg(parse_reg(t, lineno)?))
    } else {
        Ok(Operand::Imm(parse_u64(t, lineno)?))
    }
}

fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "mul" => AluOp::Mul,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        _ => return None,
    })
}

fn parse_instruction(
    b: ProgramBuilder,
    line: &str,
    lineno: usize,
) -> Result<ProgramBuilder, IsaError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let m = mnemonic.to_ascii_lowercase();
    let ops = split_operands(rest);
    let need = |n: usize| -> Result<(), IsaError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(parse_err(
                lineno,
                format!("'{m}' expects {n} operand(s), got {}", ops.len()),
            ))
        }
    };

    if let Some(op) = alu_op(&m) {
        need(3)?;
        let dst = parse_reg(ops[0], lineno)?;
        let a = parse_reg(ops[1], lineno)?;
        let bop = parse_operand(ops[2], lineno)?;
        return Ok(match bop {
            Operand::Reg(r) => b.alu(op, dst, a, r),
            Operand::Imm(v) => b.alu_imm(op, dst, a, v),
        });
    }
    if let Some(cond) = branch_cond(&m) {
        need(3)?;
        let a = parse_reg(ops[0], lineno)?;
        let r = parse_reg(ops[1], lineno)?;
        let label = ops[2];
        if !is_ident(label) {
            return Err(parse_err(lineno, format!("bad branch target '{label}'")));
        }
        return Ok(b.branch_if(cond, a, r, label));
    }

    match m.as_str() {
        "imm" => {
            need(2)?;
            let dst = parse_reg(ops[0], lineno)?;
            let v = parse_u64(ops[1], lineno)?;
            Ok(b.imm(dst, v))
        }
        "load" => {
            need(2)?;
            let dst = parse_reg(ops[0], lineno)?;
            let (base, off) = parse_mem(ops[1], lineno)?;
            Ok(b.load(dst, base, off))
        }
        "store" => {
            need(2)?;
            let src = parse_reg(ops[0], lineno)?;
            let (base, off) = parse_mem(ops[1], lineno)?;
            Ok(b.store(src, base, off))
        }
        "jmp" => {
            need(1)?;
            if !is_ident(ops[0]) {
                return Err(parse_err(lineno, format!("bad jump target '{}'", ops[0])));
            }
            Ok(b.jump(ops[0]))
        }
        "jmpi" => {
            need(1)?;
            Ok(b.jump_indirect(parse_reg(ops[0], lineno)?))
        }
        "call" => {
            need(1)?;
            if !is_ident(ops[0]) {
                return Err(parse_err(lineno, format!("bad call target '{}'", ops[0])));
            }
            Ok(b.call(ops[0]))
        }
        "ret" => {
            need(0)?;
            Ok(b.ret())
        }
        "lfence" => {
            need(0)?;
            Ok(b.fence(FenceKind::LFence))
        }
        "mfence" => {
            need(0)?;
            Ok(b.fence(FenceKind::MFence))
        }
        "ssbb" => {
            need(0)?;
            Ok(b.fence(FenceKind::Ssbb))
        }
        "clflush" => {
            need(1)?;
            let (base, off) = parse_mem(ops[0], lineno)?;
            Ok(b.clflush(base, off))
        }
        "rdtsc" => {
            need(1)?;
            Ok(b.rdtsc(parse_reg(ops[0], lineno)?))
        }
        "rdmsr" => {
            need(2)?;
            let dst = parse_reg(ops[0], lineno)?;
            // Accept both the bare number and the `msr0x..` Display form.
            let num = ops[1].strip_prefix("msr").unwrap_or(ops[1]);
            let msr = Msr(parse_u64(num, lineno)? as u32);
            Ok(b.rdmsr(dst, msr))
        }
        "fpmov" => {
            need(2)?;
            let dst = parse_reg(ops[0], lineno)?;
            let f = parse_freg(ops[1], lineno)?;
            Ok(b.fpmov(dst, f))
        }
        "txbegin" => {
            need(0)?;
            Ok(b.tx_begin())
        }
        "txend" => {
            need(0)?;
            Ok(b.tx_end())
        }
        "halt" => {
            need(0)?;
            Ok(b.halt())
        }
        "nop" => {
            need(0)?;
            Ok(b.nop())
        }
        other => Err(parse_err(lineno, format!("unknown mnemonic '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r"
            ; a tiny loop
            main:
                imm   r0, 3
            loop:
                sub   r0, r0, 1
                bne   r0, zero, loop
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.label("main"), Some(0));
        assert_eq!(p.label("loop"), Some(1));
        match p[2] {
            Instruction::BranchIf {
                cond: Cond::Ne,
                target,
                ..
            } => assert_eq!(target, 1),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble("load r1, [r2]\nload r1, [r2+16]\nstore r1, [r2-8]\nhalt").unwrap();
        assert_eq!(
            p[0],
            Instruction::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0
            }
        );
        assert_eq!(
            p[1],
            Instruction::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 16
            }
        );
        assert_eq!(
            p[2],
            Instruction::Store {
                src: Reg::R1,
                base: Reg::R2,
                offset: -8
            }
        );
    }

    #[test]
    fn alu_reg_vs_imm() {
        let p = assemble("add r1, r2, r3\nadd r1, r2, 7\nadd r1, r2, 0x10\nhalt").unwrap();
        assert_eq!(
            p[0],
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg::R1,
                a: Reg::R2,
                b: Operand::Reg(Reg::R3)
            }
        );
        assert_eq!(
            p[1],
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg::R1,
                a: Reg::R2,
                b: Operand::Imm(7)
            }
        );
        assert_eq!(
            p[2],
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg::R1,
                a: Reg::R2,
                b: Operand::Imm(16)
            }
        );
    }

    #[test]
    fn special_instructions() {
        let p = assemble(
            "lfence\nmfence\nssbb\nclflush [r1+64]\nrdtsc r2\nrdmsr r3, 0x10\nfpmov r4, f1\ntxbegin\ntxend\nret\njmpi r5\nnop\nhalt",
        )
        .unwrap();
        assert_eq!(p[0], Instruction::Fence(FenceKind::LFence));
        assert_eq!(
            p[5],
            Instruction::ReadMsr {
                dst: Reg::R3,
                msr: Msr(0x10)
            }
        );
        assert_eq!(
            p[6],
            Instruction::FpMove {
                dst: Reg::R4,
                fsrc: FReg::new(1)
            }
        );
        assert_eq!(p[10], Instruction::JumpIndirect { reg: Reg::R5 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n").unwrap_err();
        match e {
            IsaError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(assemble("imm r1\n").is_err());
        assert!(assemble("halt r1\n").is_err());
        assert!(assemble("load r1, [r2], r3\n").is_err());
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("imm r16, 1\n").is_err());
        assert!(assemble("imm q1, 1\n").is_err());
        assert!(assemble("fpmov r1, f9\n").is_err());
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("nop ; trailing\n// whole line\nhalt // end\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn disassemble_roundtrip() {
        let src = "main:\n    imm r0, 0x3\nloop:\n    sub r0, r0, 0x1\n    bne r0, zero, loop\n    halt\n";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.instructions(), p2.instructions());
    }

    #[test]
    fn trailing_label_roundtrips() {
        // A label bound one-past-the-end (the shape a shrunk program takes
        // after its final `halt` is deleted) must survive the round trip:
        // exception handlers resolve `label("out")`, so dropping it would
        // change the rebuilt program's behavior.
        let p = assemble("nop\nload r1, [r2]\nout:").unwrap();
        assert_eq!(p.label("out"), Some(2));
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.instructions(), p2.instructions());
        assert_eq!(p2.label("out"), Some(2));
    }

    #[test]
    fn label_and_inst_on_same_line() {
        let p = assemble("main: imm r0, 1\nhalt").unwrap();
        assert_eq!(p.label("main"), Some(0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn undefined_branch_label() {
        let e = assemble("jmp nowhere\nhalt").unwrap_err();
        assert_eq!(e, IsaError::UndefinedLabel("nowhere".into()));
    }
}
