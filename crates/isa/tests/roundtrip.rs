//! Property tests: disassemble ∘ assemble is the identity on instruction
//! sequences, for arbitrary generated programs.

use isa::{asm, AluOp, Cond, FReg, FenceKind, Instruction, Msr, Operand, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge)
    ]
}

/// Non-control-flow instructions (control flow is generated separately so
/// targets stay in range).
fn arb_straight() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_reg(), any::<u64>()).prop_map(|(dst, value)| Instruction::Imm { dst, value }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, dst, a, b)| Instruction::Alu {
            op,
            dst,
            a,
            b: Operand::Reg(b)
        }),
        (arb_alu(), arb_reg(), arb_reg(), any::<u64>()).prop_map(|(op, dst, a, v)| {
            Instruction::Alu {
                op,
                dst,
                a,
                b: Operand::Imm(v),
            }
        }),
        (arb_reg(), arb_reg(), -512i64..512).prop_map(|(dst, base, offset)| Instruction::Load {
            dst,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), -512i64..512).prop_map(|(src, base, offset)| Instruction::Store {
            src,
            base,
            offset
        }),
        (arb_reg(), -512i64..512)
            .prop_map(|(base, offset)| Instruction::CacheFlush { base, offset }),
        arb_reg().prop_map(|dst| Instruction::ReadTime { dst }),
        (arb_reg(), 0u32..64).prop_map(|(dst, m)| Instruction::ReadMsr { dst, msr: Msr(m) }),
        (arb_reg(), 0u8..8).prop_map(|(dst, f)| Instruction::FpMove {
            dst,
            fsrc: FReg::new(f)
        }),
        prop_oneof![
            Just(Instruction::Fence(FenceKind::LFence)),
            Just(Instruction::Fence(FenceKind::MFence)),
            Just(Instruction::Fence(FenceKind::Ssbb)),
        ],
        Just(Instruction::TxBegin),
        Just(Instruction::TxEnd),
        Just(Instruction::Nop),
        arb_reg().prop_map(|reg| Instruction::JumpIndirect { reg }),
        Just(Instruction::Ret),
        Just(Instruction::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Straight-line programs survive the text round trip exactly.
    #[test]
    fn roundtrip_straightline(insts in proptest::collection::vec(arb_straight(), 1..64)) {
        let p = Program::from_instructions(insts).expect("no targets to validate");
        let text = asm::disassemble(&p);
        let p2 = asm::assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(p.instructions(), p2.instructions());
    }

    /// Programs with forward branches/jumps/calls also round trip
    /// (synthetic labels are generated for the targets).
    #[test]
    fn roundtrip_with_control_flow(
        insts in proptest::collection::vec(arb_straight(), 4..32),
        picks in proptest::collection::vec((any::<prop::sample::Index>(), arb_cond(), 0u8..3), 1..6),
    ) {
        let mut v = insts;
        let n = v.len();
        for (idx, cond, kind) in picks {
            let at = idx.index(n);
            let target = (at + 1 + idx.index(n - at)) % (n + 1);
            v[at] = match kind {
                0 => Instruction::BranchIf { cond, a: Reg::R0, b: Reg::R1, target },
                1 => Instruction::Jump { target },
                _ => Instruction::Call { target },
            };
        }
        // Ensure a final halt so `target == n` stays in range.
        v.push(Instruction::Halt);
        let p = Program::from_instructions(v).expect("targets in range");
        let text = asm::disassemble(&p);
        let p2 = asm::assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(p.instructions(), p2.instructions());
    }

    /// Display of any instruction is non-empty and stable (never panics).
    #[test]
    fn display_total(inst in arb_straight()) {
        prop_assert!(!inst.to_string().is_empty());
    }
}
