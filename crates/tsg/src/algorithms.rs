//! Graph algorithms supporting the tool flow of §V-C: transitive
//! reduction (minimal dependency sets), speculation-window analysis, and
//! path counting.
//!
//! The paper's tool "can proactively insert a security dependency, e.g., a
//! lightweight fence" — the *minimal* set of edges to insert is exactly
//! the transitive reduction of the required orderings, and the *cost* of
//! an inserted ordering relates to how much concurrency (how many valid
//! orderings) it removes.

use crate::edge::EdgeKind;
use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::NodeId;

impl Tsg {
    /// The transitive reduction: the minimal edge set with the same
    /// reachability relation. Returns pairs `(from, to)` of edges that are
    /// **redundant** (implied by other paths) — removing them changes no
    /// ordering guarantee.
    ///
    /// For a defense designer this identifies security-dependency edges
    /// that are already implied by data/control dependencies and therefore
    /// cost nothing to "insert".
    #[must_use]
    pub fn redundant_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut redundant = Vec::new();
        for e in self.edges() {
            // Edge u→v is redundant iff v is reachable from u without it.
            let (u, v) = (e.from(), e.to());
            if self.reaches_avoiding(u, v, e.id().index()) {
                redundant.push((u, v));
            }
        }
        redundant
    }

    /// Reachability from `from` to `to` ignoring the edge at `skip_idx`.
    fn reaches_avoiding(&self, from: NodeId, to: NodeId, skip_idx: usize) -> bool {
        let mut visited = vec![false; self.node_count()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(u) = stack.pop() {
            for e in self.successors(u).expect("node exists") {
                if e.id().index() == skip_idx {
                    continue;
                }
                let v = e.to();
                if v == to {
                    return true;
                }
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// The *speculation window* of an authorization node: every node that
    /// races with it (Theorem 1) — the operations that may execute while
    /// the authorization is pending. This is the set a defense must
    /// consider when deciding where to insert the security dependency.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if `auth` is not in the graph.
    pub fn speculation_window(&self, auth: NodeId) -> Result<Vec<NodeId>, TsgError> {
        self.check_node(auth)?;
        let mut window = Vec::new();
        for n in self.nodes() {
            if n.id() != auth && self.has_race(auth, n.id())? {
                window.push(n.id());
            }
        }
        Ok(window)
    }

    /// Counts directed paths from `from` to `to` (DAG dynamic programming).
    /// Saturates at `u64::MAX`.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] for unknown ids.
    pub fn count_paths(&self, from: NodeId, to: NodeId) -> Result<u64, TsgError> {
        self.check_node(from)?;
        self.check_node(to)?;
        let topo = self.topological_sort();
        let mut count = vec![0u64; self.node_count()];
        count[from.index()] = 1;
        for &u in &topo {
            if count[u.index()] == 0 {
                continue;
            }
            let c = count[u.index()];
            for e in self.successors(u).expect("node exists") {
                let v = e.to().index();
                count[v] = count[v].saturating_add(c);
            }
        }
        Ok(count[to.index()])
    }

    /// The longest path length (in edges) from any source to any sink —
    /// the critical path of the modeled computation. An inserted security
    /// dependency that lies on the critical path costs latency; one off it
    /// is free (the performance side of the paper's Insight 5).
    #[must_use]
    pub fn critical_path_length(&self) -> usize {
        let topo = self.topological_sort();
        let mut dist = vec![0usize; self.node_count()];
        let mut best = 0;
        for &u in &topo {
            for e in self.successors(u).expect("node exists") {
                let v = e.to().index();
                if dist[u.index()] + 1 > dist[v] {
                    dist[v] = dist[u.index()] + 1;
                    best = best.max(dist[v]);
                }
            }
        }
        best
    }

    /// Of the declared-or-proposed security edges (`kind ==
    /// EdgeKind::Security`), those that are redundant (already implied by
    /// the rest of the graph) — "free" defenses.
    #[must_use]
    pub fn redundant_security_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.redundant_edges()
            .into_iter()
            .filter(|&(u, v)| {
                self.successors(u)
                    .expect("node exists")
                    .any(|e| e.to() == v && e.kind() == EdgeKind::Security)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn chain_with_shortcut() -> (Tsg, [NodeId; 3]) {
        // a→b→c plus the redundant shortcut a→c.
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(b, c, EdgeKind::Data).unwrap();
        g.add_edge(a, c, EdgeKind::Security).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn shortcut_is_redundant() {
        let (g, [a, _, c]) = chain_with_shortcut();
        assert_eq!(g.redundant_edges(), vec![(a, c)]);
        assert_eq!(g.redundant_security_edges(), vec![(a, c)]);
    }

    #[test]
    fn chain_has_no_redundancy() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        assert!(g.redundant_edges().is_empty());
    }

    #[test]
    fn speculation_window_is_the_race_set() {
        let g = crate::examples::fig2();
        let d = g.find_by_label("D").unwrap();
        let e = g.find_by_label("E").unwrap();
        let b = g.find_by_label("B").unwrap();
        let window = g.speculation_window(e).unwrap();
        assert!(window.contains(&d));
        assert!(window.contains(&b));
        assert_eq!(window.len(), 2);
    }

    #[test]
    fn path_counting() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        let d = g.add_node("d", NodeKind::Compute);
        for (u, v) in [(a, b), (a, c), (b, d), (c, d)] {
            g.add_edge(u, v, EdgeKind::Data).unwrap();
        }
        assert_eq!(g.count_paths(a, d).unwrap(), 2);
        assert_eq!(g.count_paths(d, a).unwrap(), 0);
        assert_eq!(g.count_paths(a, a).unwrap(), 1);
    }

    #[test]
    fn critical_path() {
        let (g, _) = chain_with_shortcut();
        assert_eq!(g.critical_path_length(), 2);
        let empty = Tsg::new();
        assert_eq!(empty.critical_path_length(), 0);
    }

    #[test]
    fn window_shrinks_after_patch() {
        // Patching the authorization→access edge shrinks the speculation
        // window — the measurable effect of a defense at the graph level.
        let mut g = Tsg::new();
        let auth = g.add_node("auth", NodeKind::Authorization);
        let x = g.add_node("x", NodeKind::Compute);
        let y = g.add_node("y", NodeKind::Compute);
        g.add_edge(x, y, EdgeKind::Data).unwrap();
        assert_eq!(g.speculation_window(auth).unwrap().len(), 2);
        g.add_edge(auth, x, EdgeKind::Security).unwrap();
        assert!(g.speculation_window(auth).unwrap().is_empty());
    }

    #[test]
    fn unknown_node_rejected() {
        let g = Tsg::new();
        assert!(g.speculation_window(NodeId::from_index(0)).is_err());
        assert!(g
            .count_paths(NodeId::from_index(0), NodeId::from_index(1))
            .is_err());
    }
}
