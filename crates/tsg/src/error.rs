//! Error type for TSG construction and queries.

use crate::node::NodeId;
use std::error::Error;
use std::fmt;

/// Errors returned by [`Tsg`](crate::Tsg) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TsgError {
    /// A node id referenced a node that does not exist in this graph.
    UnknownNode(NodeId),
    /// Adding the edge would have created a directed cycle, which is
    /// forbidden: a TSG is a DAG (paper §IV-B).
    WouldCycle {
        /// Source of the rejected edge.
        from: NodeId,
        /// Destination of the rejected edge.
        to: NodeId,
    },
    /// The edge connects a node to itself.
    SelfLoop(NodeId),
    /// An ordering did not contain exactly the graph's vertex set.
    MalformedOrdering {
        /// Number of vertices in the graph.
        expected: usize,
        /// Number of vertices in the supplied ordering.
        got: usize,
    },
    /// The graph is too large for exhaustive ordering enumeration.
    TooLargeToEnumerate {
        /// Number of vertices in the graph.
        nodes: usize,
        /// The enumeration limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for TsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsgError::UnknownNode(id) => write!(f, "unknown node {id}"),
            TsgError::WouldCycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            TsgError::SelfLoop(id) => write!(f, "self-loop on {id} is not allowed"),
            TsgError::MalformedOrdering { expected, got } => write!(
                f,
                "ordering has {got} vertices but the graph has {expected}"
            ),
            TsgError::TooLargeToEnumerate { nodes, limit } => write!(
                f,
                "graph with {nodes} nodes exceeds the enumeration limit of {limit}"
            ),
        }
    }
}

impl Error for TsgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TsgError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert!(TsgError::WouldCycle {
            from: NodeId(0),
            to: NodeId(1)
        }
        .to_string()
        .contains("cycle"));
        assert!(TsgError::SelfLoop(NodeId(2))
            .to_string()
            .contains("self-loop"));
        assert!(TsgError::MalformedOrdering {
            expected: 4,
            got: 3
        }
        .to_string()
        .contains('4'));
        assert!(TsgError::TooLargeToEnumerate {
            nodes: 100,
            limit: 12
        }
        .to_string()
        .contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TsgError>();
    }
}
