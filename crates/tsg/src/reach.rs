//! The reachability index: a bitset transitive closure answering
//! "does `u` reach `v`?" in O(1) after one O(V·E/64) build, and kept
//! *live* across edge insertions via [`ReachabilityIndex::insert_edge`].
//!
//! Theorem 1 reduces race detection to reachability, so *every* verdict
//! this crate produces — [`Tsg::has_race`](crate::Tsg::has_race), all-pairs
//! race scans, security-dependency checks — is at heart a reachability
//! query. The seed implementation paid a fresh DFS per query; campaign
//! workloads (attack × defense × config matrices) ask thousands of queries
//! against the same graph, so the closure is computed once per graph and
//! cached on the [`Tsg`].
//!
//! Mutation is two-tier. A full [`ReachabilityIndex::build`] is the oracle
//! and the fallback after structural changes the incremental path does not
//! cover (node additions, [`Tsg::strip_edges`](crate::Tsg::strip_edges)).
//! An *edge* insertion into an already-indexed graph — the patch-heavy
//! campaign case: security-dependency edges applied and rolled back per
//! candidate defense stack — updates the closure in place instead
//! (Italiano-style incremental transitive closure): every row that reaches
//! the edge's source absorbs the target's descendant row, `O(affected
//! rows · V/64)` word operations per edge instead of a full rebuild.
//!
//! Representation: one `u64` row-slice per vertex, `words = ⌈V/64⌉` words
//! each, row `u` holding the (reflexive) descendant set of `u`. Rows are
//! filled in reverse topological order, so each vertex ORs its successors'
//! already-complete rows — `O(V·E/64)` word operations total.

use crate::graph::Tsg;
use crate::node::NodeId;

/// A bitset transitive closure of a [`Tsg`].
///
/// Built once per graph state via [`ReachabilityIndex::build`] (or lazily
/// through [`Tsg::reachability`](crate::Tsg::reachability)); queries are
/// single word-and-mask probes.
///
/// ```
/// use tsg::{Tsg, NodeKind, EdgeKind, ReachabilityIndex};
/// # fn main() -> Result<(), tsg::TsgError> {
/// let mut g = Tsg::new();
/// let a = g.add_node("a", NodeKind::Compute);
/// let b = g.add_node("b", NodeKind::Compute);
/// let c = g.add_node("c", NodeKind::Compute);
/// g.add_edge(a, b, EdgeKind::Data)?;
/// g.add_edge(b, c, EdgeKind::Data)?;
/// let idx = ReachabilityIndex::build(&g);
/// assert!(idx.reaches(a, c));      // transitive
/// assert!(!idx.reaches(c, a));     // directed
/// assert!(!idx.races(a, c));       // connected ⇒ no race (Theorem 1)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityIndex {
    nodes: usize,
    words: usize,
    /// `nodes × words` row-major closure bits; bit `v` of row `u` means
    /// `u` reaches `v` (reflexively).
    bits: Vec<u64>,
}

impl ReachabilityIndex {
    /// Computes the transitive closure of `g`.
    ///
    /// One pass over the vertices in reverse topological order; each vertex
    /// ORs the rows of its direct successors.
    #[must_use]
    pub fn build(g: &Tsg) -> Self {
        let nodes = g.node_count();
        let words = nodes.div_ceil(64);
        let mut bits = vec![0u64; nodes * words];
        // Any topological order works here (rows only need complete
        // successors); the unordered Kahn pass skips the public sort's
        // deterministic-tie-break heap.
        let topo = g.topo_order_unordered();
        debug_assert_eq!(topo.len(), nodes, "DAG invariant violated");
        for &u in topo.iter().rev() {
            let ui = u.index();
            bits[ui * words + ui / 64] |= 1 << (ui % 64);
            // Walk the adjacency list by index — no per-node successor
            // collection; `bits` is local so the shared borrow of `g`
            // never conflicts.
            for s in g.successor_indices(ui) {
                debug_assert_ne!(s, ui, "self-loop in DAG");
                or_row(&mut bits, words, ui, s);
            }
        }
        ReachabilityIndex { nodes, words, bits }
    }

    /// Incrementally folds a newly inserted edge `from → to` into the
    /// closure: every row whose bit `from` is set — and that does not
    /// already contain `to` (such rows are supersets of `to`'s row by
    /// transitivity) — absorbs `to`'s descendant row. `O(affected rows ·
    /// V/64)` word operations; a no-op when `from` already reached `to`.
    ///
    /// The caller must have inserted the edge into the graph this index
    /// describes (or do so atomically with this call, as
    /// [`Tsg::add_edge`](crate::Tsg::add_edge) does) and guarantee the
    /// graph stays acyclic — this is checked in debug builds only.
    ///
    /// # Panics
    ///
    /// Panics if either id is outside the indexed graph or the edge is a
    /// self-loop.
    pub fn insert_edge(&mut self, from: NodeId, to: NodeId) {
        let (u, v) = (from.index(), to.index());
        assert!(u < self.nodes && v < self.nodes, "node outside index");
        assert_ne!(u, v, "self-loop in DAG");
        let words = self.words;
        debug_assert!(
            self.bits[v * words + u / 64] & (1 << (u % 64)) == 0,
            "edge {from} -> {to} would close a cycle"
        );
        let (u_word, u_mask) = (u / 64, 1u64 << (u % 64));
        let (v_word, v_mask) = (v / 64, 1u64 << (v % 64));
        if self.bits[u * words + v_word] & v_mask != 0 {
            return; // `from` already reaches `to`: closure unchanged.
        }
        // `to`'s row is never itself a destination (that would need
        // `to` to reach `from` — a cycle), so a copy breaks the alias.
        let src: Vec<u64> = self.bits[v * words..(v + 1) * words].to_vec();
        for row in self.bits.chunks_exact_mut(words) {
            if row[u_word] & u_mask != 0 && row[v_word] & v_mask == 0 {
                for (d, s) in row.iter_mut().zip(&src) {
                    *d |= s;
                }
            }
        }
    }

    /// Number of vertices the index covers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Whether `from` reaches `to` (reflexive: every node reaches itself).
    ///
    /// # Panics
    ///
    /// Panics if either id is outside the indexed graph; callers go through
    /// [`Tsg`] query methods, which validate ids first.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let (u, v) = (from.index(), to.index());
        assert!(u < self.nodes && v < self.nodes, "node outside index");
        self.bits[u * self.words + v / 64] & (1 << (v % 64)) != 0
    }

    /// Whether a directed path connects the pair in either direction.
    #[must_use]
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.reaches(u, v) || self.reaches(v, u)
    }

    /// Theorem 1: whether `u` and `v` race (distinct and unconnected).
    #[must_use]
    pub fn races(&self, u: NodeId, v: NodeId) -> bool {
        u != v && !self.connected(u, v)
    }

    /// How many vertices `from` reaches, including itself.
    #[must_use]
    pub fn descendant_count(&self, from: NodeId) -> usize {
        let u = from.index();
        assert!(u < self.nodes, "node outside index");
        self.bits[u * self.words..(u + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates the descendants of `from` — every vertex it reaches,
    /// **excluding** itself — in ascending [`NodeId`] order.
    ///
    /// One word-scan over the closure row: enumerating all targets this way
    /// costs `O(V/64 + |descendants|)`, where probing each candidate
    /// individually with `has_path`/[`reaches`](ReachabilityIndex::reaches)
    /// pays the per-query dispatch `V` times.
    ///
    /// # Panics
    ///
    /// Panics if `from` is outside the indexed graph.
    pub fn descendants(&self, from: NodeId) -> Descendants<'_> {
        let u = from.index();
        assert!(u < self.nodes, "node outside index");
        Descendants {
            row: &self.bits[u * self.words..(u + 1) * self.words],
            skip: u,
            word: 0,
            current: self.bits.get(u * self.words).copied().unwrap_or(0),
        }
    }
}

/// ORs row `src` of the row-major closure `bits` into row `dst` (disjoint
/// row slices carved out via `split_at_mut`).
fn or_row(bits: &mut [u64], words: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src);
    let (do_, so) = (dst * words, src * words);
    let (d, s) = if do_ < so {
        let (lo, hi) = bits.split_at_mut(so);
        (&mut lo[do_..do_ + words], &hi[..words])
    } else {
        let (lo, hi) = bits.split_at_mut(do_);
        (&mut hi[..words], &lo[so..so + words])
    };
    for (d, s) in d.iter_mut().zip(s) {
        *d |= s;
    }
}

/// Iterator over the descendant set of one vertex, ascending by id.
/// Created by [`ReachabilityIndex::descendants`].
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    row: &'a [u64],
    /// The origin's own index (the closure is reflexive; the origin is
    /// skipped so "descendants" means *proper* descendants).
    skip: usize,
    word: usize,
    current: u64,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            while self.current == 0 {
                self.word += 1;
                if self.word >= self.row.len() {
                    return None;
                }
                self.current = self.row[self.word];
            }
            let bit = self.current.trailing_zeros() as usize;
            self.current &= self.current - 1;
            let v = self.word * 64 + bit;
            if v != self.skip {
                return Some(NodeId::from_index(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, NodeKind};

    fn diamond() -> (Tsg, [NodeId; 4]) {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        let d = g.add_node("d", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(a, c, EdgeKind::Data).unwrap();
        g.add_edge(b, d, EdgeKind::Data).unwrap();
        g.add_edge(c, d, EdgeKind::Data).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn closure_matches_dfs_on_diamond() {
        let (g, ids) = diamond();
        let idx = ReachabilityIndex::build(&g);
        for &u in &ids {
            for &v in &ids {
                assert_eq!(
                    idx.reaches(u, v),
                    g.has_path(u, v).unwrap(),
                    "closure disagrees with DFS for ({u}, {v})"
                );
            }
        }
        assert!(idx.races(ids[1], ids[2])); // b ⟂ c
        assert!(!idx.races(ids[0], ids[3]));
    }

    #[test]
    fn descendant_counts() {
        let (g, ids) = diamond();
        let idx = ReachabilityIndex::build(&g);
        assert_eq!(idx.descendant_count(ids[0]), 4);
        assert_eq!(idx.descendant_count(ids[3]), 1);
    }

    #[test]
    fn descendants_iterator_is_proper_and_ascending() {
        let (g, ids) = diamond();
        let idx = ReachabilityIndex::build(&g);
        let d: Vec<NodeId> = idx.descendants(ids[0]).collect();
        assert_eq!(d, vec![ids[1], ids[2], ids[3]]); // excludes the origin
        assert_eq!(idx.descendants(ids[3]).count(), 0); // sink: none
                                                        // Consistent with the count (which includes the origin).
        for &u in &ids {
            assert_eq!(idx.descendants(u).count() + 1, idx.descendant_count(u));
        }
    }

    #[test]
    fn descendants_iterator_crosses_word_boundaries() {
        let mut g = Tsg::new();
        let ids: Vec<NodeId> = (0..130)
            .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], EdgeKind::Data).unwrap();
        }
        let idx = ReachabilityIndex::build(&g);
        let d: Vec<NodeId> = idx.descendants(ids[63]).collect();
        assert_eq!(d.len(), 66);
        assert_eq!(d.first(), Some(&ids[64]));
        assert_eq!(d.last(), Some(&ids[129]));
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let g = Tsg::new();
        let idx = ReachabilityIndex::build(&g);
        assert_eq!(idx.node_count(), 0);
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let idx = ReachabilityIndex::build(&g);
        assert!(idx.reaches(a, a));
        assert!(!idx.races(a, a));
    }

    #[test]
    fn wide_graph_crosses_word_boundaries() {
        // 130 nodes in a chain: closure rows span 3 words.
        let mut g = Tsg::new();
        let ids: Vec<NodeId> = (0..130)
            .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], EdgeKind::Data).unwrap();
        }
        let idx = ReachabilityIndex::build(&g);
        assert!(idx.reaches(ids[0], ids[129]));
        assert!(!idx.reaches(ids[129], ids[0]));
        assert_eq!(idx.descendant_count(ids[0]), 130);
        assert_eq!(idx.descendant_count(ids[64]), 66);
    }

    #[test]
    #[should_panic(expected = "node outside index")]
    fn out_of_range_panics() {
        let (g, _) = diamond();
        let idx = ReachabilityIndex::build(&g);
        let _ = idx.reaches(NodeId(7), NodeId(0));
    }

    #[test]
    fn insert_edge_matches_full_rebuild() {
        // Two disconnected chains a→b, c→d; bridge them edge by edge and
        // compare the maintained closure to a fresh build after each step.
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        let d = g.add_node("d", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(c, d, EdgeKind::Data).unwrap();
        let mut idx = ReachabilityIndex::build(&g);
        for (from, to) in [(b, c), (a, d)] {
            g.add_edge(from, to, EdgeKind::Security).unwrap();
            idx.insert_edge(from, to);
            assert_eq!(idx, ReachabilityIndex::build(&g), "after {from}->{to}");
        }
        assert!(idx.reaches(a, d));
        assert!(!idx.reaches(d, a));
    }

    #[test]
    fn insert_edge_already_reachable_is_a_noop() {
        let (g, ids) = diamond();
        let mut idx = ReachabilityIndex::build(&g);
        let before = idx.clone();
        idx.insert_edge(ids[0], ids[3]); // a already reaches d
        assert_eq!(idx, before);
    }

    #[test]
    fn insert_edge_updates_rows_across_word_boundaries() {
        // 130-node chain missing its middle link; inserting it must update
        // all 65 upstream rows, whose tails live in later words.
        let mut g = Tsg::new();
        let ids: Vec<NodeId> = (0..130)
            .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
            .collect();
        for w in ids.windows(2) {
            if w[0] != ids[64] {
                g.add_edge(w[0], w[1], EdgeKind::Data).unwrap();
            }
        }
        let mut idx = ReachabilityIndex::build(&g);
        assert!(!idx.reaches(ids[0], ids[129]));
        g.add_edge(ids[64], ids[65], EdgeKind::Data).unwrap();
        idx.insert_edge(ids[64], ids[65]);
        assert_eq!(idx, ReachabilityIndex::build(&g));
        assert!(idx.reaches(ids[0], ids[129]));
        assert_eq!(idx.descendant_count(ids[0]), 130);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn insert_edge_rejects_self_loop() {
        let (g, ids) = diamond();
        let mut idx = ReachabilityIndex::build(&g);
        idx.insert_edge(ids[0], ids[0]);
    }
}
