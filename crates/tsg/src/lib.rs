//! # `tsg` — Topological Sort Graphs for speculative-execution attack modeling
//!
//! This crate implements the *attack graph* formalism of
//! "New Models for Understanding and Reasoning about Speculative Execution
//! Attacks" (He, Hu, Lee — HPCA 2021).
//!
//! An attack graph is a **Topological Sort Graph (TSG)**: a directed acyclic
//! graph whose vertices are operations (instructions or micro-ops) and whose
//! edges are *dependencies* — orderings the hardware is guaranteed to respect.
//! The paper's central results, all implemented here:
//!
//! * **Valid orderings** ([`Tsg::is_valid_ordering`], [`Tsg::valid_orderings`])
//!   are the linear extensions of the partial order induced by the edges.
//! * **Race condition** ([`Tsg::has_race`]): vertices `u`, `v` race iff two valid
//!   orderings disagree on their relative order.
//! * **Theorem 1** ([`Tsg::has_race`]): `u` and `v` are race-free **iff** a
//!   directed path connects them. Race detection therefore reduces to two
//!   reachability queries.
//! * **Security dependency** ([`SecurityDependency`], [`analysis`]): a required
//!   ordering from an *authorization* operation to a protected *access*,
//!   *use*, or *send* operation. A missing security dependency is a race
//!   between authorization and access — the root cause of Spectre/Meltdown-
//!   class attacks.
//!
//! ## Quick example
//!
//! ```
//! use tsg::{Tsg, NodeKind, EdgeKind, SecretSource};
//!
//! # fn main() -> Result<(), tsg::TsgError> {
//! let mut g = Tsg::new();
//! let auth = g.add_node("bounds check", NodeKind::Authorization);
//! let access = g.add_node(
//!     "load secret",
//!     NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
//! );
//! // No edge between them: they race (Theorem 1), so the access can
//! // complete before the authorization — a speculative-execution hole.
//! assert!(g.has_race(auth, access)?);
//!
//! // Inserting the missing security dependency serializes them.
//! g.add_edge(auth, access, EdgeKind::Security)?;
//! assert!(!g.has_race(auth, access)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod analysis;
pub mod builder;
pub mod dot;
mod edge;
mod error;
pub mod examples;
mod fingerprint;
mod graph;
mod node;
pub mod ordering;
pub mod race;
pub mod reach;
pub mod text;

pub use builder::TsgBuilder;
pub use edge::{Edge, EdgeId, EdgeKind};
pub use error::TsgError;
pub use fingerprint::shape_fingerprint;
pub use graph::{Tsg, TsgCheckpoint};
pub use node::{Node, NodeId, NodeKind, SecretSource};
pub use race::RacePair;
pub use reach::{Descendants, ReachabilityIndex};

pub use analysis::{SecurityAnalysis, SecurityDependency, Vulnerability};
