//! Edges of a Topological Sort Graph: dependencies between operations.

use crate::node::NodeId;
use std::fmt;

/// Identifier of an edge within one [`Tsg`](crate::Tsg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The dense index of this edge (its insertion order within the graph).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Why one operation must happen before another.
///
/// The paper distinguishes the classical *data* and *control* dependencies —
/// which hardware already honors for correctness — from the new **security
/// dependency** (Definition 2), which hardware must additionally honor to
/// prevent authorization/access races.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EdgeKind {
    /// A true (read-after-write) data dependency.
    Data,
    /// A control-flow dependency (e.g. an instruction after a resolved branch).
    Control,
    /// An address dependency: the target address of a memory operation is
    /// produced by the source operation.
    Address,
    /// An explicit serialization inserted by a fence instruction
    /// (LFENCE/MFENCE or hardware micro-op fences).
    Fence,
    /// A **security dependency** (paper Definition 2): authorization `u` must
    /// complete before protected operation `v`.
    Security,
    /// A program-order or other structural ordering the modeled machine
    /// guarantees (e.g. in-order commit, sequential steps of one μ-op flow).
    Program,
}

impl EdgeKind {
    /// Whether this edge was inserted as a defensive (security) ordering
    /// rather than an ordering the baseline machine already enforces.
    #[must_use]
    pub fn is_security(self) -> bool {
        matches!(self, EdgeKind::Security)
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::Data => "data",
            EdgeKind::Control => "control",
            EdgeKind::Address => "address",
            EdgeKind::Fence => "fence",
            EdgeKind::Security => "security",
            EdgeKind::Program => "program",
        };
        f.write_str(s)
    }
}

/// A directed edge `from → to`: `from` is guaranteed to complete before `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub(crate) id: EdgeId,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) kind: EdgeKind,
}

impl Edge {
    /// This edge's identifier.
    #[must_use]
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Source node (the operation that happens first).
    #[must_use]
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Destination node (the operation that must wait).
    #[must_use]
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The dependency type of this edge.
    #[must_use]
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}]-> {}", self.from, self.kind, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_display() {
        let e = Edge {
            id: EdgeId(0),
            from: NodeId(1),
            to: NodeId(2),
            kind: EdgeKind::Security,
        };
        assert_eq!(e.to_string(), "n1 -[security]-> n2");
        assert_eq!(e.id().index(), 0);
    }

    #[test]
    fn security_predicate() {
        assert!(EdgeKind::Security.is_security());
        for k in [
            EdgeKind::Data,
            EdgeKind::Control,
            EdgeKind::Address,
            EdgeKind::Fence,
            EdgeKind::Program,
        ] {
            assert!(!k.is_security());
        }
    }

    #[test]
    fn edge_id_display() {
        assert_eq!(EdgeId(3).to_string(), "e3");
    }
}
