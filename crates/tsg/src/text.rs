//! A line-oriented text format for attack graphs, so the Figure-9 tool can
//! emit graphs that other tools (or humans) can edit and re-load.
//!
//! ```text
//! # comment
//! node n0 authorization "Branch resolution"
//! node n1 access:memory "Load S"
//! node n2 send "Load R to Cache"
//! edge n1 -> n2 data
//! require n0 -> n1
//! ```
//!
//! Round trip: [`to_text`] ∘ [`from_text`] preserves nodes, edges and
//! requirements exactly (ids are re-assigned densely in order).

use crate::analysis::SecurityAnalysis;
use crate::edge::EdgeKind;
use crate::error::TsgError;
use crate::node::{NodeId, NodeKind, SecretSource};
use std::fmt::Write as _;

/// Serializes an analysis (graph + requirements) to the text format.
#[must_use]
pub fn to_text(sa: &SecurityAnalysis) -> String {
    let mut out = String::new();
    let g = sa.graph();
    for n in g.nodes() {
        let _ = writeln!(
            out,
            "node {} {} \"{}\"",
            n.id(),
            kind_token(n.kind()),
            n.label().replace('"', "'")
        );
    }
    for e in g.edges() {
        let _ = writeln!(out, "edge {} -> {} {}", e.from(), e.to(), e.kind());
    }
    for r in sa.requirements() {
        let _ = writeln!(out, "require {} -> {}", r.authorization, r.protected);
    }
    out
}

/// Parses the text format back into an analysis.
///
/// # Errors
///
/// [`TsgError::MalformedOrdering`] is never returned here; parse problems
/// surface as [`TsgError::UnknownNode`] (for dangling ids) or a panic-free
/// `Err` via the same variant with a placeholder id for malformed lines.
pub fn from_text(src: &str) -> Result<SecurityAnalysis, TsgError> {
    let mut sa = SecurityAnalysis::new();
    // First pass: nodes (ids must be declared before use; the serializer
    // guarantees dense order).
    let mut max_declared: i64 = -1;
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let id = parse_id(parts.next())?;
                if id.index() as i64 != max_declared + 1 {
                    return Err(TsgError::UnknownNode(id));
                }
                max_declared += 1;
                let kind = parse_kind(parts.next())?;
                let label = line
                    .split_once('"')
                    .and_then(|(_, rest)| rest.rsplit_once('"'))
                    .map_or("", |(l, _)| l);
                sa.graph_mut().add_node(label, kind);
            }
            Some("edge") => {
                let from = parse_id(parts.next())?;
                expect_arrow(parts.next())?;
                let to = parse_id(parts.next())?;
                let kind = parse_edge_kind(parts.next())?;
                sa.graph_mut().add_edge(from, to, kind)?;
            }
            Some("require") => {
                let auth = parse_id(parts.next())?;
                expect_arrow(parts.next())?;
                let prot = parse_id(parts.next())?;
                sa.require(auth, prot)?;
            }
            _ => return Err(TsgError::UnknownNode(NodeId::from_index(0))),
        }
    }
    Ok(sa)
}

fn kind_token(kind: NodeKind) -> String {
    match kind {
        NodeKind::Authorization => "authorization".to_owned(),
        NodeKind::SecretAccess(src) => format!("access:{}", source_token(src)),
        NodeKind::UseSecret => "use".to_owned(),
        NodeKind::Send => "send".to_owned(),
        NodeKind::Receive => "receive".to_owned(),
        NodeKind::Setup => "setup".to_owned(),
        NodeKind::Resolution => "resolution".to_owned(),
        NodeKind::Compute => "compute".to_owned(),
    }
}

fn source_token(src: SecretSource) -> &'static str {
    match src {
        SecretSource::Memory => "memory",
        SecretSource::Cache => "cache",
        SecretSource::LineFillBuffer => "lfb",
        SecretSource::StoreBuffer => "sb",
        SecretSource::LoadPort => "port",
        SecretSource::SpecialRegister => "msr",
        SecretSource::Fpu => "fpu",
        SecretSource::ArchitecturalMemory => "arch",
    }
}

fn bad_line() -> TsgError {
    TsgError::UnknownNode(NodeId::from_index(u32::MAX as usize))
}

fn parse_id(tok: Option<&str>) -> Result<NodeId, TsgError> {
    let t = tok.ok_or_else(bad_line)?;
    let body = t.strip_prefix('n').ok_or_else(bad_line)?;
    let idx: usize = body.parse().map_err(|_| bad_line())?;
    Ok(NodeId::from_index(idx))
}

fn expect_arrow(tok: Option<&str>) -> Result<(), TsgError> {
    if tok == Some("->") {
        Ok(())
    } else {
        Err(bad_line())
    }
}

fn parse_kind(tok: Option<&str>) -> Result<NodeKind, TsgError> {
    let t = tok.ok_or_else(bad_line)?;
    Ok(match t {
        "authorization" => NodeKind::Authorization,
        "use" => NodeKind::UseSecret,
        "send" => NodeKind::Send,
        "receive" => NodeKind::Receive,
        "setup" => NodeKind::Setup,
        "resolution" => NodeKind::Resolution,
        "compute" => NodeKind::Compute,
        other => {
            let src = other.strip_prefix("access:").ok_or_else(bad_line)?;
            NodeKind::SecretAccess(match src {
                "memory" => SecretSource::Memory,
                "cache" => SecretSource::Cache,
                "lfb" => SecretSource::LineFillBuffer,
                "sb" => SecretSource::StoreBuffer,
                "port" => SecretSource::LoadPort,
                "msr" => SecretSource::SpecialRegister,
                "fpu" => SecretSource::Fpu,
                "arch" => SecretSource::ArchitecturalMemory,
                _ => return Err(bad_line()),
            })
        }
    })
}

fn parse_edge_kind(tok: Option<&str>) -> Result<EdgeKind, TsgError> {
    Ok(match tok.ok_or_else(bad_line)? {
        "data" => EdgeKind::Data,
        "control" => EdgeKind::Control,
        "address" => EdgeKind::Address,
        "fence" => EdgeKind::Fence,
        "security" => EdgeKind::Security,
        "program" => EdgeKind::Program,
        _ => return Err(bad_line()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SecurityAnalysis {
        let mut sa = SecurityAnalysis::new();
        let g = sa.graph_mut();
        let auth = g.add_node("Branch resolution", NodeKind::Authorization);
        let acc = g.add_node(
            "Load \"S\"",
            NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
        );
        let send = g.add_node("Load R to Cache", NodeKind::Send);
        g.add_edge(acc, send, EdgeKind::Data).unwrap();
        g.add_edge(auth, send, EdgeKind::Security).unwrap();
        sa.require(auth, acc).unwrap();
        sa.require(auth, send).unwrap();
        sa
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sa = sample();
        let text = to_text(&sa);
        let sa2 = from_text(&text).unwrap();
        assert_eq!(sa2.graph().node_count(), sa.graph().node_count());
        assert_eq!(sa2.graph().edge_count(), sa.graph().edge_count());
        assert_eq!(sa2.requirements(), sa.requirements());
        // The analysis verdict survives the round trip.
        assert_eq!(
            sa.vulnerabilities().unwrap().len(),
            sa2.vulnerabilities().unwrap().len()
        );
        // Kinds survive too.
        for (a, b) in sa.graph().nodes().zip(sa2.graph().nodes()) {
            assert_eq!(a.kind(), b.kind());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sa = from_text("# header\n\nnode n0 compute \"x\"\n").unwrap();
        assert_eq!(sa.graph().node_count(), 1);
    }

    #[test]
    fn quotes_in_labels_are_sanitized() {
        let text = to_text(&sample());
        assert!(text.contains("Load 'S'"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_text("bogus n0").is_err());
        assert!(from_text("node x0 compute \"a\"").is_err());
        assert!(
            from_text("node n1 compute \"a\"").is_err(),
            "ids must be dense"
        );
        assert!(from_text("node n0 wat \"a\"").is_err());
        assert!(from_text("node n0 compute \"a\"\nedge n0 -> n9 data").is_err());
        assert!(from_text("node n0 compute \"a\"\nedge n0 <- n0 data").is_err());
    }

    #[test]
    fn every_catalog_graph_roundtrips() {
        // Full-system property: the serializer handles every figure.
        let sa = SecurityAnalysis::from_graph(crate::examples::fig2());
        let sa2 = from_text(&to_text(&sa)).unwrap();
        assert_eq!(sa2.graph().node_count(), sa.graph().node_count());
        assert_eq!(sa2.graph().edge_count(), sa.graph().edge_count());
    }
}
