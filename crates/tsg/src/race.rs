//! Race conditions and Theorem 1.
//!
//! The paper defines: *a race condition exists between vertices `u` and `v`
//! iff there are two valid orderings that disagree on their relative order*,
//! and proves (**Theorem 1**, Appendix A): *`u` and `v` are race-free iff a
//! directed path connects them (in either direction)*.
//!
//! [`Tsg::has_race`] implements the efficient reachability form;
//! [`Tsg::has_race_by_enumeration`] implements the definition literally (for
//! small graphs) and serves as the oracle in the crate's property tests.

use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::NodeId;
use std::fmt;

/// An unordered pair of vertices that race (no path connects them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RacePair {
    /// The lower-id endpoint.
    pub a: NodeId,
    /// The higher-id endpoint.
    pub b: NodeId,
}

impl RacePair {
    /// Creates a normalized pair (`a` is always the lower id).
    #[must_use]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        if u <= v {
            RacePair { a: u, b: v }
        } else {
            RacePair { a: v, b: u }
        }
    }
}

impl fmt::Display for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race({}, {})", self.a, self.b)
    }
}

impl Tsg {
    /// Whether `u` and `v` race, by **Theorem 1**: they race iff *no*
    /// directed path connects them in either direction.
    ///
    /// Answered from the graph's cached
    /// [`ReachabilityIndex`](crate::ReachabilityIndex): the first query
    /// after a mutation builds the closure (`O(V·E/64)`); every further
    /// query is `O(1)`.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either id is not in this graph.
    ///
    /// ```
    /// use tsg::{Tsg, NodeKind, EdgeKind};
    /// # fn main() -> Result<(), tsg::TsgError> {
    /// let mut g = Tsg::new();
    /// let u = g.add_node("u", NodeKind::Compute);
    /// let v = g.add_node("v", NodeKind::Compute);
    /// assert!(g.has_race(u, v)?);
    /// g.add_edge(u, v, EdgeKind::Data)?;
    /// assert!(!g.has_race(u, v)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn has_race(&self, u: NodeId, v: NodeId) -> Result<bool, TsgError> {
        self.check_node(u)?;
        self.check_node(v)?;
        Ok(self.reachability().races(u, v))
    }

    /// [`Tsg::has_race`] answered by two fresh DFS walks, bypassing the
    /// reachability index.
    ///
    /// This is the seed implementation, kept as the baseline the criterion
    /// benches compare the indexed path against, and as an independent
    /// cross-check in tests.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either id is not in this graph.
    pub fn has_race_dfs(&self, u: NodeId, v: NodeId) -> Result<bool, TsgError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        Ok(!self.reaches(u, v) && !self.reaches(v, u))
    }

    /// Whether `u` and `v` race, by the paper's *definition*: enumerate all
    /// valid orderings and look for two that disagree.
    ///
    /// Exponential; only usable on small graphs. This is the oracle used to
    /// validate [`Tsg::has_race`] (Theorem 1) in tests.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] for unknown ids;
    /// [`TsgError::TooLargeToEnumerate`] if the graph exceeds `limit` nodes.
    pub fn has_race_by_enumeration(
        &self,
        u: NodeId,
        v: NodeId,
        limit: usize,
    ) -> Result<bool, TsgError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        let orderings = self.valid_orderings(limit)?;
        let mut saw_uv = false;
        let mut saw_vu = false;
        for o in &orderings {
            let pu = o.iter().position(|&n| n == u).expect("u in ordering");
            let pv = o.iter().position(|&n| n == v).expect("v in ordering");
            if pu < pv {
                saw_uv = true;
            } else {
                saw_vu = true;
            }
            if saw_uv && saw_vu {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// All racing pairs in the graph.
    ///
    /// One cached closure build plus an `O(V²)` pair scan of `O(1)`
    /// probes.
    #[must_use]
    pub fn all_races(&self) -> Vec<RacePair> {
        let idx = self.reachability();
        let n = self.node_count();
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                if idx.races(u, v) {
                    out.push(RacePair::new(u, v));
                }
            }
        }
        out
    }

    /// The racing pairs among a restricted set of vertices of interest.
    ///
    /// One cached closure build plus `O(K²)` probes for `K` vertices of
    /// interest — the seed paid two DFS walks per pair.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if any id is not in this graph.
    pub fn races_among(&self, nodes: &[NodeId]) -> Result<Vec<RacePair>, TsgError> {
        for &n in nodes {
            self.check_node(n)?;
        }
        let idx = self.reachability();
        let mut out = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if idx.races(u, v) {
                    out.push(RacePair::new(u, v));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, NodeKind};

    #[test]
    fn no_race_with_self() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        assert!(!g.has_race(a, a).unwrap());
    }

    #[test]
    fn disconnected_pair_races() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        assert!(g.has_race(a, b).unwrap());
        assert!(g.has_race_by_enumeration(a, b, 12).unwrap());
        assert_eq!(g.all_races(), vec![RacePair::new(a, b)]);
    }

    #[test]
    fn connected_pair_does_not_race() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        assert!(!g.has_race(a, b).unwrap());
        assert!(!g.has_race(b, a).unwrap());
        assert!(!g.has_race_by_enumeration(a, b, 12).unwrap());
        assert!(g.all_races().is_empty());
    }

    #[test]
    fn transitive_connection_kills_race() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(b, c, EdgeKind::Data).unwrap();
        assert!(!g.has_race(a, c).unwrap());
    }

    #[test]
    fn paper_fig2_race_between_d_and_e() {
        // Figure 2 of the paper: race(D, E) holds.
        let g = crate::examples::fig2();
        let d = g.find_by_label("D").unwrap();
        let e = g.find_by_label("E").unwrap();
        assert!(g.has_race(d, e).unwrap());
        assert!(g.has_race_by_enumeration(d, e, 12).unwrap());
    }

    #[test]
    fn all_races_matches_pairwise_check() {
        let g = crate::examples::fig2();
        let brute: Vec<RacePair> = {
            let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
            let mut v = Vec::new();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if g.has_race(a, b).unwrap() {
                        v.push(RacePair::new(a, b));
                    }
                }
            }
            v
        };
        assert_eq!(g.all_races(), brute);
    }

    #[test]
    fn races_among_subset() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Authorization);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::SecretAccess(crate::SecretSource::Memory));
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        let races = g.races_among(&[a, c]).unwrap();
        assert_eq!(races, vec![RacePair::new(a, c)]);
    }

    #[test]
    fn race_pair_normalizes() {
        let p1 = RacePair::new(NodeId(5), NodeId(2));
        let p2 = RacePair::new(NodeId(2), NodeId(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.a, NodeId(2));
        assert_eq!(p1.to_string(), "race(n2, n5)");
    }

    #[test]
    fn unknown_node_rejected() {
        let g = Tsg::new();
        assert!(g.has_race(NodeId(0), NodeId(1)).is_err());
        assert!(g.has_race_dfs(NodeId(0), NodeId(1)).is_err());
        assert!(g.races_among(&[NodeId(0)]).is_err());
    }

    #[test]
    fn indexed_and_dfs_verdicts_agree() {
        let g = crate::examples::fig2();
        let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
        for &u in &ids {
            for &v in &ids {
                assert_eq!(g.has_race(u, v).unwrap(), g.has_race_dfs(u, v).unwrap());
            }
        }
    }

    #[test]
    fn mutation_after_query_invalidates_the_index() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        // Query first so the closure is built and cached…
        assert!(g.has_race(a, b).unwrap());
        // …then mutate: the stale index must not answer the next query.
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        assert!(!g.has_race(a, b).unwrap());
        // add_node invalidates too: a fresh node races with everything.
        let c = g.add_node("c", NodeKind::Compute);
        assert!(g.has_race(a, c).unwrap());
        assert!(g.has_race(b, c).unwrap());
        // strip_edges invalidates: removing the edge restores the race.
        g.strip_edges(EdgeKind::Data);
        assert!(g.has_race(a, b).unwrap());
    }
}
