//! Race conditions and Theorem 1.
//!
//! The paper defines: *a race condition exists between vertices `u` and `v`
//! iff there are two valid orderings that disagree on their relative order*,
//! and proves (**Theorem 1**, Appendix A): *`u` and `v` are race-free iff a
//! directed path connects them (in either direction)*.
//!
//! [`Tsg::has_race`] implements the efficient reachability form;
//! [`Tsg::has_race_by_enumeration`] implements the definition literally (for
//! small graphs) and serves as the oracle in the crate's property tests.

use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::NodeId;
use std::fmt;

/// An unordered pair of vertices that race (no path connects them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RacePair {
    /// The lower-id endpoint.
    pub a: NodeId,
    /// The higher-id endpoint.
    pub b: NodeId,
}

impl RacePair {
    /// Creates a normalized pair (`a` is always the lower id).
    #[must_use]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        if u <= v {
            RacePair { a: u, b: v }
        } else {
            RacePair { a: v, b: u }
        }
    }
}

impl fmt::Display for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race({}, {})", self.a, self.b)
    }
}

impl Tsg {
    /// Whether `u` and `v` race, by **Theorem 1**: they race iff *no*
    /// directed path connects them in either direction.
    ///
    /// `O(V + E)` via two DFS reachability queries.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either id is not in this graph.
    ///
    /// ```
    /// use tsg::{Tsg, NodeKind, EdgeKind};
    /// # fn main() -> Result<(), tsg::TsgError> {
    /// let mut g = Tsg::new();
    /// let u = g.add_node("u", NodeKind::Compute);
    /// let v = g.add_node("v", NodeKind::Compute);
    /// assert!(g.has_race(u, v)?);
    /// g.add_edge(u, v, EdgeKind::Data)?;
    /// assert!(!g.has_race(u, v)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn has_race(&self, u: NodeId, v: NodeId) -> Result<bool, TsgError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        Ok(!self.reaches(u, v) && !self.reaches(v, u))
    }

    /// Whether `u` and `v` race, by the paper's *definition*: enumerate all
    /// valid orderings and look for two that disagree.
    ///
    /// Exponential; only usable on small graphs. This is the oracle used to
    /// validate [`Tsg::has_race`] (Theorem 1) in tests.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] for unknown ids;
    /// [`TsgError::TooLargeToEnumerate`] if the graph exceeds `limit` nodes.
    pub fn has_race_by_enumeration(
        &self,
        u: NodeId,
        v: NodeId,
        limit: usize,
    ) -> Result<bool, TsgError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        let orderings = self.valid_orderings(limit)?;
        let mut saw_uv = false;
        let mut saw_vu = false;
        for o in &orderings {
            let pu = o.iter().position(|&n| n == u).expect("u in ordering");
            let pv = o.iter().position(|&n| n == v).expect("v in ordering");
            if pu < pv {
                saw_uv = true;
            } else {
                saw_vu = true;
            }
            if saw_uv && saw_vu {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// All racing pairs in the graph.
    ///
    /// Computes, for every vertex, its descendant set, then reports each
    /// unordered pair connected in neither direction. `O(V · (V + E))`.
    #[must_use]
    pub fn all_races(&self) -> Vec<RacePair> {
        let n = self.node_count();
        // reach[u] = bitset of vertices reachable from u (including u).
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        // Process in reverse topological order so successors are done first.
        let topo = self.topological_sort();
        for &u in topo.iter().rev() {
            let ui = u.index();
            reach[ui][ui / 64] |= 1 << (ui % 64);
            let succs: Vec<usize> = self
                .successors(u)
                .expect("node exists")
                .map(|e| e.to().index())
                .collect();
            for s in succs {
                // reach[u] |= reach[s]; split borrows via split_at_mut.
                let (a, b) = if ui < s {
                    let (lo, hi) = reach.split_at_mut(s);
                    (&mut lo[ui], &hi[0])
                } else {
                    let (lo, hi) = reach.split_at_mut(ui);
                    (&mut hi[0], &lo[s])
                };
                for w in 0..words {
                    a[w] |= b[w];
                }
            }
        }
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let u_reaches_v = reach[u][v / 64] & (1 << (v % 64)) != 0;
                let v_reaches_u = reach[v][u / 64] & (1 << (u % 64)) != 0;
                if !u_reaches_v && !v_reaches_u {
                    out.push(RacePair::new(NodeId(u as u32), NodeId(v as u32)));
                }
            }
        }
        out
    }

    /// The racing pairs among a restricted set of vertices of interest.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if any id is not in this graph.
    pub fn races_among(&self, nodes: &[NodeId]) -> Result<Vec<RacePair>, TsgError> {
        for &n in nodes {
            self.check_node(n)?;
        }
        let mut out = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if self.has_race(u, v)? {
                    out.push(RacePair::new(u, v));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, NodeKind};

    #[test]
    fn no_race_with_self() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        assert!(!g.has_race(a, a).unwrap());
    }

    #[test]
    fn disconnected_pair_races() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        assert!(g.has_race(a, b).unwrap());
        assert!(g.has_race_by_enumeration(a, b, 12).unwrap());
        assert_eq!(g.all_races(), vec![RacePair::new(a, b)]);
    }

    #[test]
    fn connected_pair_does_not_race() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        assert!(!g.has_race(a, b).unwrap());
        assert!(!g.has_race(b, a).unwrap());
        assert!(!g.has_race_by_enumeration(a, b, 12).unwrap());
        assert!(g.all_races().is_empty());
    }

    #[test]
    fn transitive_connection_kills_race() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(b, c, EdgeKind::Data).unwrap();
        assert!(!g.has_race(a, c).unwrap());
    }

    #[test]
    fn paper_fig2_race_between_d_and_e() {
        // Figure 2 of the paper: race(D, E) holds.
        let g = crate::examples::fig2();
        let d = g.find_by_label("D").unwrap();
        let e = g.find_by_label("E").unwrap();
        assert!(g.has_race(d, e).unwrap());
        assert!(g.has_race_by_enumeration(d, e, 12).unwrap());
    }

    #[test]
    fn all_races_matches_pairwise_check() {
        let g = crate::examples::fig2();
        let brute: Vec<RacePair> = {
            let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
            let mut v = Vec::new();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if g.has_race(a, b).unwrap() {
                        v.push(RacePair::new(a, b));
                    }
                }
            }
            v
        };
        assert_eq!(g.all_races(), brute);
    }

    #[test]
    fn races_among_subset() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Authorization);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::SecretAccess(crate::SecretSource::Memory));
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        let races = g.races_among(&[a, c]).unwrap();
        assert_eq!(races, vec![RacePair::new(a, c)]);
    }

    #[test]
    fn race_pair_normalizes() {
        let p1 = RacePair::new(NodeId(5), NodeId(2));
        let p2 = RacePair::new(NodeId(2), NodeId(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.a, NodeId(2));
        assert_eq!(p1.to_string(), "race(n2, n5)");
    }

    #[test]
    fn unknown_node_rejected() {
        let g = Tsg::new();
        assert!(g.has_race(NodeId(0), NodeId(1)).is_err());
        assert!(g.races_among(&[NodeId(0)]).is_err());
    }
}
