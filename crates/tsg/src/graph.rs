//! The Topological Sort Graph itself.

use crate::edge::{Edge, EdgeId, EdgeKind};
use crate::error::TsgError;
use crate::node::{Node, NodeId, NodeKind};
use crate::reach::ReachabilityIndex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

/// A Topological Sort Graph: a DAG of operations and dependencies.
///
/// This is the paper's attack-graph representation (§IV-B). Vertices are
/// operations; a directed edge `u → v` means the machine guarantees `u`
/// completes before `v`. Orderings of all vertices that respect every edge
/// are *valid orderings*; two vertices *race* when valid orderings disagree
/// on their relative order, and by **Theorem 1** that happens exactly when
/// neither can reach the other.
///
/// The graph rejects edge insertions that would create a cycle, so it is a
/// DAG by construction.
///
/// ```
/// use tsg::{Tsg, NodeKind, EdgeKind};
/// # fn main() -> Result<(), tsg::TsgError> {
/// let mut g = Tsg::new();
/// let a = g.add_node("A", NodeKind::Compute);
/// let b = g.add_node("B", NodeKind::Compute);
/// let c = g.add_node("C", NodeKind::Compute);
/// g.add_edge(a, b, EdgeKind::Data)?;
/// g.add_edge(b, c, EdgeKind::Data)?;
/// assert!(g.has_path(a, c)?);           // transitive reachability
/// assert!(g.add_edge(c, a, EdgeKind::Data).is_err()); // cycle rejected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tsg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing adjacency: `succ[u]` lists edge indices leaving `u`.
    succ: Vec<Vec<u32>>,
    /// Incoming adjacency: `pred[v]` lists edge indices entering `v`.
    pred: Vec<Vec<u32>>,
    /// Lazily built transitive closure. Two-tier maintenance: an edge
    /// insertion into an already-built index updates it in place
    /// ([`ReachabilityIndex::insert_edge`]); node additions and
    /// [`Tsg::strip_edges`] clear it and the next query pays a full
    /// rebuild.
    reach: OnceLock<ReachabilityIndex>,
}

/// A restore point for [`Tsg::rollback`]: the graph's size at
/// [`Tsg::checkpoint`] time plus a snapshot of its transitive closure (if
/// one was built). The patch-heavy loops — campaign graph verdicts, the
/// defense-cover search — apply candidate security-edge sets on top of a
/// checkpoint and roll back per candidate instead of cloning and
/// re-indexing the graph every time.
#[derive(Debug, Clone)]
pub struct TsgCheckpoint {
    nodes: usize,
    edges: usize,
    reach: Option<ReachabilityIndex>,
}

impl Tsg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with preallocated capacity.
    #[must_use]
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Tsg {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            succ: Vec::with_capacity(nodes),
            pred: Vec::with_capacity(nodes),
            reach: OnceLock::new(),
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an operation vertex and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>, kind: NodeKind) -> NodeId {
        // Node additions take the full-rebuild tier of the cache: the row
        // layout changes, so the cached closure is dropped rather than
        // patched (edge insertions are the incrementally maintained tier).
        self.reach.take();
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits in u32"));
        self.nodes.push(Node {
            id,
            label: label.into(),
            kind,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a dependency edge `from → to` of the given kind.
    ///
    /// Parallel edges of different kinds are allowed (e.g. a data dependency
    /// that is *also* declared a security dependency); an exact duplicate
    /// (same endpoints and kind) is silently deduplicated and the existing
    /// edge id is returned.
    ///
    /// # Errors
    ///
    /// * [`TsgError::UnknownNode`] if either endpoint does not exist.
    /// * [`TsgError::SelfLoop`] if `from == to`.
    /// * [`TsgError::WouldCycle`] if the edge would create a directed cycle.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: EdgeKind,
    ) -> Result<EdgeId, TsgError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(TsgError::SelfLoop(from));
        }
        if let Some(existing) = self.succ[from.index()]
            .iter()
            .map(|&ei| &self.edges[ei as usize])
            .find(|e| e.to == to && e.kind == kind)
        {
            return Ok(existing.id);
        }
        // Cycle check: the new edge closes a cycle iff `to` already reaches
        // `from` — an O(1) probe when the closure is cached, a DFS otherwise.
        let would_cycle = match self.reach.get() {
            Some(idx) => idx.reaches(to, from),
            None => self.reaches(to, from),
        };
        if would_cycle {
            return Err(TsgError::WouldCycle { from, to });
        }
        // Keep the cached closure *live*: fold the edge in incrementally
        // instead of discarding the index and rebuilding on the next query.
        if let Some(idx) = self.reach.get_mut() {
            idx.insert_edge(from, to);
        }
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count fits in u32"));
        self.edges.push(Edge { id, from, to, kind });
        self.succ[from.index()].push(id.0);
        self.pred[to.index()].push(id.0);
        Ok(id)
    }

    /// Captures a restore point: the current node/edge counts plus a
    /// snapshot of the cached transitive closure (if built). Pair with
    /// [`Tsg::rollback`] to undo a batch of [`Tsg::add_node`] /
    /// [`Tsg::add_edge`] mutations cheaply. To make the later rollbacks
    /// restore a *warm* cache, query the graph (e.g.
    /// [`Tsg::reachability`]) before checkpointing.
    #[must_use]
    pub fn checkpoint(&self) -> TsgCheckpoint {
        TsgCheckpoint {
            nodes: self.nodes.len(),
            edges: self.edges.len(),
            reach: self.reach.get().cloned(),
        }
    }

    /// Restores the graph to a [`Tsg::checkpoint`]: nodes and edges added
    /// since are removed, and the checkpoint's closure snapshot (if any)
    /// becomes the cached index again — so a patch/rollback cycle never
    /// pays a closure rebuild.
    ///
    /// Only growth is undoable: the graph must not have been through
    /// [`Tsg::strip_edges`] since the checkpoint (edge ids are renumbered
    /// there, so the checkpoint no longer describes a prefix).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is newer than the graph (more nodes or
    /// edges than currently present); debug builds additionally catch a
    /// checkpoint invalidated by `strip_edges`.
    pub fn rollback(&mut self, cp: &TsgCheckpoint) {
        assert!(
            cp.nodes <= self.nodes.len() && cp.edges <= self.edges.len(),
            "checkpoint is newer than the graph"
        );
        // Edges are append-only between checkpoint and rollback, so each
        // endpoint's adjacency entries for removed edges form a suffix.
        for k in (cp.edges..self.edges.len()).rev() {
            let e = self.edges[k];
            let out = self.succ[e.from.index()].pop();
            debug_assert_eq!(out, Some(e.id.0), "graph stripped since checkpoint");
            let inc = self.pred[e.to.index()].pop();
            debug_assert_eq!(inc, Some(e.id.0), "graph stripped since checkpoint");
        }
        self.edges.truncate(cp.edges);
        self.nodes.truncate(cp.nodes);
        self.succ.truncate(cp.nodes);
        self.pred.truncate(cp.nodes);
        self.reach = OnceLock::new();
        if let Some(idx) = &cp.reach {
            let _ = self.reach.set(idx.clone());
        }
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if the id is not in this graph.
    pub fn node(&self, id: NodeId) -> Result<&Node, TsgError> {
        self.nodes.get(id.index()).ok_or(TsgError::UnknownNode(id))
    }

    /// Looks up an edge by id. Returns `None` if out of range.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index())
    }

    /// Iterates over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter()
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterates over the direct successors of `id` (with the connecting edge).
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if the id is not in this graph.
    pub fn successors(&self, id: NodeId) -> Result<impl Iterator<Item = &Edge> + '_, TsgError> {
        self.check_node(id)?;
        Ok(self.succ[id.index()]
            .iter()
            .map(move |&ei| &self.edges[ei as usize]))
    }

    /// Iterates over the direct predecessors of `id` (with the connecting edge).
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if the id is not in this graph.
    pub fn predecessors(&self, id: NodeId) -> Result<impl Iterator<Item = &Edge> + '_, TsgError> {
        self.check_node(id)?;
        Ok(self.pred[id.index()]
            .iter()
            .map(move |&ei| &self.edges[ei as usize]))
    }

    /// Returns the first node whose label equals `label`, if any.
    #[must_use]
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.label == label).map(|n| n.id)
    }

    /// Returns all nodes of the given kind.
    #[must_use]
    pub fn nodes_of_kind(&self, pred: impl Fn(NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| pred(n.kind))
            .map(|n| n.id)
            .collect()
    }

    /// Whether a directed path (length ≥ 1, or 0 when `from == to`) exists
    /// from `from` to `to`.
    ///
    /// Answered from the cached [`ReachabilityIndex`]: the first query
    /// after a mutation pays the `O(V·E/64)` closure build, every further
    /// query is `O(1)`.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either id is not in this graph.
    pub fn has_path(&self, from: NodeId, to: NodeId) -> Result<bool, TsgError> {
        self.check_node(from)?;
        self.check_node(to)?;
        Ok(self.reachability().reaches(from, to))
    }

    /// The graph's transitive closure, built on first use and then kept
    /// current by a two-tier cache: [`Tsg::add_edge`] folds the new edge
    /// into the index in place ([`ReachabilityIndex::insert_edge`]), while
    /// [`Tsg::add_node`] and [`Tsg::strip_edges`] clear it so the next
    /// query pays a full rebuild.
    ///
    /// All query APIs ([`Tsg::has_path`], [`Tsg::has_race`],
    /// [`Tsg::races_among`], [`Tsg::all_races`], the security-dependency
    /// analysis) share this one index; matrix-style workloads that ask many
    /// verdicts of the same graph therefore pay one closure build total —
    /// and patch-heavy workloads that *mutate* between verdicts no longer
    /// pay one rebuild per patch.
    #[must_use]
    pub fn reachability(&self) -> &ReachabilityIndex {
        self.reach.get_or_init(|| ReachabilityIndex::build(self))
    }

    /// Internal unchecked reachability (`from` reaches `to`, reflexive).
    pub(crate) fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(u) = stack.pop() {
            for &ei in &self.succ[u.index()] {
                let v = self.edges[ei as usize].to;
                if v == to {
                    return true;
                }
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// The set of all nodes reachable from `from` (excluding `from` itself),
    /// ascending by id — answered from the cached reachability index's
    /// [`descendants`](crate::ReachabilityIndex::descendants) iterator.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if the id is not in this graph.
    pub fn descendants(&self, from: NodeId) -> Result<Vec<NodeId>, TsgError> {
        self.check_node(from)?;
        Ok(self.reachability().descendants(from).collect())
    }

    /// The set of all nodes that reach `to` (excluding `to` itself).
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if the id is not in this graph.
    pub fn ancestors(&self, to: NodeId) -> Result<Vec<NodeId>, TsgError> {
        self.check_node(to)?;
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![to];
        visited[to.index()] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            for &ei in &self.pred[u.index()] {
                let v = self.edges[ei as usize].from;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    out.push(v);
                    stack.push(v);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// One shortest directed path from `from` to `to` (inclusive), if any.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either id is not in this graph.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Result<Option<Vec<NodeId>>, TsgError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Ok(Some(vec![from]));
        }
        let mut parent: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        visited[from.index()] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.succ[u.index()] {
                let v = self.edges[ei as usize].to;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    if v == to {
                        let mut path = vec![v];
                        let mut cur = u;
                        loop {
                            path.push(cur);
                            match parent[cur.index()] {
                                Some(p) => cur = p,
                                None => break,
                            }
                        }
                        path.reverse();
                        return Ok(Some(path));
                    }
                    queue.push_back(v);
                }
            }
        }
        Ok(None)
    }

    /// A topological ordering of all vertices (Kahn's algorithm).
    ///
    /// Ties are broken by node id, so the result is deterministic. Since the
    /// graph is a DAG by construction, this never fails.
    #[must_use]
    pub fn topological_sort(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        // Min-heap-by-id behaviour via a sorted ready list kept as a binary
        // heap of Reverse(ids).
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ready: BinaryHeap<Reverse<u32>> = (0..n)
            .filter(|&v| indeg[v] == 0)
            .map(|v| Reverse(v as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(u)) = ready.pop() {
            order.push(NodeId(u));
            for &ei in &self.succ[u as usize] {
                let v = self.edges[ei as usize].to;
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(Reverse(v.0));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DAG invariant violated");
        order
    }

    /// A topological ordering with *no* tie-break guarantee: plain Kahn
    /// over a `Vec` work list, skipping [`Tsg::topological_sort`]'s
    /// by-id `BinaryHeap`. The closure build only needs *some* valid
    /// order, and repeated builds in patch-heavy loops were dominated by
    /// the heap's `O(V log V)` ordering.
    pub(crate) fn topo_order_unordered(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut ready: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(NodeId(u));
            for &ei in &self.succ[u as usize] {
                let v = self.edges[ei as usize].to;
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v.0);
                }
            }
        }
        order
    }

    /// The direct-successor node indices of vertex index `u`, straight off
    /// the adjacency list (duplicates possible for parallel edges of
    /// different kinds — harmless for the closure build's ORs).
    pub(crate) fn successor_indices(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ[u]
            .iter()
            .map(move |&ei| self.edges[ei as usize].to.index())
    }

    /// Removes every edge of the given kind, returning how many were removed.
    ///
    /// Useful for ablation: e.g. strip all [`EdgeKind::Security`] edges to
    /// recover the undefended baseline graph.
    pub fn strip_edges(&mut self, kind: EdgeKind) -> usize {
        let keep: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| e.kind != kind)
            .copied()
            .collect();
        let removed = self.edges.len() - keep.len();
        if removed == 0 {
            return 0;
        }
        self.rebuild(keep);
        removed
    }

    fn rebuild(&mut self, kept: Vec<Edge>) {
        self.reach.take();
        self.edges.clear();
        for s in &mut self.succ {
            s.clear();
        }
        for p in &mut self.pred {
            p.clear();
        }
        for (i, mut e) in kept.into_iter().enumerate() {
            e.id = EdgeId(i as u32);
            self.succ[e.from.index()].push(e.id.0);
            self.pred[e.to.index()].push(e.id.0);
            self.edges.push(e);
        }
    }

    pub(crate) fn check_node(&self, id: NodeId) -> Result<(), TsgError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(TsgError::UnknownNode(id))
        }
    }
}

impl fmt::Display for Tsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TSG ({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )?;
        for n in &self.nodes {
            writeln!(f, "  {}: {}", n.id, n)?;
        }
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Tsg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        let d = g.add_node("d", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(a, c, EdgeKind::Data).unwrap();
        g.add_edge(b, d, EdgeKind::Data).unwrap();
        g.add_edge(c, d, EdgeKind::Data).unwrap();
        (g, a, b, c, d)
    }

    #[test]
    fn empty_graph() {
        let g = Tsg::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.topological_sort(), Vec::<NodeId>::new());
    }

    #[test]
    fn reachability_in_diamond() {
        let (g, a, b, c, d) = diamond();
        assert!(g.has_path(a, d).unwrap());
        assert!(g.has_path(a, a).unwrap());
        assert!(!g.has_path(b, c).unwrap());
        assert!(!g.has_path(d, a).unwrap());
        assert_eq!(g.descendants(a).unwrap(), vec![b, c, d]);
        assert_eq!(g.ancestors(d).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn cycle_rejected() {
        let (mut g, a, _, _, d) = diamond();
        let err = g.add_edge(d, a, EdgeKind::Data).unwrap_err();
        assert_eq!(err, TsgError::WouldCycle { from: d, to: a });
        // Graph unchanged.
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        assert_eq!(g.add_edge(a, a, EdgeKind::Data), Err(TsgError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_edge_dedup() {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let e1 = g.add_edge(a, b, EdgeKind::Data).unwrap();
        let e2 = g.add_edge(a, b, EdgeKind::Data).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        // Different kind between same endpoints is a distinct edge.
        let e3 = g.add_edge(a, b, EdgeKind::Security).unwrap();
        assert_ne!(e1, e3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn unknown_node_errors() {
        let g = Tsg::new();
        let ghost = NodeId(9);
        assert_eq!(g.node(ghost).unwrap_err(), TsgError::UnknownNode(ghost));
        assert!(g.has_path(ghost, ghost).is_err());
    }

    #[test]
    fn shortest_path_in_diamond() {
        let (g, a, _, _, d) = diamond();
        let p = g.shortest_path(a, d).unwrap().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], a);
        assert_eq!(p[2], d);
        assert!(g.shortest_path(d, a).unwrap().is_none());
        assert_eq!(g.shortest_path(a, a).unwrap().unwrap(), vec![a]);
    }

    #[test]
    fn topological_sort_respects_edges() {
        let (g, _, _, _, _) = diamond();
        let order = g.topological_sort();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|n| n.index() == i).unwrap())
            .collect();
        for e in g.edges() {
            assert!(pos[e.from().index()] < pos[e.to().index()]);
        }
    }

    #[test]
    fn strip_security_edges() {
        let (mut g, a, b, _, d) = diamond();
        g.add_edge(b, d, EdgeKind::Security).unwrap();
        g.add_edge(a, d, EdgeKind::Security).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.strip_edges(EdgeKind::Security), 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.strip_edges(EdgeKind::Security), 0);
        // Edge ids were compacted.
        for (i, e) in g.edges().enumerate() {
            assert_eq!(e.id().index(), i);
        }
    }

    #[test]
    fn find_by_label_and_kinds() {
        let mut g = Tsg::new();
        let auth = g.add_node("bounds check", NodeKind::Authorization);
        g.add_node("x", NodeKind::Compute);
        assert_eq!(g.find_by_label("bounds check"), Some(auth));
        assert_eq!(g.find_by_label("nope"), None);
        assert_eq!(g.nodes_of_kind(NodeKind::is_authorization), vec![auth]);
    }

    #[test]
    fn display_lists_everything() {
        let (g, ..) = diamond();
        let s = g.to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("4 edges"));
        assert!(s.contains("-[data]->"));
    }

    #[test]
    fn add_edge_keeps_cached_closure_live() {
        let (mut g, a, b, c, d) = diamond();
        assert!(!g.has_path(b, c).unwrap()); // closure built and cached here
        g.add_edge(b, c, EdgeKind::Security).unwrap();
        // The maintained index equals a from-scratch build…
        assert_eq!(*g.reachability(), ReachabilityIndex::build(&g));
        // …and answers the new transitive facts.
        assert!(g.has_path(b, c).unwrap());
        assert!(g.has_path(a, d).unwrap());
        assert!(g.add_edge(d, a, EdgeKind::Data).is_err()); // cycle check via index
    }

    #[test]
    fn rollback_restores_graph_and_warm_index() {
        let (mut g, a, b, c, d) = diamond();
        let _ = g.reachability(); // warm the cache so the checkpoint carries it
        let cp = g.checkpoint();
        let before = g.reachability().clone();

        let e = g.add_node("e", NodeKind::Compute);
        g.add_edge(b, c, EdgeKind::Security).unwrap();
        g.add_edge(d, e, EdgeKind::Data).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);

        g.rollback(&cp);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.reachability(), before);
        assert!(!g.has_path(b, c).unwrap());
        // Adjacency lists were unwound too: the graph accepts the same
        // mutations again and behaves identically.
        g.add_edge(b, c, EdgeKind::Security).unwrap();
        assert!(g.has_path(a, c).unwrap());
        assert_eq!(*g.reachability(), ReachabilityIndex::build(&g));
    }

    #[test]
    fn rollback_without_cached_index_leaves_cache_cold() {
        let (mut g, _, b, c, _) = diamond();
        let cp = g.checkpoint(); // no closure built yet
        g.add_edge(b, c, EdgeKind::Security).unwrap();
        g.rollback(&cp);
        assert_eq!(g.edge_count(), 4);
        // Queries still work (lazy rebuild) and agree with a fresh build.
        assert!(!g.has_path(b, c).unwrap());
        assert_eq!(*g.reachability(), ReachabilityIndex::build(&g));
    }

    #[test]
    #[should_panic(expected = "checkpoint is newer")]
    fn rollback_rejects_newer_checkpoint() {
        let (mut g, _, b, c, _) = diamond();
        g.add_edge(b, c, EdgeKind::Security).unwrap();
        let cp = g.checkpoint();
        let mut older = diamond().0;
        older.rollback(&cp);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, a, b, c, d) = diamond();
        let succ_a: Vec<NodeId> = g.successors(a).unwrap().map(Edge::to).collect();
        assert_eq!(succ_a, vec![b, c]);
        let pred_d: Vec<NodeId> = g.predecessors(d).unwrap().map(Edge::from).collect();
        assert_eq!(pred_d, vec![b, c]);
    }
}
