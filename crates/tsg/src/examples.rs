//! Canonical graphs from the paper usable in tests and demos.

use crate::edge::EdgeKind;
use crate::graph::Tsg;
use crate::node::NodeKind;

/// The example TSG of **Figure 2** of the paper.
///
/// Seven vertices `A..G` with edges
/// `A→B, A→C, B→D, C→D, C→E, D→F, E→F, F→G`.
///
/// The paper observes: `S = [A,B,C,D,E,F,G]` and `S' = [A,C,E,B,D,F,G]` are
/// valid orderings, `S'' = [A,B,D,E,C,F,G]` is not, and `D` and `E` race.
///
/// ```
/// let g = tsg::examples::fig2();
/// let d = g.find_by_label("D").unwrap();
/// let e = g.find_by_label("E").unwrap();
/// assert!(g.has_race(d, e).unwrap());
/// ```
#[must_use]
pub fn fig2() -> Tsg {
    let mut g = Tsg::new();
    let a = g.add_node("A", NodeKind::Compute);
    let b = g.add_node("B", NodeKind::Compute);
    let c = g.add_node("C", NodeKind::Compute);
    let d = g.add_node("D", NodeKind::Compute);
    let e = g.add_node("E", NodeKind::Compute);
    let f = g.add_node("F", NodeKind::Compute);
    let gg = g.add_node("G", NodeKind::Compute);
    for (u, v) in [
        (a, b),
        (a, c),
        (b, d),
        (c, d),
        (c, e),
        (d, f),
        (e, f),
        (f, gg),
    ] {
        g.add_edge(u, v, EdgeKind::Program)
            .expect("fig2 is acyclic");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ids(g: &Tsg, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| g.find_by_label(l).expect("label exists"))
            .collect()
    }

    #[test]
    fn fig2_orderings_match_paper() {
        let g = fig2();
        let s = ids(&g, &["A", "B", "C", "D", "E", "F", "G"]);
        let s_prime = ids(&g, &["A", "C", "E", "B", "D", "F", "G"]);
        let s_double = ids(&g, &["A", "B", "D", "E", "C", "F", "G"]);
        assert!(g.is_valid_ordering(&s).unwrap(), "S is valid");
        assert!(g.is_valid_ordering(&s_prime).unwrap(), "S' is valid");
        assert!(!g.is_valid_ordering(&s_double).unwrap(), "S'' is invalid");
    }

    #[test]
    fn fig2_race_d_e_is_witnessed_by_the_two_orderings() {
        let g = fig2();
        let [d, e] = [g.find_by_label("D").unwrap(), g.find_by_label("E").unwrap()];
        assert!(g.has_race(d, e).unwrap());
        // And also B/E, B/C, D/E... verify D,E via enumeration oracle.
        assert!(g.has_race_by_enumeration(d, e, 12).unwrap());
    }

    #[test]
    fn fig2_shape() {
        let g = fig2();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 8);
    }
}
