//! Valid orderings (linear extensions) of a TSG.
//!
//! The paper defines a *valid ordering* of a TSG as a permutation of all
//! vertices such that for every edge `(u, v)`, `u` comes before `v`
//! (§IV-B). The set of valid orderings is the set of linear extensions of
//! the DAG's partial order. Exhaustive enumeration is exponential in general
//! and is provided only for small graphs — it is the *oracle* against which
//! the reachability-based race test of Theorem 1 is verified in tests.

use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::NodeId;

/// Default node-count limit for exhaustive enumeration.
pub const ENUMERATION_LIMIT: usize = 12;

impl Tsg {
    /// Checks whether `ordering` is a valid ordering (linear extension):
    /// it contains every vertex exactly once, and every edge points forward.
    ///
    /// # Errors
    ///
    /// [`TsgError::MalformedOrdering`] if the ordering's length differs from
    /// the number of vertices, and [`TsgError::UnknownNode`] if it mentions a
    /// vertex that is not in the graph.
    pub fn is_valid_ordering(&self, ordering: &[NodeId]) -> Result<bool, TsgError> {
        if ordering.len() != self.node_count() {
            return Err(TsgError::MalformedOrdering {
                expected: self.node_count(),
                got: ordering.len(),
            });
        }
        let mut pos = vec![usize::MAX; self.node_count()];
        for (i, &n) in ordering.iter().enumerate() {
            self.check_node(n)?;
            if pos[n.index()] != usize::MAX {
                // Duplicate vertex ⇒ some other vertex is missing.
                return Ok(false);
            }
            pos[n.index()] = i;
        }
        Ok(self
            .edges()
            .all(|e| pos[e.from().index()] < pos[e.to().index()]))
    }

    /// Exhaustively enumerates **all** valid orderings.
    ///
    /// This is exponential; it refuses graphs larger than `limit` vertices
    /// (use [`ENUMERATION_LIMIT`] for the crate default). It exists as the
    /// ground-truth oracle for Theorem 1 and for the paper's Figure-2
    /// example; production race checks should use
    /// [`Tsg::has_race`](crate::Tsg::has_race) instead.
    ///
    /// # Errors
    ///
    /// [`TsgError::TooLargeToEnumerate`] when the vertex count exceeds
    /// `limit`.
    pub fn valid_orderings(&self, limit: usize) -> Result<Vec<Vec<NodeId>>, TsgError> {
        if self.node_count() > limit {
            return Err(TsgError::TooLargeToEnumerate {
                nodes: self.node_count(),
                limit,
            });
        }
        let n = self.node_count();
        let mut indeg: Vec<usize> = vec![0; n];
        for e in self.edges() {
            indeg[e.to().index()] += 1;
        }
        let mut out = Vec::new();
        let mut current: Vec<NodeId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        self.enumerate_rec(&mut indeg, &mut placed, &mut current, &mut out);
        Ok(out)
    }

    fn enumerate_rec(
        &self,
        indeg: &mut Vec<usize>,
        placed: &mut Vec<bool>,
        current: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        let n = self.node_count();
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for v in 0..n {
            if !placed[v] && indeg[v] == 0 {
                placed[v] = true;
                let vid = NodeId(v as u32);
                current.push(vid);
                let succs: Vec<usize> = self
                    .successors(vid)
                    .expect("node exists")
                    .map(|e| e.to().index())
                    .collect();
                for &s in &succs {
                    indeg[s] -= 1;
                }
                self.enumerate_rec(indeg, placed, current, out);
                for &s in &succs {
                    indeg[s] += 1;
                }
                current.pop();
                placed[v] = false;
            }
        }
    }

    /// Counts the valid orderings (linear extensions) without materializing
    /// them. Same complexity and limit as [`Tsg::valid_orderings`].
    ///
    /// # Errors
    ///
    /// [`TsgError::TooLargeToEnumerate`] when the vertex count exceeds
    /// `limit`.
    pub fn count_valid_orderings(&self, limit: usize) -> Result<u64, TsgError> {
        if self.node_count() > limit {
            return Err(TsgError::TooLargeToEnumerate {
                nodes: self.node_count(),
                limit,
            });
        }
        let n = self.node_count();
        let mut indeg: Vec<usize> = vec![0; n];
        for e in self.edges() {
            indeg[e.to().index()] += 1;
        }
        let mut placed = vec![false; n];
        let mut count = 0u64;
        self.count_rec(&mut indeg, &mut placed, 0, &mut count);
        Ok(count)
    }

    fn count_rec(
        &self,
        indeg: &mut Vec<usize>,
        placed: &mut Vec<bool>,
        depth: usize,
        count: &mut u64,
    ) {
        let n = self.node_count();
        if depth == n {
            *count += 1;
            return;
        }
        for v in 0..n {
            if !placed[v] && indeg[v] == 0 {
                placed[v] = true;
                let succs: Vec<usize> = self
                    .successors(NodeId(v as u32))
                    .expect("node exists")
                    .map(|e| e.to().index())
                    .collect();
                for &s in &succs {
                    indeg[s] -= 1;
                }
                self.count_rec(indeg, placed, depth + 1, count);
                for &s in &succs {
                    indeg[s] += 1;
                }
                placed[v] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, NodeKind};

    /// Build a chain a→b→c.
    fn chain3() -> (Tsg, [NodeId; 3]) {
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(b, c, EdgeKind::Data).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn chain_has_single_ordering() {
        let (g, [a, b, c]) = chain3();
        let all = g.valid_orderings(ENUMERATION_LIMIT).unwrap();
        assert_eq!(all, vec![vec![a, b, c]]);
        assert_eq!(g.count_valid_orderings(ENUMERATION_LIMIT).unwrap(), 1);
    }

    #[test]
    fn antichain_has_factorial_orderings() {
        let mut g = Tsg::new();
        for i in 0..4 {
            g.add_node(format!("n{i}"), NodeKind::Compute);
        }
        assert_eq!(g.count_valid_orderings(ENUMERATION_LIMIT).unwrap(), 24);
        assert_eq!(g.valid_orderings(ENUMERATION_LIMIT).unwrap().len(), 24);
    }

    #[test]
    fn validity_check() {
        let (g, [a, b, c]) = chain3();
        assert!(g.is_valid_ordering(&[a, b, c]).unwrap());
        assert!(!g.is_valid_ordering(&[b, a, c]).unwrap());
        assert!(!g.is_valid_ordering(&[a, a, c]).unwrap()); // duplicate
        assert!(matches!(
            g.is_valid_ordering(&[a, b]),
            Err(TsgError::MalformedOrdering {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn enumeration_limit_enforced() {
        let mut g = Tsg::new();
        for i in 0..6 {
            g.add_node(format!("n{i}"), NodeKind::Compute);
        }
        assert!(matches!(
            g.valid_orderings(5),
            Err(TsgError::TooLargeToEnumerate { nodes: 6, limit: 5 })
        ));
        assert!(matches!(
            g.count_valid_orderings(5),
            Err(TsgError::TooLargeToEnumerate { nodes: 6, limit: 5 })
        ));
    }

    #[test]
    fn every_enumerated_ordering_is_valid() {
        // Diamond + a tail.
        let mut g = Tsg::new();
        let a = g.add_node("a", NodeKind::Compute);
        let b = g.add_node("b", NodeKind::Compute);
        let c = g.add_node("c", NodeKind::Compute);
        let d = g.add_node("d", NodeKind::Compute);
        let e = g.add_node("e", NodeKind::Compute);
        g.add_edge(a, b, EdgeKind::Data).unwrap();
        g.add_edge(a, c, EdgeKind::Data).unwrap();
        g.add_edge(b, d, EdgeKind::Data).unwrap();
        g.add_edge(c, d, EdgeKind::Data).unwrap();
        g.add_edge(d, e, EdgeKind::Data).unwrap();
        let all = g.valid_orderings(ENUMERATION_LIMIT).unwrap();
        assert_eq!(all.len(), 2); // b,c swap only
        for o in &all {
            assert!(g.is_valid_ordering(o).unwrap());
        }
    }

    #[test]
    fn empty_graph_has_one_empty_ordering() {
        let g = Tsg::new();
        assert_eq!(g.valid_orderings(0).unwrap(), vec![Vec::<NodeId>::new()]);
        assert_eq!(g.count_valid_orderings(0).unwrap(), 1);
    }
}
