//! Vertices of a Topological Sort Graph.

use std::fmt;

/// Identifier of a node within one [`Tsg`](crate::Tsg).
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that created them.
///
/// ```
/// use tsg::{Tsg, NodeKind};
/// let mut g = Tsg::new();
/// let a = g.add_node("a", NodeKind::Compute);
/// let b = g.add_node("b", NodeKind::Compute);
/// assert_ne!(a, b);
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node (its insertion order within the graph).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a dense index.
    ///
    /// Ids are only meaningful for the graph that assigned them; graph
    /// methods validate ids and return
    /// [`TsgError::UnknownNode`](crate::TsgError::UnknownNode) for indices
    /// that are out of range.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a secret can be read from during transient execution.
///
/// Section V-A of the paper observes that every new source of a secret yields
/// a new attack variant; Figure 4 enumerates the micro-architectural buffers
/// exploited by the Meltdown/Foreshadow/MDS families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SecretSource {
    /// Main memory (baseline Meltdown).
    Memory,
    /// L1 data cache (Foreshadow / L1 Terminal Fault, TAA).
    Cache,
    /// Line fill buffer (RIDL, ZombieLoad, Cacheout).
    LineFillBuffer,
    /// Store buffer (Fallout).
    StoreBuffer,
    /// Load port (RIDL).
    LoadPort,
    /// A privileged special register (Spectre v3a / Rogue System Register Read).
    SpecialRegister,
    /// Stale floating-point unit state (Lazy FP).
    Fpu,
    /// Architectural memory within the victim's own address space, reached
    /// out-of-bounds (Spectre v1-family) or via stale store-to-load data
    /// (Spectre v4).
    ArchitecturalMemory,
}

impl fmt::Display for SecretSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecretSource::Memory => "memory",
            SecretSource::Cache => "L1 cache",
            SecretSource::LineFillBuffer => "line fill buffer",
            SecretSource::StoreBuffer => "store buffer",
            SecretSource::LoadPort => "load port",
            SecretSource::SpecialRegister => "special register",
            SecretSource::Fpu => "FPU state",
            SecretSource::ArchitecturalMemory => "architectural memory",
        };
        f.write_str(s)
    }
}

/// The role an operation plays in an attack graph.
///
/// Section IV-B of the paper defines four node types that *must* be present
/// in an attack graph — authorization, the sender's secret access, the
/// sender's micro-architectural state change (*send*), and the receiver's
/// retrieval. We additionally type the remaining supporting operations so the
/// analysis in [`crate::analysis`] can locate the critical nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NodeKind {
    /// A permission / bounds / disambiguation check whose completion
    /// authorizes some other operation ("Authorization Operations", §IV-B).
    ///
    /// Examples: branch resolution of a bounds check (Spectre v1), kernel
    /// page-privilege check (Meltdown), store-load address disambiguation
    /// (Spectre v4), TSX abort completion (TAA).
    Authorization,
    /// The sender's (possibly illegal) access of the secret, annotated with
    /// the micro-architectural source it reads from.
    SecretAccess(SecretSource),
    /// The sender transforms/uses the secret, e.g. computing a covert-channel
    /// address from it ("Compute load address R" in Fig. 1).
    UseSecret,
    /// The sender's micro-architectural state change that encodes the secret
    /// ("Load R to Cache" in Fig. 1).
    Send,
    /// The receiver's retrieval of the transformed secret from the covert
    /// channel ("Reload Array_A / Measure time" in Fig. 1).
    Receive,
    /// Attacker setup: establishing the channel (flush) or mis-training a
    /// predictor (step 1 of §III).
    Setup,
    /// Resolution of the speculation: squash on mis-speculation or commit.
    Resolution,
    /// Any other computation, address generation, or book-keeping operation.
    Compute,
}

impl NodeKind {
    /// Whether this node is an authorization operation.
    #[must_use]
    pub fn is_authorization(self) -> bool {
        matches!(self, NodeKind::Authorization)
    }

    /// Whether this node is a secret access (of any source).
    #[must_use]
    pub fn is_secret_access(self) -> bool {
        matches!(self, NodeKind::SecretAccess(_))
    }

    /// Whether this node is one of the operations a defense strategy may
    /// protect: the access itself, the use of the secret, or the send.
    ///
    /// These correspond to the insertion points of defense strategies ①, ②
    /// and ③ in Figure 8 of the paper.
    #[must_use]
    pub fn is_protectable(self) -> bool {
        matches!(
            self,
            NodeKind::SecretAccess(_) | NodeKind::UseSecret | NodeKind::Send
        )
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Authorization => f.write_str("authorization"),
            NodeKind::SecretAccess(src) => write!(f, "secret access ({src})"),
            NodeKind::UseSecret => f.write_str("use secret"),
            NodeKind::Send => f.write_str("send"),
            NodeKind::Receive => f.write_str("receive"),
            NodeKind::Setup => f.write_str("setup"),
            NodeKind::Resolution => f.write_str("resolution"),
            NodeKind::Compute => f.write_str("compute"),
        }
    }
}

/// A vertex of a [`Tsg`](crate::Tsg): one operation in the modeled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) label: String,
    pub(crate) kind: NodeKind,
}

impl Node {
    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable label, e.g. `"Load S"` or `"Branch resolution"`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The role this operation plays in the attack.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.label, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Authorization.is_authorization());
        assert!(!NodeKind::Compute.is_authorization());
        assert!(NodeKind::SecretAccess(SecretSource::Memory).is_secret_access());
        assert!(NodeKind::SecretAccess(SecretSource::Fpu).is_protectable());
        assert!(NodeKind::UseSecret.is_protectable());
        assert!(NodeKind::Send.is_protectable());
        assert!(!NodeKind::Receive.is_protectable());
        assert!(!NodeKind::Setup.is_protectable());
    }

    #[test]
    fn secret_source_display_is_nonempty() {
        for src in [
            SecretSource::Memory,
            SecretSource::Cache,
            SecretSource::LineFillBuffer,
            SecretSource::StoreBuffer,
            SecretSource::LoadPort,
            SecretSource::SpecialRegister,
            SecretSource::Fpu,
            SecretSource::ArchitecturalMemory,
        ] {
            assert!(!src.to_string().is_empty());
        }
    }

    #[test]
    fn kind_display_mentions_source() {
        let k = NodeKind::SecretAccess(SecretSource::StoreBuffer);
        assert!(k.to_string().contains("store buffer"));
    }
}
