//! Security-dependency analysis: finding the missing edges that make attacks.
//!
//! Definition 2 of the paper: a **security dependency** of operation `v` on
//! operation `u` is a required ordering "`u` completes before `v`" whose
//! absence permits a security breach. `u` is an *authorization* and `v` is a
//! protected *access*, *use*, or *send*.
//!
//! An attack graph declares which authorization guards which operations (the
//! [`SecurityDependency`] requirements). The analysis then checks each
//! requirement with Theorem 1: if the authorization and the protected
//! operation race, the security dependency is *missing* and the pair is
//! reported as a [`Vulnerability`]. Patching a vulnerability inserts the
//! missing [`EdgeKind::Security`] edge — exactly
//! what the paper's defense strategies ①–③ do at different nodes.

use crate::edge::EdgeKind;
use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::{NodeId, NodeKind};
use std::fmt;

/// A *required* ordering: `authorization` must complete before `protected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecurityDependency {
    /// The authorization operation (bounds check, permission check, …).
    pub authorization: NodeId,
    /// The operation that must not complete before the authorization
    /// (secret access, secret use, or covert send).
    pub protected: NodeId,
}

impl fmt::Display for SecurityDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} must-precede {}", self.authorization, self.protected)
    }
}

/// A security dependency found to be missing: the pair races (Theorem 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vulnerability {
    /// The violated requirement.
    pub dependency: SecurityDependency,
    /// Label of the authorization node (for reporting).
    pub authorization_label: String,
    /// Label of the unprotected node (for reporting).
    pub protected_label: String,
    /// Kind of the unprotected node; tells which defense strategy
    /// (access/use/send) the missing edge corresponds to.
    pub protected_kind: NodeKind,
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "missing security dependency: '{}' races with '{}' ({})",
            self.authorization_label, self.protected_label, self.protected_kind
        )
    }
}

/// An attack graph plus its declared security-dependency requirements.
///
/// This couples a [`Tsg`] with the *policy* ("no access without
/// authorization", §IV-C) so that vulnerabilities can be detected and
/// patched.
///
/// ```
/// use tsg::{SecurityAnalysis, NodeKind, SecretSource, EdgeKind};
/// # fn main() -> Result<(), tsg::TsgError> {
/// let mut sa = SecurityAnalysis::new();
/// let auth = sa.graph_mut().add_node("bounds check", NodeKind::Authorization);
/// let load = sa
///     .graph_mut()
///     .add_node("Load S", NodeKind::SecretAccess(SecretSource::ArchitecturalMemory));
/// sa.require(auth, load)?;
/// assert_eq!(sa.vulnerabilities()?.len(), 1);
/// let patched = sa.patch_all()?;
/// assert_eq!(patched, 1);
/// assert!(sa.vulnerabilities()?.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SecurityAnalysis {
    graph: Tsg,
    requirements: Vec<SecurityDependency>,
}

impl SecurityAnalysis {
    /// Creates an analysis over an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing graph (with no requirements yet).
    #[must_use]
    pub fn from_graph(graph: Tsg) -> Self {
        SecurityAnalysis {
            graph,
            requirements: Vec::new(),
        }
    }

    /// The underlying attack graph.
    #[must_use]
    pub fn graph(&self) -> &Tsg {
        &self.graph
    }

    /// Mutable access to the underlying attack graph.
    pub fn graph_mut(&mut self) -> &mut Tsg {
        &mut self.graph
    }

    /// Consumes the analysis, returning the graph.
    #[must_use]
    pub fn into_graph(self) -> Tsg {
        self.graph
    }

    /// Declares that `authorization` must complete before `protected`.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either node is absent.
    pub fn require(&mut self, authorization: NodeId, protected: NodeId) -> Result<(), TsgError> {
        self.graph.check_node(authorization)?;
        self.graph.check_node(protected)?;
        let dep = SecurityDependency {
            authorization,
            protected,
        };
        if !self.requirements.contains(&dep) {
            self.requirements.push(dep);
        }
        Ok(())
    }

    /// Auto-declares requirements using node kinds: every
    /// [`NodeKind::Authorization`] node guards every *protectable* node
    /// (secret access / use / send) it races with or that is unreachable
    /// from it, **except** nodes that already precede the authorization
    /// (those happen legitimately first, e.g. channel setup).
    ///
    /// This mirrors the paper's tool flow (Fig. 9): after identifying the
    /// node types, the missing-dependency search is mechanical.
    pub fn require_by_kind(&mut self) {
        let auths = self.graph.nodes_of_kind(NodeKind::is_authorization);
        let prots = self.graph.nodes_of_kind(NodeKind::is_protectable);
        for &a in &auths {
            for &p in &prots {
                if self.graph.reachability().reaches(p, a) {
                    continue; // p legitimately precedes the authorization
                }
                let dep = SecurityDependency {
                    authorization: a,
                    protected: p,
                };
                if !self.requirements.contains(&dep) {
                    self.requirements.push(dep);
                }
            }
        }
    }

    /// The declared requirements.
    #[must_use]
    pub fn requirements(&self) -> &[SecurityDependency] {
        &self.requirements
    }

    /// Finds every requirement whose ordering the graph does **not**
    /// enforce, i.e. where authorization and protected operation race
    /// (Theorem 1), or where the protected operation can even *precede*
    /// the authorization outright.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if a requirement references a node that
    /// has been removed (cannot happen through this API, but kept for
    /// robustness).
    pub fn vulnerabilities(&self) -> Result<Vec<Vulnerability>, TsgError> {
        let mut out = Vec::new();
        // One cached closure build answers every requirement check below.
        for dep in &self.requirements {
            self.graph.check_node(dep.authorization)?;
            self.graph.check_node(dep.protected)?;
            let idx = self.graph.reachability();
            let enforced = idx.reaches(dep.authorization, dep.protected)
                && !idx.reaches(dep.protected, dep.authorization);
            if !enforced {
                let auth = self.graph.node(dep.authorization)?;
                let prot = self.graph.node(dep.protected)?;
                out.push(Vulnerability {
                    dependency: *dep,
                    authorization_label: auth.label().to_owned(),
                    protected_label: prot.label().to_owned(),
                    protected_kind: prot.kind(),
                });
            }
        }
        Ok(out)
    }

    /// Whether every declared security dependency is enforced by the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`TsgError`] from [`SecurityAnalysis::vulnerabilities`].
    pub fn is_secure(&self) -> Result<bool, TsgError> {
        Ok(self.vulnerabilities()?.is_empty())
    }

    /// Inserts the missing [`EdgeKind::Security`] edge for one vulnerability.
    ///
    /// # Errors
    ///
    /// [`TsgError::WouldCycle`] if the protected operation already
    /// (transitively) precedes the authorization — in that case the
    /// requirement is unsatisfiable by edge insertion and the modeled
    /// machine must be restructured instead.
    pub fn patch(&mut self, dep: SecurityDependency) -> Result<(), TsgError> {
        self.graph
            .add_edge(dep.authorization, dep.protected, EdgeKind::Security)?;
        Ok(())
    }

    /// Patches every current vulnerability; returns how many edges were
    /// inserted.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SecurityAnalysis::patch`].
    pub fn patch_all(&mut self) -> Result<usize, TsgError> {
        let vulns = self.vulnerabilities()?;
        for v in &vulns {
            self.patch(v.dependency)?;
        }
        Ok(vulns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SecretSource;

    fn spectre_skeleton() -> (SecurityAnalysis, NodeId, NodeId, NodeId) {
        // auth (branch resolution), access (Load S), send (Load R)
        let mut sa = SecurityAnalysis::new();
        let g = sa.graph_mut();
        let auth = g.add_node("Branch resolution", NodeKind::Authorization);
        let access = g.add_node(
            "Load S",
            NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
        );
        let send = g.add_node("Load R to Cache", NodeKind::Send);
        g.add_edge(access, send, EdgeKind::Data).unwrap();
        (sa, auth, access, send)
    }

    #[test]
    fn missing_dependency_detected() {
        let (mut sa, auth, access, _) = spectre_skeleton();
        sa.require(auth, access).unwrap();
        let v = sa.vulnerabilities().unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency.authorization, auth);
        assert!(v[0].to_string().contains("Load S"));
        assert!(!sa.is_secure().unwrap());
    }

    #[test]
    fn patch_inserts_security_edge_and_protects_chain() {
        let (mut sa, auth, access, send) = spectre_skeleton();
        sa.require(auth, access).unwrap();
        sa.require(auth, send).unwrap();
        assert_eq!(sa.vulnerabilities().unwrap().len(), 2);
        // Patching only the access→ the send is transitively protected too.
        sa.patch(SecurityDependency {
            authorization: auth,
            protected: access,
        })
        .unwrap();
        assert!(sa.is_secure().unwrap());
        assert_eq!(
            sa.graph()
                .edges()
                .filter(|e| e.kind() == EdgeKind::Security)
                .count(),
            1
        );
    }

    #[test]
    fn require_by_kind_finds_all_protectables() {
        let (mut sa, auth, access, send) = spectre_skeleton();
        // Also a use-secret node between access and send.
        let use_s = sa.graph_mut().add_node("Compute R", NodeKind::UseSecret);
        sa.graph_mut()
            .add_edge(access, use_s, EdgeKind::Data)
            .unwrap();
        sa.graph_mut()
            .add_edge(use_s, send, EdgeKind::Address)
            .unwrap();
        sa.require_by_kind();
        assert_eq!(sa.requirements().len(), 3);
        assert!(sa
            .requirements()
            .iter()
            .any(|d| d.authorization == auth && d.protected == access));
    }

    #[test]
    fn require_by_kind_skips_preceding_setup() {
        let mut sa = SecurityAnalysis::new();
        let g = sa.graph_mut();
        // A "send-like" op that happens *before* authorization is not guarded
        // (it is legitimately earlier, like channel setup).
        let early = g.add_node("early send", NodeKind::Send);
        let auth = g.add_node("auth", NodeKind::Authorization);
        g.add_edge(early, auth, EdgeKind::Program).unwrap();
        sa.require_by_kind();
        assert!(sa.requirements().is_empty());
    }

    #[test]
    fn enforced_dependency_not_reported() {
        let (mut sa, auth, access, _) = spectre_skeleton();
        sa.graph_mut()
            .add_edge(auth, access, EdgeKind::Security)
            .unwrap();
        sa.require(auth, access).unwrap();
        assert!(sa.is_secure().unwrap());
    }

    #[test]
    fn patch_all_counts() {
        let (mut sa, auth, access, send) = spectre_skeleton();
        sa.require(auth, access).unwrap();
        sa.require(auth, send).unwrap();
        let n = sa.patch_all().unwrap();
        // Both vulnerable at detection time; both get explicit edges.
        assert_eq!(n, 2);
        assert!(sa.is_secure().unwrap());
        assert_eq!(sa.patch_all().unwrap(), 0);
    }

    #[test]
    fn unsatisfiable_requirement_errors_on_patch() {
        let mut sa = SecurityAnalysis::new();
        let g = sa.graph_mut();
        let access = g.add_node("access", NodeKind::SecretAccess(SecretSource::Memory));
        let auth = g.add_node("auth", NodeKind::Authorization);
        g.add_edge(access, auth, EdgeKind::Program).unwrap();
        sa.require(auth, access).unwrap();
        // Reported as vulnerable (auth does not precede access)…
        assert_eq!(sa.vulnerabilities().unwrap().len(), 1);
        // …but cannot be fixed by edge insertion.
        let err = sa
            .patch(SecurityDependency {
                authorization: auth,
                protected: access,
            })
            .unwrap_err();
        assert!(matches!(err, TsgError::WouldCycle { .. }));
    }

    #[test]
    fn duplicate_requirements_deduplicated() {
        let (mut sa, auth, access, _) = spectre_skeleton();
        sa.require(auth, access).unwrap();
        sa.require(auth, access).unwrap();
        assert_eq!(sa.requirements().len(), 1);
    }

    #[test]
    fn display_formats() {
        let dep = SecurityDependency {
            authorization: NodeId(0),
            protected: NodeId(1),
        };
        assert_eq!(dep.to_string(), "n0 must-precede n1");
    }
}
