//! Fluent construction of attack graphs.

use crate::edge::EdgeKind;
use crate::error::TsgError;
use crate::graph::Tsg;
use crate::node::{NodeId, NodeKind};
use std::collections::HashMap;

/// A label-keyed builder for [`Tsg`]s.
///
/// Attack graphs in the paper are drawn with human-readable node names
/// ("Load S", "Branch resolution"); the builder lets code read the same way:
///
/// ```
/// use tsg::{TsgBuilder, NodeKind, EdgeKind, SecretSource};
/// # fn main() -> Result<(), tsg::TsgError> {
/// let g = TsgBuilder::new()
///     .node("Branch", NodeKind::Authorization)
///     .node("Load S", NodeKind::SecretAccess(SecretSource::ArchitecturalMemory))
///     .node("Load R", NodeKind::Send)
///     .edge("Load S", "Load R", EdgeKind::Data)?
///     .build();
/// assert_eq!(g.node_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TsgBuilder {
    graph: Tsg,
    by_label: HashMap<String, NodeId>,
}

impl TsgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with a unique label. If the label already exists the
    /// existing node is kept (its kind is *not* changed).
    #[must_use]
    pub fn node(mut self, label: impl Into<String>, kind: NodeKind) -> Self {
        let label = label.into();
        if !self.by_label.contains_key(&label) {
            let id = self.graph.add_node(label.clone(), kind);
            self.by_label.insert(label, id);
        }
        self
    }

    /// Adds an edge between two labeled nodes.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] if either label has not been declared, plus
    /// any error from [`Tsg::add_edge`].
    pub fn edge(mut self, from: &str, to: &str, kind: EdgeKind) -> Result<Self, TsgError> {
        let f = self.id_of(from)?;
        let t = self.id_of(to)?;
        self.graph.add_edge(f, t, kind)?;
        Ok(self)
    }

    /// Adds a chain of `Program` edges through the listed labels.
    ///
    /// # Errors
    ///
    /// Same as [`TsgBuilder::edge`].
    pub fn chain(mut self, labels: &[&str], kind: EdgeKind) -> Result<Self, TsgError> {
        for w in labels.windows(2) {
            let f = self.id_of(w[0])?;
            let t = self.id_of(w[1])?;
            self.graph.add_edge(f, t, kind)?;
        }
        Ok(self)
    }

    /// Resolves a label to its node id.
    ///
    /// # Errors
    ///
    /// [`TsgError::UnknownNode`] (with a placeholder id) if the label is not
    /// declared. The placeholder refers to the would-be next node index.
    pub fn id_of(&self, label: &str) -> Result<NodeId, TsgError> {
        self.by_label
            .get(label)
            .copied()
            .ok_or(TsgError::UnknownNode(crate::node::NodeId(
                self.graph.node_count() as u32,
            )))
    }

    /// Finishes construction.
    #[must_use]
    pub fn build(self) -> Tsg {
        self.graph
    }

    /// Finishes construction, also returning the label→id map.
    #[must_use]
    pub fn build_with_labels(self) -> (Tsg, HashMap<String, NodeId>) {
        (self.graph, self.by_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_by_label() {
        let g = TsgBuilder::new()
            .node("a", NodeKind::Compute)
            .node("b", NodeKind::Compute)
            .edge("a", "b", EdgeKind::Data)
            .unwrap()
            .build();
        let a = g.find_by_label("a").unwrap();
        let b = g.find_by_label("b").unwrap();
        assert!(g.has_path(a, b).unwrap());
    }

    #[test]
    fn duplicate_label_reuses_node() {
        let g = TsgBuilder::new()
            .node("a", NodeKind::Compute)
            .node("a", NodeKind::Authorization)
            .build();
        assert_eq!(g.node_count(), 1);
        // The first kind wins.
        let a = g.find_by_label("a").unwrap();
        assert_eq!(g.node(a).unwrap().kind(), NodeKind::Compute);
    }

    #[test]
    fn unknown_label_errors() {
        let r = TsgBuilder::new()
            .node("a", NodeKind::Compute)
            .edge("a", "ghost", EdgeKind::Data);
        assert!(r.is_err());
    }

    #[test]
    fn chain_builds_sequence() {
        let g = TsgBuilder::new()
            .node("a", NodeKind::Compute)
            .node("b", NodeKind::Compute)
            .node("c", NodeKind::Compute)
            .chain(&["a", "b", "c"], EdgeKind::Program)
            .unwrap()
            .build();
        let a = g.find_by_label("a").unwrap();
        let c = g.find_by_label("c").unwrap();
        assert!(g.has_path(a, c).unwrap());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn build_with_labels_exposes_map() {
        let (g, labels) = TsgBuilder::new()
            .node("x", NodeKind::Setup)
            .build_with_labels();
        assert_eq!(labels.len(), 1);
        assert_eq!(g.node(labels["x"]).unwrap().label(), "x");
    }
}
