//! Graphviz DOT export of attack graphs.
//!
//! The figures of the paper are attack graphs; [`Tsg::to_dot`] regenerates
//! them in a form `dot -Tpdf` can render. Node shapes/colors encode the four
//! critical node types of §IV-B, and dashed red edges mark inserted security
//! dependencies (as in the paper's red dashed defense arrows).

use crate::edge::EdgeKind;
use crate::graph::Tsg;
use crate::node::NodeKind;
use std::fmt::Write as _;

impl Tsg {
    /// Renders the graph as Graphviz DOT with the paper's visual conventions.
    ///
    /// * authorization nodes — diamonds
    /// * secret accesses — red boxes
    /// * send / use — orange boxes
    /// * receive — blue boxes
    /// * security edges — dashed red (the paper's defense arrows)
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", escape(title));
        let _ = writeln!(s, "  label=\"{}\";", escape(title));
        let _ = writeln!(s, "  rankdir=TB;");
        let _ = writeln!(s, "  node [fontname=\"Helvetica\"];");
        for n in self.nodes() {
            let (shape, color) = match n.kind() {
                NodeKind::Authorization => ("diamond", "gold"),
                NodeKind::SecretAccess(_) => ("box", "indianred1"),
                NodeKind::UseSecret | NodeKind::Send => ("box", "orange"),
                NodeKind::Receive => ("box", "lightskyblue"),
                NodeKind::Setup => ("box", "gray90"),
                NodeKind::Resolution => ("octagon", "gray80"),
                NodeKind::Compute => ("ellipse", "white"),
            };
            let _ = writeln!(
                s,
                "  {} [label=\"{}\", shape={}, style=filled, fillcolor={}];",
                n.id(),
                escape(n.label()),
                shape,
                color
            );
        }
        for e in self.edges() {
            let style = match e.kind() {
                EdgeKind::Security => "color=red, style=dashed, penwidth=2",
                EdgeKind::Fence => "color=red3, style=bold",
                EdgeKind::Control => "color=blue4",
                EdgeKind::Address => "color=darkgreen",
                EdgeKind::Program => "color=gray50",
                EdgeKind::Data => "color=black",
            };
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{}\", {}];",
                e.from(),
                e.to(),
                e.kind(),
                style
            );
        }
        s.push_str("}\n");
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::{EdgeKind, NodeKind, SecretSource, Tsg};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = Tsg::new();
        let a = g.add_node("Branch resolution", NodeKind::Authorization);
        let b = g.add_node("Load S", NodeKind::SecretAccess(SecretSource::Memory));
        g.add_edge(a, b, EdgeKind::Security).unwrap();
        let dot = g.to_dot("fig");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Branch resolution"));
        assert!(dot.contains("Load S"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("diamond"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_escaped() {
        let mut g = Tsg::new();
        g.add_node("say \"hi\"", NodeKind::Compute);
        let dot = g.to_dot("t\"itle");
        assert!(dot.contains("say \\\"hi\\\""));
        assert!(dot.contains("t\\\"itle"));
    }

    #[test]
    fn every_kind_renders() {
        let mut g = Tsg::new();
        g.add_node("a", NodeKind::Authorization);
        g.add_node("b", NodeKind::SecretAccess(SecretSource::Fpu));
        g.add_node("c", NodeKind::UseSecret);
        g.add_node("d", NodeKind::Send);
        g.add_node("e", NodeKind::Receive);
        g.add_node("f", NodeKind::Setup);
        g.add_node("g", NodeKind::Resolution);
        g.add_node("h", NodeKind::Compute);
        let dot = g.to_dot("kinds");
        for shape in ["diamond", "box", "octagon", "ellipse"] {
            assert!(dot.contains(shape), "missing {shape}");
        }
    }
}
