//! Canonical graph-shape fingerprinting for TSGs.
//!
//! [`shape_fingerprint`] hashes a graph's *structure* — node kinds, edge
//! kinds, and the wiring between them — into a single `u64` that is
//! invariant under node relabeling and node/edge insertion order. Two
//! graphs that are isomorphic as kind-labeled DAGs hash identically; the
//! fuzzing pipeline uses this to dedup synthesized attack scenarios whose
//! lifted graphs share a shape with a known catalog entry.
//!
//! The hash is a Weisfeiler–Leman color refinement: every node starts
//! with a color derived from its [`NodeKind`], then each round folds the
//! multiset of (edge kind, direction, neighbor color) pairs into a new
//! color. After enough rounds to propagate information across the longest
//! path, the sorted multiset of final colors — plus the node and edge
//! counts — is folded into the fingerprint.

use crate::edge::EdgeKind;
use crate::graph::Tsg;
use crate::node::NodeKind;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
const fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Order-independent fold of a sorted slice of colors.
fn fold_sorted(tag: u64, colors: &mut [u64]) -> u64 {
    colors.sort_unstable();
    let mut acc = mix(tag);
    for &c in colors.iter() {
        acc = mix(acc.wrapping_add(c).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    acc
}

/// Initial color of a node: its kind, including the secret source for
/// [`NodeKind::SecretAccess`]. Labels are deliberately ignored — they
/// carry program counters and disassembly text that vary between
/// otherwise identical scenarios.
fn kind_color(kind: NodeKind) -> u64 {
    let tag = match kind {
        NodeKind::Authorization => 1,
        NodeKind::SecretAccess(src) => 0x100 + src as u64,
        NodeKind::UseSecret => 2,
        NodeKind::Send => 3,
        NodeKind::Receive => 4,
        NodeKind::Setup => 5,
        NodeKind::Resolution => 6,
        NodeKind::Compute => 7,
    };
    mix(0xf1e2_d3c4_b5a6_9788 ^ tag)
}

const fn edge_tag(kind: EdgeKind) -> u64 {
    match kind {
        EdgeKind::Data => 1,
        EdgeKind::Control => 2,
        EdgeKind::Address => 3,
        EdgeKind::Fence => 4,
        EdgeKind::Security => 5,
        EdgeKind::Program => 6,
    }
}

/// Canonical shape hash of `g`: invariant under node relabeling and
/// insertion-order permutation, sensitive to node kinds, edge kinds, and
/// connectivity.
///
/// The empty graph hashes to a fixed value; adding any node or edge
/// changes the fingerprint.
#[must_use]
pub fn shape_fingerprint(g: &Tsg) -> u64 {
    let n = g.node_count();
    let mut colors: Vec<u64> = g.nodes().map(|node| kind_color(node.kind())).collect();

    // Enough rounds for color information to cross the longest possible
    // simple path, capped so pathological graphs stay cheap.
    let rounds = n.min(24);
    let mut next = vec![0u64; n];
    let mut neigh: Vec<u64> = Vec::new();
    for _ in 0..rounds {
        for node in g.nodes() {
            let id = node.id();
            neigh.clear();
            if let Ok(succs) = g.successors(id) {
                for e in succs {
                    let t = edge_tag(e.kind()) | 0x100;
                    neigh.push(mix(t).wrapping_add(colors[e.to().index()]));
                }
            }
            if let Ok(preds) = g.predecessors(id) {
                for e in preds {
                    let t = edge_tag(e.kind()) | 0x200;
                    neigh.push(mix(t).wrapping_add(colors[e.from().index()]));
                }
            }
            let own = colors[id.index()];
            next[id.index()] = mix(own ^ fold_sorted(own, &mut neigh));
        }
        std::mem::swap(&mut colors, &mut next);
    }

    let base = 0x7365_6375_7265_2121 ^ mix(n as u64) ^ mix((g.edge_count() as u64) << 32);
    fold_sorted(base, &mut colors)
}

impl Tsg {
    /// Canonical shape hash of this graph — see [`shape_fingerprint`].
    #[must_use]
    pub fn shape_fingerprint(&self) -> u64 {
        shape_fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SecretSource;

    #[test]
    fn empty_graph_has_stable_fingerprint() {
        assert_eq!(
            Tsg::new().shape_fingerprint(),
            Tsg::new().shape_fingerprint()
        );
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = Tsg::new();
        let x = a.add_node("x", NodeKind::Authorization);
        let y = a.add_node(
            "y",
            NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
        );
        a.add_edge(x, y, EdgeKind::Data).unwrap();

        let mut b = Tsg::new();
        let y2 = b.add_node(
            "anything",
            NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
        );
        let x2 = b.add_node("else", NodeKind::Authorization);
        b.add_edge(x2, y2, EdgeKind::Data).unwrap();

        assert_eq!(a.shape_fingerprint(), b.shape_fingerprint());
    }

    #[test]
    fn node_kind_matters() {
        let mut a = Tsg::new();
        a.add_node("n", NodeKind::Authorization);
        let mut b = Tsg::new();
        b.add_node("n", NodeKind::Send);
        assert_ne!(a.shape_fingerprint(), b.shape_fingerprint());
    }

    #[test]
    fn secret_source_matters() {
        let mut a = Tsg::new();
        a.add_node("n", NodeKind::SecretAccess(SecretSource::Memory));
        let mut b = Tsg::new();
        b.add_node("n", NodeKind::SecretAccess(SecretSource::Fpu));
        assert_ne!(a.shape_fingerprint(), b.shape_fingerprint());
    }

    #[test]
    fn edge_kind_and_direction_matter() {
        let mut base = Tsg::new();
        let x = base.add_node("x", NodeKind::Compute);
        let y = base.add_node("y", NodeKind::Compute);
        let mut data = base.clone();
        data.add_edge(x, y, EdgeKind::Data).unwrap();
        let mut ctrl = base.clone();
        ctrl.add_edge(x, y, EdgeKind::Control).unwrap();
        assert_ne!(data.shape_fingerprint(), ctrl.shape_fingerprint());
        assert_ne!(base.shape_fingerprint(), data.shape_fingerprint());
    }

    #[test]
    fn path_direction_distinguishes_asymmetric_kinds() {
        // auth -> access vs access -> auth are different shapes.
        let mut a = Tsg::new();
        let x = a.add_node("x", NodeKind::Authorization);
        let y = a.add_node("y", NodeKind::SecretAccess(SecretSource::Memory));
        a.add_edge(x, y, EdgeKind::Security).unwrap();

        let mut b = Tsg::new();
        let y2 = b.add_node("y", NodeKind::SecretAccess(SecretSource::Memory));
        let x2 = b.add_node("x", NodeKind::Authorization);
        b.add_edge(y2, x2, EdgeKind::Security).unwrap();

        assert_ne!(a.shape_fingerprint(), b.shape_fingerprint());
    }
}
