//! The reachability index against the paper's definitional oracle.
//!
//! `Tsg::has_race` now answers from the cached bitset transitive closure;
//! these tests pin it (and the DFS baseline `has_race_dfs`) to
//! `has_race_by_enumeration` — the literal "two valid orderings disagree"
//! definition — on randomized DAGs of up to 10 nodes, and verify that
//! mutation keeps the cache *correct*: edge insertions maintain the index
//! in place ([`ReachabilityIndex::insert_edge`]), and the property tests
//! below prove the incrementally maintained index equal (`==`) to a fresh
//! [`ReachabilityIndex::build`] after **every** step of random valid
//! edge-insertion sequences, with every query agreeing with the DFS
//! baseline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsg::{EdgeKind, NodeId, NodeKind, ReachabilityIndex, Tsg};

/// A random DAG of `n` nodes built from forward edges only (acyclic by
/// construction), each present with probability `p`. Seeded [`StdRng`],
/// so failures reproduce byte-for-byte.
fn random_dag(n: usize, p: f64, rng: &mut StdRng) -> Tsg {
    let mut g = Tsg::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(format!("v{i}"), NodeKind::Compute))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(ids[i], ids[j], EdgeKind::Data)
                    .expect("forward edge cannot cycle");
            }
        }
    }
    g
}

#[test]
fn indexed_has_race_matches_enumeration_oracle_on_random_dags() {
    let mut rng = StdRng::seed_from_u64(2021);
    let mut checked_pairs = 0usize;
    for round in 0..60 {
        let n = 2 + (round % 9); // 2..=10 nodes
        let g = random_dag(n, 0.55, &mut rng);
        // Skip the rare near-empty graph whose linear-extension count makes
        // per-pair enumeration unreasonably slow; the cap still leaves
        // plenty of coverage and keeps the test deterministic-fast.
        if g.count_valid_orderings(12).unwrap() > 50_000 {
            continue;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                let indexed = g.has_race(u, v).unwrap();
                let dfs = g.has_race_dfs(u, v).unwrap();
                let oracle = g.has_race_by_enumeration(u, v, 12).unwrap();
                assert_eq!(
                    indexed, oracle,
                    "indexed verdict disagrees with the ordering oracle for \
                     ({u}, {v}) on graph:\n{g}"
                );
                assert_eq!(indexed, dfs, "index and DFS disagree for ({u}, {v})");
                checked_pairs += 1;
            }
        }
    }
    assert!(checked_pairs > 500, "only {checked_pairs} pairs checked");
}

#[test]
fn add_edge_after_query_must_not_serve_stale_reachability() {
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..40 {
        let n = 3 + (round % 8);
        let mut g = random_dag(n, 0.4, &mut rng);
        // Build and cache the closure.
        let races = g.all_races();
        let Some(pair) = races.first().copied() else {
            continue;
        };
        // Patch one racing pair; the stale closure would still report the
        // race, the rebuilt one must not.
        g.add_edge(pair.a, pair.b, EdgeKind::Security).unwrap();
        assert!(
            !g.has_race(pair.a, pair.b).unwrap(),
            "stale index served after add_edge on graph:\n{g}"
        );
        // Full agreement with a fresh DFS on every pair, post-mutation.
        for i in 0..n {
            for j in (i + 1)..n {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                assert_eq!(g.has_race(u, v).unwrap(), g.has_race_dfs(u, v).unwrap());
            }
        }
    }
}

/// One generated case for the incremental-maintenance property: `n`
/// nodes, every forward pair `(i, j)` (`i < j`, so insertion in any order
/// stays acyclic) in a random order, split into an initial edge set and an
/// insertion sequence.
fn arb_insertion_case(
    max_nodes: usize,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, usize)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let m = pairs.len();
        (proptest::collection::vec(any::<u64>(), m), 0..=m).prop_map(move |(keys, split)| {
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by_key(|&k| keys[k]);
            let shuffled: Vec<(usize, usize)> = order.into_iter().map(|k| pairs[k]).collect();
            (n, shuffled, split)
        })
    })
}

/// Every pairwise index verdict against the DFS baseline.
fn assert_queries_match_dfs(g: &Tsg, idx: &ReachabilityIndex, when: &str) {
    let n = g.node_count();
    for i in 0..n {
        for j in (i + 1)..n {
            let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
            assert_eq!(
                idx.races(u, v),
                g.has_race_dfs(u, v).unwrap(),
                "index disagrees with DFS for ({u}, {v}) {when} on graph:\n{g}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole equivalence: on random DAGs with random valid
    /// edge-insertion sequences, the incrementally maintained index (the
    /// one `Tsg::add_edge` updates in place) is `==` a fresh
    /// `ReachabilityIndex::build` after **every** insertion, and all its
    /// query answers match the DFS baseline.
    #[test]
    fn incremental_maintenance_equals_full_rebuild_at_every_step(
        (n, seq, split) in arb_insertion_case(10)
    ) {
        let mut g = Tsg::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(format!("v{i}"), NodeKind::Compute))
            .collect();
        for &(i, j) in &seq[..split] {
            g.add_edge(ids[i], ids[j], EdgeKind::Data).unwrap();
        }
        // Build and cache the closure; every add_edge below maintains it.
        let _ = g.reachability();
        for (step, &(i, j)) in seq[split..].iter().enumerate() {
            g.add_edge(ids[i], ids[j], EdgeKind::Data).unwrap();
            let maintained = g.reachability();
            prop_assert_eq!(
                maintained,
                &ReachabilityIndex::build(&g),
                "maintained index diverged from full rebuild after step {} on graph:\n{}",
                step,
                g
            );
            assert_queries_match_dfs(&g, maintained, "after incremental insert");
        }
    }

    /// Checkpoint/rollback round trip: patching a random subset of racing
    /// pairs and rolling back restores both the graph and the (warm)
    /// index, byte for byte.
    #[test]
    fn rollback_restores_index_after_random_patches(
        (n, seq, split) in arb_insertion_case(9)
    ) {
        let mut g = Tsg::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(format!("v{i}"), NodeKind::Compute))
            .collect();
        for &(i, j) in &seq[..split] {
            g.add_edge(ids[i], ids[j], EdgeKind::Data).unwrap();
        }
        let _ = g.reachability();
        let cp = g.checkpoint();
        let before = g.reachability().clone();
        let (nodes, edges) = (g.node_count(), g.edge_count());
        // Patch: the remaining sequence plus one fresh node hanging off it.
        for &(i, j) in &seq[split..] {
            g.add_edge(ids[i], ids[j], EdgeKind::Security).unwrap();
        }
        let extra = g.add_node("extra", NodeKind::Compute);
        g.add_edge(ids[0], extra, EdgeKind::Program).unwrap();
        prop_assert!(g.has_path(ids[0], extra).unwrap());

        g.rollback(&cp);
        prop_assert_eq!(g.node_count(), nodes);
        prop_assert_eq!(g.edge_count(), edges);
        prop_assert_eq!(g.reachability(), &before);
        prop_assert_eq!(g.reachability(), &ReachabilityIndex::build(&g));
        assert_queries_match_dfs(&g, g.reachability(), "after rollback");
    }
}

#[test]
fn add_node_after_query_extends_the_index() {
    let mut g = Tsg::new();
    let a = g.add_node("a", NodeKind::Compute);
    let b = g.add_node("b", NodeKind::Compute);
    g.add_edge(a, b, EdgeKind::Data).unwrap();
    assert!(!g.has_race(a, b).unwrap()); // closure cached here
    let c = g.add_node("c", NodeKind::Compute);
    // The cached 2-node closure must not be consulted for the 3-node graph.
    assert!(g.has_race(a, c).unwrap());
    assert!(g.has_race(b, c).unwrap());
    assert_eq!(g.reachability().node_count(), 3);
}
