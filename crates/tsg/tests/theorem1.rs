//! Property-based verification of **Theorem 1** (paper Appendix A):
//! for any pair of vertices `u`, `v` in a TSG, `u` and `v` are race-free
//! **iff** a directed path connects them.
//!
//! The reachability-based implementation (`Tsg::has_race`) is checked
//! against the definitional oracle (`Tsg::has_race_by_enumeration`), which
//! enumerates *all* valid orderings — exactly the paper's definition of a
//! race condition.

use proptest::prelude::*;
use tsg::{EdgeKind, NodeId, NodeKind, Tsg};

/// Generate a random DAG with up to `max_nodes` nodes by only inserting
/// forward edges (i < j), which guarantees acyclicity independent of the
/// graph's own cycle check.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = Tsg> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(any::<bool>(), m).prop_map(move |mask| {
            let mut g = Tsg::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| g.add_node(format!("v{i}"), NodeKind::Compute))
                .collect();
            for (k, &(i, j)) in pairs.iter().enumerate() {
                if mask[k] {
                    g.add_edge(ids[i], ids[j], EdgeKind::Data)
                        .expect("forward edge cannot cycle");
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1, both directions, on every vertex pair of random DAGs of up
    /// to 7 nodes (small enough for exhaustive linear-extension enumeration).
    #[test]
    fn theorem1_reachability_equals_ordering_definition(g in arb_dag(7)) {
        let n = g.node_count();
        for i in 0..n {
            for j in (i + 1)..n {
                let u = NodeId::from_index(i);
                let v = NodeId::from_index(j);
                let fast = g.has_race(u, v).unwrap();
                let oracle = g.has_race_by_enumeration(u, v, 12).unwrap();
                prop_assert_eq!(
                    fast, oracle,
                    "Theorem 1 violated for ({}, {}) on graph:\n{}", u, v, g
                );
            }
        }
    }

    /// A race-free pair is connected by a path; patching a racing pair with a
    /// security edge always removes the race.
    #[test]
    fn patching_a_race_removes_it(mut g in arb_dag(7)) {
        let races = g.all_races();
        for pair in races {
            // Insert the security dependency; direction a→b is always legal
            // because neither reaches the other.
            g.add_edge(pair.a, pair.b, EdgeKind::Security).unwrap();
            prop_assert!(!g.has_race(pair.a, pair.b).unwrap());
        }
        // After patching every race, the ordering is total on all pairs that
        // raced; re-running finds none.
        prop_assert!(g.all_races().is_empty());
    }

    /// `all_races` agrees with the pairwise Theorem-1 check.
    #[test]
    fn all_races_consistent_with_pairwise(g in arb_dag(8)) {
        let set: std::collections::HashSet<_> = g.all_races().into_iter().collect();
        let n = g.node_count();
        for i in 0..n {
            for j in (i + 1)..n {
                let u = NodeId::from_index(i);
                let v = NodeId::from_index(j);
                let racing = g.has_race(u, v).unwrap();
                prop_assert_eq!(set.contains(&tsg::RacePair::new(u, v)), racing);
            }
        }
    }

    /// Every topological sort the graph produces is a valid ordering, and
    /// every enumerated valid ordering passes `is_valid_ordering`.
    #[test]
    fn topological_sort_is_valid(g in arb_dag(7)) {
        let topo = g.topological_sort();
        prop_assert!(g.is_valid_ordering(&topo).unwrap());
        for o in g.valid_orderings(12).unwrap() {
            prop_assert!(g.is_valid_ordering(&o).unwrap());
        }
    }

    /// The number of valid orderings never increases when an edge is added.
    #[test]
    fn adding_edges_restricts_orderings(g in arb_dag(6)) {
        let before = g.count_valid_orderings(12).unwrap();
        let mut g2 = g.clone();
        // Add one legal edge if any pair is unconnected.
        if let Some(pair) = g2.all_races().first().copied() {
            g2.add_edge(pair.a, pair.b, EdgeKind::Security).unwrap();
            let after = g2.count_valid_orderings(12).unwrap();
            prop_assert!(after <= before);
            prop_assert!(after >= 1);
        }
    }
}

/// Deterministic regression cases drawn from the paper.
#[test]
fn fig2_has_exactly_the_paper_races() {
    let g = tsg::examples::fig2();
    let find = |l: &str| g.find_by_label(l).unwrap();
    let (b, c, d, e) = (find("B"), find("C"), find("D"), find("E"));
    let races: std::collections::HashSet<_> = g.all_races().into_iter().collect();
    // D races E (the paper's example) and, by the same argument, B races C
    // and B races E. No other pair races in Fig. 2.
    assert!(races.contains(&tsg::RacePair::new(d, e)));
    assert!(races.contains(&tsg::RacePair::new(b, c)));
    assert!(races.contains(&tsg::RacePair::new(b, e)));
    assert_eq!(races.len(), 3);
}

#[test]
fn theorem1_on_fig2_all_pairs() {
    let g = tsg::examples::fig2();
    let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
    for (i, &u) in ids.iter().enumerate() {
        for &v in &ids[i + 1..] {
            assert_eq!(
                g.has_race(u, v).unwrap(),
                g.has_race_by_enumeration(u, v, 12).unwrap(),
                "mismatch for ({u}, {v})"
            );
        }
    }
}
