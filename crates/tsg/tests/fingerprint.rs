//! Properties of the canonical graph-shape fingerprint.
//!
//! The fuzzing pipeline dedups synthesized scenarios by
//! [`tsg::shape_fingerprint`], so the hash must be *canonical*: invariant
//! under node relabeling and node/edge insertion order (isomorphic
//! kind-labeled DAGs hash identically), while structurally distinct
//! graphs hash distinctly with overwhelming probability. These property
//! tests pin both directions on randomized DAGs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsg::{EdgeKind, NodeId, NodeKind, SecretSource, Tsg};

const KINDS: [NodeKind; 6] = [
    NodeKind::Authorization,
    NodeKind::SecretAccess(SecretSource::ArchitecturalMemory),
    NodeKind::UseSecret,
    NodeKind::Send,
    NodeKind::Compute,
    NodeKind::Resolution,
];

const EDGE_KINDS: [EdgeKind; 4] = [
    EdgeKind::Data,
    EdgeKind::Control,
    EdgeKind::Address,
    EdgeKind::Program,
];

/// A random kind-labeled DAG description: node kinds plus forward edges
/// `(i, j, kind)` with `i < j`, acyclic under any insertion permutation.
struct DagSpec {
    kinds: Vec<NodeKind>,
    edges: Vec<(usize, usize, EdgeKind)>,
}

fn pick(rng: &mut StdRng, len: usize) -> usize {
    rng.gen_range(0..len as u64) as usize
}

fn random_spec(n: usize, p: f64, rng: &mut StdRng) -> DagSpec {
    let kinds = (0..n).map(|_| KINDS[pick(rng, KINDS.len())]).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                edges.push((i, j, EDGE_KINDS[pick(rng, EDGE_KINDS.len())]));
            }
        }
    }
    DagSpec { kinds, edges }
}

/// Builds the spec with nodes inserted in `node_order` (a permutation of
/// `0..n`) and edges inserted in `edge_order`, with per-build labels.
/// Structure is identical regardless of the orders; only IDs and labels
/// differ.
fn build_permuted(spec: &DagSpec, node_order: &[usize], edge_order: &[usize], tag: &str) -> Tsg {
    let n = spec.kinds.len();
    let mut g = Tsg::new();
    // ids[original index] = NodeId in this build.
    let mut ids = vec![NodeId::from_index(0); n];
    for &orig in node_order {
        ids[orig] = g.add_node(format!("{tag}-{orig}"), spec.kinds[orig]);
    }
    for &e in edge_order {
        let (i, j, kind) = spec.edges[e];
        g.add_edge(ids[i], ids[j], kind)
            .expect("forward edge cannot cycle");
    }
    g
}

fn identity_build(spec: &DagSpec) -> Tsg {
    let n = spec.kinds.len();
    let node_order: Vec<usize> = (0..n).collect();
    let edge_order: Vec<usize> = (0..spec.edges.len()).collect();
    build_permuted(spec, &node_order, &edge_order, "id")
}

fn shuffled(len: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut v: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        v.swap(i, pick(rng, i + 1));
    }
    v
}

#[test]
fn isomorphic_relabelings_hash_identically() {
    let mut rng = StdRng::seed_from_u64(0x5ec5);
    for round in 0..200 {
        let n = 1 + (round % 12);
        let spec = random_spec(n, 0.4, &mut rng);
        let reference = identity_build(&spec).shape_fingerprint();
        for _ in 0..4 {
            let node_order = shuffled(n, &mut rng);
            let edge_order = shuffled(spec.edges.len(), &mut rng);
            let permuted = build_permuted(&spec, &node_order, &edge_order, "perm");
            assert_eq!(
                permuted.shape_fingerprint(),
                reference,
                "insertion-order permutation changed the fingerprint on:\n{permuted}"
            );
        }
    }
}

#[test]
fn structural_edits_change_the_hash() {
    let mut rng = StdRng::seed_from_u64(0xfee1);
    for round in 0..100 {
        let n = 2 + (round % 10);
        let spec = random_spec(n, 0.35, &mut rng);
        let g = identity_build(&spec);
        let reference = g.shape_fingerprint();

        // Adding a node changes the shape.
        let mut plus_node = g.clone();
        plus_node.add_node("extra", NodeKind::Compute);
        assert_ne!(plus_node.shape_fingerprint(), reference);

        // Adding a previously absent forward edge changes the shape.
        let absent = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .find(|&(i, j)| !spec.edges.iter().any(|&(a, b, _)| (a, b) == (i, j)));
        if let Some((i, j)) = absent {
            let mut plus_edge = g.clone();
            plus_edge
                .add_edge(NodeId::from_index(i), NodeId::from_index(j), EdgeKind::Data)
                .unwrap();
            assert_ne!(
                plus_edge.shape_fingerprint(),
                reference,
                "adding edge {i}->{j} left the fingerprint unchanged on:\n{g}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Relabeling invariance, proptest-driven: the identity build and a
    /// permuted build of the same random spec always agree.
    #[test]
    fn permutation_invariance_holds(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1 + (seed % 10) as usize;
        let spec = random_spec(n, 0.45, &mut rng);
        let node_order = shuffled(n, &mut rng);
        let edge_order = shuffled(spec.edges.len(), &mut rng);
        prop_assert_eq!(
            identity_build(&spec).shape_fingerprint(),
            build_permuted(&spec, &node_order, &edge_order, "p").shape_fingerprint()
        );
    }

    /// Changing one node's kind changes the hash (kinds are part of the
    /// canonical shape).
    #[test]
    fn kind_flip_changes_hash(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1 + (seed % 8) as usize;
        let spec = random_spec(n, 0.4, &mut rng);
        let victim = pick(&mut rng, n);
        let mut flipped_kinds = spec.kinds.clone();
        let old = flipped_kinds[victim];
        flipped_kinds[victim] = if old == NodeKind::Send {
            NodeKind::Receive
        } else {
            NodeKind::Send
        };
        let flipped = DagSpec { kinds: flipped_kinds, edges: spec.edges.clone() };
        prop_assert!(
            identity_build(&spec).shape_fingerprint()
                != identity_build(&flipped).shape_fingerprint(),
            "kind flip at node {} left the fingerprint unchanged",
            victim
        );
    }
}
