//! Cross-process campaign acceptance: drive the `campaign` CLI code path
//! (the same [`bench::campaign_cli::main_with`] entry the binary calls)
//! to write shard part files to a temp dir, merge them, and assert the
//! merged CSV/JSON is **bit-identical** to a single-shot `spec.run()` —
//! for n ∈ {1, 2, 5} and a seeded-random n — plus the incremental no-op
//! and the merge/render failure modes.

use bench::campaign_cli::{main_with, CliError, Outcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specgraph::campaign::{CampaignIoError, CampaignMatrix, CampaignSpec, Knob, MergeError};
use specgraph::{attacks, defenses};
use std::fs;
use std::path::PathBuf;
use uarch::UarchConfig;

/// The spec flags under test: 3 attacks × 2 defenses × 2 ROB depths.
const SPEC_FLAGS: &[&str] = &[
    "--attacks",
    "Spectre v1,Spectre v2,Meltdown",
    "--defenses",
    "LFENCE,NDA",
    "--axis",
    "rob=16,64",
];

/// The equivalent in-process spec, for the single-shot oracle.
fn oracle_spec() -> CampaignSpec {
    CampaignSpec::builder(UarchConfig::default())
        .attacks(
            ["Spectre v1", "Spectre v2", "Meltdown"]
                .iter()
                .map(|n| attacks::find(n).expect("registered")),
        )
        .defenses(
            ["LFENCE", "NDA"]
                .iter()
                .map(|n| *defenses::find(n).expect("registered")),
        )
        .axis(Knob::RobDepth, [16usize, 64])
        .build()
}

fn run(list: &[&str]) -> Result<Outcome, CliError> {
    main_with(&list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
}

/// `extra` (subcommand first) followed by the shared spec flags.
fn with_spec<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    extra
        .iter()
        .copied()
        .chain(SPEC_FLAGS.iter().copied())
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

#[test]
fn sharded_cli_pipeline_is_bit_identical_to_single_shot() {
    let spec = oracle_spec();
    let whole = CampaignMatrix::run(&spec).unwrap();
    let (expected_json, expected_csv) = (whole.to_json(), whole.to_csv());
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
    let random_n = usize::try_from(rng.gen_range(6..20)).unwrap();
    let dir = tempdir("shards");
    for n in [1usize, 2, 5, random_n] {
        let mut part_args: Vec<String> = vec!["merge".to_owned()];
        for i in 0..n {
            let part = dir.join(format!("part-{i}-of-{n}.json"));
            let shard = format!("{i}/{n}");
            let outcome = run(&with_spec(&[
                "run",
                "--shard",
                &shard,
                "--out",
                part.to_str().unwrap(),
            ]))
            .expect("shard runs");
            assert!(
                matches!(outcome, Outcome::RanShard { index, of, .. } if index == i && of == n),
                "unexpected outcome {outcome:?}"
            );
            part_args.push(part.to_str().unwrap().to_owned());
        }
        let (matrix, csv) = (dir.join("matrix.json"), dir.join("matrix.csv"));
        part_args.extend([
            "--out".to_owned(),
            matrix.to_str().unwrap().to_owned(),
            "--csv".to_owned(),
            csv.to_str().unwrap().to_owned(),
        ]);
        let outcome = main_with(&part_args).expect("parts merge");
        assert_eq!(
            outcome,
            Outcome::Merged {
                parts: n,
                tasks: spec.total_tasks()
            }
        );
        assert_eq!(
            fs::read_to_string(&matrix).unwrap(),
            expected_json,
            "JSON differs from single-shot for n={n}"
        );
        assert_eq!(
            fs::read_to_string(&csv).unwrap(),
            expected_csv,
            "CSV differs from single-shot for n={n}"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_rerun_across_the_cli_boundary_is_free() {
    let dir = tempdir("incremental");
    let matrix = dir.join("matrix.json");
    let outcome = run(&with_spec(&["run", "--out", matrix.to_str().unwrap()])).expect("full run");
    let total = oracle_spec().total_tasks();
    assert_eq!(
        outcome,
        Outcome::Ran {
            evaluated: total,
            reused: 0
        }
    );
    let first = fs::read_to_string(&matrix).unwrap();

    // Unchanged spec, previous matrix from disk: zero cells evaluated,
    // byte-identical output.
    let again = dir.join("again.json");
    let outcome = run(&with_spec(&[
        "run",
        "--incremental",
        "--prev",
        matrix.to_str().unwrap(),
        "--out",
        again.to_str().unwrap(),
    ]))
    .expect("incremental run");
    assert_eq!(
        outcome,
        Outcome::Ran {
            evaluated: 0,
            reused: total
        }
    );
    assert_eq!(fs::read_to_string(&again).unwrap(), first);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn render_regenerates_heatmaps_from_disk() {
    let dir = tempdir("render");
    let matrix = dir.join("matrix.json");
    run(&with_spec(&["run", "--out", matrix.to_str().unwrap()])).expect("full run");
    let (csv, svg) = (dir.join("fig8.csv"), dir.join("fig8.svg"));
    let outcome = run(&[
        "render",
        "--figure8",
        matrix.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ])
    .expect("render");
    // 1 undefended row + 2 defenses; 2 config slices (rob=16, rob=64).
    assert_eq!(
        outcome,
        Outcome::Rendered {
            rows: 3,
            configs: 2
        }
    );
    let csv = fs::read_to_string(&csv).unwrap();
    assert!(csv.starts_with("defense,config,attacks,leaked,leak_rate,"));
    assert_eq!(csv.lines().count(), 1 + 3 * 2);
    let svg = fs::read_to_string(&svg).unwrap();
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_gaps_foreign_parts_and_non_parts() {
    let dir = tempdir("badmerge");
    let p0 = dir.join("p0.json");
    let p1 = dir.join("p1.json");
    run(&with_spec(&[
        "run",
        "--shard",
        "0/2",
        "--out",
        p0.to_str().unwrap(),
    ]))
    .unwrap();
    run(&with_spec(&[
        "run",
        "--shard",
        "1/2",
        "--out",
        p1.to_str().unwrap(),
    ]))
    .unwrap();

    // A missing shard is a hard error naming the count mismatch.
    let out = dir.join("m.json");
    match run(&[
        "merge",
        p0.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]) {
        Err(CliError::Merge(MergeError::WrongCount {
            expected: 2,
            got: 1,
        })) => {}
        other => panic!("expected WrongCount, got {other:?}"),
    }

    // A shard of a *different* spec (one knob value changed) is refused
    // by spec fingerprint even though shard geometry matches.
    let foreign = dir.join("foreign.json");
    run(&[
        "run",
        "--attacks",
        "Spectre v1,Spectre v2,Meltdown",
        "--defenses",
        "LFENCE,NDA",
        "--axis",
        "rob=16,48",
        "--shard",
        "1/2",
        "--out",
        foreign.to_str().unwrap(),
    ])
    .unwrap();
    match run(&[
        "merge",
        p0.to_str().unwrap(),
        foreign.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]) {
        Err(CliError::Merge(MergeError::SpecMismatch { index: 1, .. })) => {}
        other => panic!("expected SpecMismatch, got {other:?}"),
    }

    // Handing a matrix where a part belongs is a typed kind error.
    let matrix = dir.join("matrix.json");
    run(&with_spec(&["run", "--out", matrix.to_str().unwrap()])).unwrap();
    match run(&[
        "merge",
        matrix.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]) {
        Err(CliError::Artifact {
            source: CampaignIoError::Kind { expected, .. },
            ..
        }) => assert_eq!(expected, "campaign-part"),
        other => panic!("expected a Kind error, got {other:?}"),
    }

    // …and rendering a part instead of a matrix is equally typed.
    match run(&["render", "--figure8", p0.to_str().unwrap()]) {
        Err(CliError::Artifact {
            source: CampaignIoError::Kind { expected, .. },
            ..
        }) => assert_eq!(expected, "campaign-matrix"),
        other => panic!("expected a Kind error, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_are_actionable() {
    for (args, needle) in [
        (vec!["run", "--shard", "3/2"], "I < N"),
        (vec!["run", "--shard", "nope"], "I < N"),
        (vec!["run", "--attacks", "NoSuchAttack"], "registry has"),
        (vec!["run", "--defenses", "NoSuchDefense"], "catalog tokens"),
        (
            // A conflicting or malformed stack expression is caught in
            // argument parsing, with the grammar spelled out.
            vec!["run", "--defenses", "kpti+kpti"],
            "appears twice",
        ),
        (vec!["diff", "only-one.json"], "exactly two"),
        (vec!["diff", "a.json", "b.json", "--flag"], "unknown flag"),
        (vec!["run", "--axis", "rob"], "KNOB=V1,V2"),
        (vec!["run", "--axis", "warp=9"], "unknown axis knob"),
        (vec!["run", "--axis", "rob=16,16"], "twice"),
        (
            vec!["run", "--axis", "pred=quantum"],
            "unknown predictor flavor",
        ),
        (
            vec!["run", "--axis", "hardening=magic"],
            "unknown hardening",
        ),
        (vec!["run", "--incremental"], "--prev"),
        (
            // Repeated flags never silently override each other.
            vec!["run", "--attacks", "Meltdown", "--attacks", "RIDL"],
            "given twice",
        ),
        (
            vec!["run", "--shard", "0/2", "--shard", "1/2"],
            "given twice",
        ),
        (
            vec!["run", "--shard", "0/2", "--incremental", "--prev", "x.json"],
            "merge the parts",
        ),
        (vec!["render", "matrix.json"], "--figure8"),
        (vec!["merge"], "at least one"),
        (vec!["explode"], "unknown subcommand"),
    ] {
        match run(&args) {
            Err(CliError::Usage(msg)) => {
                assert!(
                    msg.contains(needle),
                    "usage message for {args:?} should mention '{needle}', got: {msg}"
                );
            }
            other => panic!("expected a usage error for {args:?}, got {other:?}"),
        }
    }
    // Conflicting predictor/hardening axes are caught before the builder
    // could panic.
    match run(&[
        "run",
        "--axis",
        "pred=shared",
        "--axis",
        "hardening=flush-predictors",
    ]) {
        Err(CliError::Usage(msg)) => assert!(msg.contains("pred=flush")),
        other => panic!("expected a usage error, got {other:?}"),
    }
}

#[test]
fn stacked_defense_pipeline_shards_merges_and_renders() {
    // `--defenses` takes stack expressions (token grammar) and preset
    // names; the cross-process pipeline stays bit-identical to the
    // in-process stack oracle.
    let stack_flags: &[&str] = &[
        "--attacks",
        "Spectre v1,Spectre v2,BHI",
        "--defenses",
        "kpti+retpoline+ibpb,stt,linux-default",
    ];
    let oracle = CampaignSpec::builder(UarchConfig::default())
        .attacks(
            ["Spectre v1", "Spectre v2", "BHI"]
                .iter()
                .map(|n| attacks::find(n).expect("registered")),
        )
        .defense_stacks([
            defenses::DefenseStack::parse("kpti+retpoline+ibpb").unwrap(),
            defenses::DefenseStack::parse("stt").unwrap(),
            defenses::presets::linux_default(),
        ])
        .build();
    let expected = CampaignMatrix::run(&oracle).unwrap();

    let dir = tempdir("stacks");
    let with_stack_spec = |extra: &[&str]| -> Vec<String> {
        extra
            .iter()
            .chain(stack_flags.iter())
            .map(|s| (*s).to_owned())
            .collect()
    };
    let (p0, p1) = (dir.join("s0.json"), dir.join("s1.json"));
    main_with(&with_stack_spec(&[
        "run",
        "--shard",
        "0/2",
        "--out",
        p0.to_str().unwrap(),
    ]))
    .expect("stack shard 0");
    main_with(&with_stack_spec(&[
        "run",
        "--shard",
        "1/2",
        "--out",
        p1.to_str().unwrap(),
    ]))
    .expect("stack shard 1");
    let (matrix, csv) = (dir.join("m.json"), dir.join("m.csv"));
    main_with(
        &[
            "merge",
            p0.to_str().unwrap(),
            p1.to_str().unwrap(),
            "--out",
            matrix.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ]
        .map(str::to_owned),
    )
    .expect("stack parts merge");
    assert_eq!(fs::read_to_string(&matrix).unwrap(), expected.to_json());
    let csv = fs::read_to_string(&csv).unwrap();
    assert_eq!(csv, expected.to_csv());
    assert!(csv.contains("KAISER/KPTI+Retpoline+IBPB"));
    assert!(csv.contains("prevent_access+clear_predictions"));

    // Render: stack names become heatmap rows.
    let fig_csv = dir.join("fig8.csv");
    let outcome = run(&[
        "render",
        "--figure8",
        matrix.to_str().unwrap(),
        "--csv",
        fig_csv.to_str().unwrap(),
    ])
    .expect("render stacks");
    assert_eq!(
        outcome,
        Outcome::Rendered {
            rows: 1 + 3,
            configs: 1
        }
    );
    let fig = fs::read_to_string(&fig_csv).unwrap();
    assert!(fig.contains("KAISER/KPTI+Retpoline+IBPB+RSB stuffing"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_compares_saved_matrices() {
    let dir = tempdir("diff");
    let (a, b, c) = (dir.join("a.json"), dir.join("b.json"), dir.join("c.json"));
    run(&with_spec(&["run", "--out", a.to_str().unwrap()])).expect("run a");
    run(&with_spec(&["run", "--out", b.to_str().unwrap()])).expect("run b");
    // Same spec twice: identical.
    let outcome = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]).expect("diff");
    assert_eq!(
        outcome,
        Outcome::Diffed {
            flips: 0,
            baseline_flips: 0,
            cycle_deltas: 0,
            added: 0,
            removed: 0,
            identical: true
        }
    );
    // A third matrix over a different knob grid: the rob=64 slice is
    // shared, the rob=16 vs rob=48 slices appear as removed/added.
    main_with(
        &[
            "run",
            "--attacks",
            "Spectre v1,Spectre v2,Meltdown",
            "--defenses",
            "LFENCE,NDA",
            "--axis",
            "rob=48,64",
            "--out",
            c.to_str().unwrap(),
        ]
        .map(str::to_owned),
    )
    .expect("run c");
    match run(&["diff", a.to_str().unwrap(), c.to_str().unwrap()]).expect("diff a c") {
        Outcome::Diffed {
            added,
            removed,
            identical,
            ..
        } => {
            // 3 baselines + 6 cells per config slice.
            assert_eq!(added, 9);
            assert_eq!(removed, 9);
            assert!(!identical);
        }
        other => panic!("expected Diffed, got {other:?}"),
    }
    // Diffing a missing file is a typed artifact error.
    match run(&["diff", a.to_str().unwrap(), "no-such.json"]) {
        Err(CliError::Artifact { .. }) => {}
        other => panic!("expected an artifact error, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_is_bit_identical_and_resumes_from_checkpoints() {
    let expected = CampaignMatrix::run(&oracle_spec()).unwrap().to_json();
    let dir = tempdir("serve");
    let ckpt = dir.join("ckpt");
    let served = dir.join("served.json");
    let serve_to = |path: &PathBuf| -> Outcome {
        run(&with_spec(&[
            "serve",
            "--workers",
            "3",
            "--chunk",
            "3",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--out",
            path.to_str().unwrap(),
        ]))
        .expect("serve")
    };
    // Fresh scheduled run: nothing to resume, output bit-identical to the
    // in-process single-shot oracle.
    let outcome = serve_to(&served);
    let Outcome::Served {
        chunks,
        resumed: 0,
        executed,
        ..
    } = outcome
    else {
        panic!("unexpected outcome {outcome:?}");
    };
    assert_eq!(executed, chunks);
    assert!(chunks >= 4, "the cube must split into several chunks");
    assert_eq!(fs::read_to_string(&served).unwrap(), expected);

    // Simulate a mid-run kill: drop one chunk file, leaving the rest.
    fs::remove_file(ckpt.join("chunk-00001.json")).expect("checkpoint file exists");
    let resumed_out = dir.join("resumed.json");
    let outcome = serve_to(&resumed_out);
    // `stolen` is scheduling-dependent (an idle worker may legally
    // duplicate the one remaining chunk) — everything else is pinned.
    assert!(
        matches!(
            outcome,
            Outcome::Served {
                chunks: c,
                resumed: r,
                executed: 1,
                ..
            } if c == chunks && r == chunks - 1
        ),
        "unexpected outcome {outcome:?}"
    );
    assert_eq!(fs::read_to_string(&resumed_out).unwrap(), expected);

    // Everything checkpointed now: a third run re-simulates nothing.
    let third = dir.join("third.json");
    let outcome = serve_to(&third);
    assert_eq!(
        outcome,
        Outcome::Served {
            chunks,
            resumed: chunks,
            executed: 0,
            stolen: 0
        }
    );
    assert_eq!(fs::read_to_string(&third).unwrap(), expected);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_serves_hits_reports_misses_and_simulates_on_request() {
    let dir = tempdir("query");
    let matrix = dir.join("matrix.json");
    run(&with_spec(&["run", "--out", matrix.to_str().unwrap()])).expect("full run");

    // Two hits (a cell and a baseline), one cell outside the matrix's
    // knob grid, plus a comment and a blank line.
    let batch = dir.join("batch.txt");
    fs::write(
        &batch,
        "# verdict batch\n\
         Meltdown | NDA | rob=16\n\
         \n\
         Meltdown | none | rob=64\n\
         Meltdown | LFENCE | rob=32\n",
    )
    .unwrap();

    // Without --simulate the out-of-grid cell is a reported miss.
    let outcome = run(&[
        "query",
        matrix.to_str().unwrap(),
        "--queries",
        batch.to_str().unwrap(),
    ])
    .expect("query");
    assert_eq!(
        outcome,
        Outcome::Queried {
            answered: 2,
            hits: 2,
            simulated: 0,
            misses: 1
        }
    );

    // With --simulate the miss is computed on a warm machine and the
    // other answers still come from the index.
    let outcome = run(&[
        "query",
        matrix.to_str().unwrap(),
        "--queries",
        batch.to_str().unwrap(),
        "--simulate",
    ])
    .expect("query --simulate");
    assert_eq!(
        outcome,
        Outcome::Queried {
            answered: 3,
            hits: 2,
            simulated: 1,
            misses: 0
        }
    );

    // Part files ingest too: a half-cube artifact still answers its rows.
    let part = dir.join("part.json");
    run(&with_spec(&[
        "run",
        "--shard",
        "0/2",
        "--out",
        part.to_str().unwrap(),
    ]))
    .expect("shard");
    let one = dir.join("one.txt");
    fs::write(&one, "Meltdown | NDA | rob=16\n").unwrap();
    match run(&[
        "query",
        part.to_str().unwrap(),
        "--queries",
        one.to_str().unwrap(),
    ])
    .expect("query part")
    {
        Outcome::Queried { answered, .. } => assert!(answered <= 1),
        other => panic!("expected Queried, got {other:?}"),
    }

    // A malformed query line is a usage error naming the line.
    let bad = dir.join("bad.txt");
    fs::write(&bad, "Meltdown\n").unwrap();
    match run(&[
        "query",
        matrix.to_str().unwrap(),
        "--queries",
        bad.to_str().unwrap(),
    ]) {
        Err(CliError::Usage(msg)) => {
            assert!(msg.contains("query line 1"), "{msg}");
            assert!(msg.contains("stack field"), "{msg}");
        }
        other => panic!("expected a usage error, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_query_usage_errors_are_actionable() {
    for (args, needle) in [
        (vec!["serve", "--workers", "0"], "positive number"),
        (vec!["serve", "--workers", "lots"], "positive number"),
        (vec!["serve", "--chunk", "0"], "positive task count"),
        (vec!["serve", "--nope"], "unknown flag"),
        (vec!["query", "m.json", "--nope"], "unknown flag"),
        (vec!["query", "--queries"], "needs a value"),
    ] {
        match run(&args) {
            Err(CliError::Usage(msg)) => {
                assert!(
                    msg.contains(needle),
                    "usage message for {args:?} should mention '{needle}', got: {msg}"
                );
            }
            other => panic!("expected a usage error for {args:?}, got {other:?}"),
        }
    }
    // Querying a missing artifact is a typed artifact error, not a panic.
    match run(&["query", "no-such.json", "--queries", "also-missing.txt"]) {
        Err(CliError::Artifact { .. }) => {}
        other => panic!("expected an artifact error, got {other:?}"),
    }
}

#[test]
fn progress_flag_is_accepted_on_every_run_mode() {
    // --progress must not change any outcome or artifact; the lines go to
    // stderr. (Line formatting is unit-tested in bench::campaign_cli.)
    let dir = tempdir("progress");
    let quiet = dir.join("quiet.json");
    let loud = dir.join("loud.json");
    run(&with_spec(&["run", "--out", quiet.to_str().unwrap()])).expect("quiet run");
    let outcome = run(&with_spec(&[
        "run",
        "--progress",
        "--out",
        loud.to_str().unwrap(),
    ]))
    .expect("progress run");
    assert!(matches!(outcome, Outcome::Ran { .. }));
    assert_eq!(
        fs::read_to_string(&quiet).unwrap(),
        fs::read_to_string(&loud).unwrap()
    );
    // Shard mode takes it too.
    let part = dir.join("p.json");
    run(&with_spec(&[
        "run",
        "--progress",
        "--shard",
        "0/2",
        "--out",
        part.to_str().unwrap(),
    ]))
    .expect("progress shard");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_cli_discovers_deterministically_resumes_and_feeds_campaigns() {
    use specgraph::discovery::fuzz::CORPUS_FILE;
    let dir = tempdir("fuzz");
    let (c1, c2) = (dir.join("c1"), dir.join("c2"));
    let registry = dir.join("registry.json");
    let flags = |corpus: &PathBuf| {
        vec![
            "fuzz".to_owned(),
            "--seed".to_owned(),
            "42".to_owned(),
            "--budget".to_owned(),
            "64".to_owned(),
            "--corpus".to_owned(),
            corpus.to_str().unwrap().to_owned(),
        ]
    };
    let mut first = flags(&c1);
    first.extend([
        "--registry-out".to_owned(),
        registry.to_str().unwrap().to_owned(),
    ]);
    let outcome = main_with(&first).expect("fuzz run");
    let Outcome::Fuzzed {
        classified,
        newly_classified,
        rediscovered,
        findings,
        ..
    } = outcome
    else {
        panic!("expected Fuzzed, got {outcome:?}");
    };
    assert_eq!(classified, 64);
    assert_eq!(newly_classified, 64);
    assert!(rediscovered >= 1, "no known attack rediscovered");
    assert!(findings >= 1, "no novel finding in 64 candidates");

    // A second run with the same seed and budget into a fresh directory
    // produces a byte-identical corpus file (the acceptance `cmp`).
    main_with(&flags(&c2)).expect("second fuzz run");
    assert_eq!(
        fs::read(c1.join(CORPUS_FILE)).unwrap(),
        fs::read(c2.join(CORPUS_FILE)).unwrap(),
        "fuzz corpus is not deterministic"
    );

    // Resuming at the same budget re-classifies nothing and leaves the
    // corpus untouched.
    let before = fs::read(c1.join(CORPUS_FILE)).unwrap();
    let resumed = main_with(&flags(&c1)).expect("resume");
    assert!(
        matches!(
            resumed,
            Outcome::Fuzzed {
                newly_classified: 0,
                ..
            }
        ),
        "{resumed:?}"
    );
    assert_eq!(before, fs::read(c1.join(CORPUS_FILE)).unwrap());

    // The grown registry feeds straight back into a campaign run as extra
    // attack rows.
    let matrix_path = dir.join("matrix.json");
    run(&[
        "run",
        "--attacks",
        "Spectre v1",
        "--synthesized",
        registry.to_str().unwrap(),
        "--defenses",
        "none",
        "--out",
        matrix_path.to_str().unwrap(),
    ])
    .expect("synthesized campaign run");
    let matrix = fs::read_to_string(&matrix_path).expect("saved matrix");
    assert!(
        matrix.contains("synth-"),
        "synthesized rows missing from the campaign"
    );

    // Usage errors are actionable.
    let err = run(&["fuzz", "--seed", "not-a-number"]).unwrap_err();
    assert!(err.to_string().contains("--seed"), "{err}");
    let err = run(&["fuzz", "--frobnicate"]).unwrap_err();
    assert!(err.to_string().contains("campaign fuzz"), "{err}");
    // A mismatched resume is refused rather than silently rebuilt.
    let mut mismatch = flags(&c1);
    mismatch[2] = "43".to_owned();
    let err = main_with(&mismatch).unwrap_err();
    assert!(matches!(err, CliError::Fuzz(_)), "{err:?}");
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Fault self-tests
// ---------------------------------------------------------------------------

#[test]
fn fault_quarantine_mode_degrades_and_heals() {
    let outcome = run(&["fault", "quarantine", "--retries", "1"]).expect("quarantine self-test");
    assert_eq!(
        outcome,
        Outcome::FaultTested {
            mode: "quarantine",
            cases: 4
        }
    );
}

#[test]
fn fault_usage_errors_are_actionable() {
    let err = run(&["fault"]).unwrap_err();
    assert!(err.to_string().contains("mode"), "{err}");
    let err = run(&["fault", "meltdown-everything"]).unwrap_err();
    assert!(err.to_string().contains("sweep"), "{err}");
    let err = run(&["fault", "sweep"]).unwrap_err();
    assert!(err.to_string().contains("--dir"), "{err}");
    let err = run(&["fault", "sweep", "--frobnicate"]).unwrap_err();
    assert!(err.to_string().contains("campaign fault"), "{err}");
}

#[test]
fn resilience_flags_parse_and_reject_garbage() {
    let err = run(&with_spec(&["run", "--retries", "many"])).unwrap_err();
    assert!(err.to_string().contains("--retries"), "{err}");
    let err = run(&with_spec(&["run", "--max-cell-cycles", "0"])).unwrap_err();
    assert!(err.to_string().contains("--max-cell-cycles"), "{err}");
}
