//! # `bench` — experiment harness
//!
//! Regenerates every table and figure of "New Models for Understanding and
//! Reasoning about Speculative Execution Attacks" (HPCA 2021):
//!
//! * `cargo run -p bench --bin table1` — Table I (attacks, CVEs, impact)
//!   with simulated outcomes,
//! * `cargo run -p bench --bin table2` — Table II (industry defenses) with
//!   executable verification,
//! * `cargo run -p bench --bin table3` — Table III (authorization/access
//!   nodes) with Theorem-1 race detection and leak verdicts,
//! * `cargo run -p bench --bin figures [figN…]` — Figures 1–9 as DOT plus
//!   race/ordering analysis,
//! * `cargo run -p bench --bin insufficiency` — the §V-B insufficient
//!   defense experiment,
//! * `cargo run -p bench --bin overhead` — the security/performance
//!   trade-off across the four defense strategies (Insight 5),
//! * `cargo run -p bench --bin campaign` — the campaign pipeline CLI:
//!   run a campaign (whole, one `--shard i/n` slice, or `--incremental`
//!   against a saved matrix), merge part files, and re-render the
//!   Figure-8 hardening heatmaps from a saved matrix ([`campaign_cli`],
//!   [`heatmap`]),
//! * `cargo bench -p bench` — Criterion micro-benchmarks (race detection
//!   scaling, simulator throughput, channel performance, attack costs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign_cli;
pub mod heatmap;

use isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use uarch::{Machine, UarchConfig, UarchError};

/// A benign workload for overhead measurement: sums a `len`-word array with
/// a data-dependent branch (taken ~50%), modeling branchy integer code.
///
/// # Panics
///
/// Panics only if the internal program fails to assemble (it cannot).
#[must_use]
pub fn workload_array_sum(len: u64) -> Program {
    ProgramBuilder::new()
        .imm(Reg::R0, 0x1000) // base
        .imm(Reg::R1, len) // remaining
        .imm(Reg::R2, 0) // sum
        .label("loop")
        .expect("fresh label")
        .load(Reg::R3, Reg::R0, 0)
        .branch_if(Cond::Eq, Reg::R3, Reg::ZERO, "skip")
        .alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R3)
        .label("skip")
        .expect("fresh label")
        .alu_imm(AluOp::Add, Reg::R0, Reg::R0, 8)
        .alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1)
        .branch_if(Cond::Ne, Reg::R1, Reg::ZERO, "loop")
        .halt()
        .build()
        .expect("workload assembles")
}

/// A pointer-chasing workload (`len` dependent loads), modeling
/// memory-latency-bound code.
///
/// # Panics
///
/// Panics only if the internal program fails to assemble (it cannot).
#[must_use]
pub fn workload_pointer_chase(len: u64) -> Program {
    let mut b = ProgramBuilder::new().imm(Reg::R0, 0x1000);
    for _ in 0..len {
        b = b.load(Reg::R0, Reg::R0, 0);
    }
    b.halt().build().expect("workload assembles")
}

/// Prepares a machine with the workload's memory mapped and initialized.
///
/// # Errors
///
/// Propagates [`UarchError`] from memory setup.
pub fn prepare_workload_memory(m: &mut Machine, words: u64) -> Result<(), UarchError> {
    for i in 0..words {
        let addr = 0x1000 + i * 8;
        m.map_user_page(addr)?;
        // Pointer chase: each word points at the next (and 0 terminates
        // nothing — the chase length is bounded by the program).
        m.write_u64(addr, addr + 8)?;
    }
    m.map_user_page(0x1000 + words * 8)?;
    Ok(())
}

/// Runs a workload under a configuration and returns total cycles.
///
/// # Errors
///
/// Propagates [`UarchError`] from the run.
pub fn measure_cycles(cfg: &UarchConfig, program: &Program, words: u64) -> Result<u64, UarchError> {
    let mut m = Machine::new(cfg.clone());
    prepare_workload_memory(&mut m, words)?;
    Ok(m.run(program)?.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_to_completion() {
        let cfg = UarchConfig::default();
        let sum = measure_cycles(&cfg, &workload_array_sum(32), 64).unwrap();
        let chase = measure_cycles(&cfg, &workload_pointer_chase(16), 64).unwrap();
        assert!(sum > 0);
        assert!(chase > 0);
    }

    #[test]
    fn defenses_cost_cycles_in_the_expected_order() {
        // Insight 5: strategy ① (serialize everything) costs the most;
        // relaxed strategies cost less; predictor flushing is ~free for a
        // single-context workload.
        let words = 64;
        let p = workload_array_sum(48);
        let base = measure_cycles(&UarchConfig::default(), &p, words).unwrap();
        let s1 = measure_cycles(
            &UarchConfig::builder().no_speculative_loads(true).build(),
            &p,
            words,
        )
        .unwrap();
        let s2 = measure_cycles(&UarchConfig::builder().nda(true).build(), &p, words).unwrap();
        let s3 = measure_cycles(&UarchConfig::builder().stt(true).build(), &p, words).unwrap();
        let s4 = measure_cycles(
            &UarchConfig::builder()
                .flush_predictors_on_switch(true)
                .build(),
            &p,
            words,
        )
        .unwrap();
        assert!(s1 >= s2, "① {s1} should cost at least ② {s2}");
        assert!(s2 >= s3, "② {s2} should cost at least ③ (STT) {s3}");
        assert!(s1 > base, "strategy ① must slow the workload");
        assert_eq!(s4, base, "④ is free without context switches");
    }
}
