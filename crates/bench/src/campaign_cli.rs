//! The `campaign` command-line tool: campaigns as a **multi-process
//! artifact pipeline**.
//!
//! ```text
//! campaign run    --axis hardening=figure8 --shard 0/2 --out part0.json
//! campaign run    --axis hardening=figure8 --shard 1/2 --out part1.json
//! campaign merge  part0.json part1.json --out matrix.json
//! campaign render --figure8 matrix.json --csv fig8.csv --svg fig8.svg
//! campaign run    --axis hardening=figure8 --incremental --prev matrix.json --out matrix.json
//! ```
//!
//! Every subcommand is a thin wrapper over `specgraph::campaign`: `run`
//! evaluates a whole cube (or one `--shard i/n` slice, written as a
//! [`CampaignPart`] file), `merge` validates and concatenates part files
//! into a matrix (spec-fingerprint, shard-index and coverage mismatches
//! are hard errors), and `render --figure8` regenerates the Figure-8
//! hardening heatmaps from a *saved* matrix with zero re-simulation.
//!
//! Argument parsing is hand-rolled (the workspace builds offline, no
//! `clap`), and lives here — in the library — so the integration tests
//! drive the exact code path the binary runs.

use crate::heatmap::Figure8View;
use specgraph::attacks::{self, Attack, AttackError};
use specgraph::campaign::{
    CampaignIoError, CampaignMatrix, CampaignPart, CampaignSpec, Hardening, IncrementalReport,
    Knob, KnobValue, MergeError, PredictorFlavor,
};
use specgraph::defenses::{self, Defense};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use uarch::UarchConfig;

/// The usage text `campaign --help` (and every usage error) prints.
pub const USAGE: &str = "\
campaign — run, shard, merge and render attack×defense×config campaigns

USAGE:
  campaign run    [SPEC] [--shard I/N] [--out FILE] [--csv FILE]
                  [--incremental --prev MATRIX.json]
  campaign merge  PART.json... --out FILE [--csv FILE]
  campaign render --figure8 MATRIX.json [--csv FILE] [--svg FILE]

SPEC (must be identical for every shard of one campaign):
  --attacks NAMES    comma-separated attack names (default: full registry)
  --defenses NAMES   comma-separated defense names, or 'none' (default: full registry)
  --axis KNOB=V,V..  add a config axis (repeatable; axes multiply):
                     numeric: rob fetch issue sets ways lfb stbuf rsb
                              hitlat misslat permlat
                     pred=shared|flush|no-indirect|stuffed-rsb|all
                     hardening=baseline|no-spec-loads|eager-permcheck|nda|stt|
                               delay-on-miss|invisispec|cleanup-spec|
                               flush-predictors|figure8|all
  --threads N        worker threads (default: all cores)

  `campaign run --shard I/N` writes shard I of N as a part file; run all
  N shards (any machines, any order), then `campaign merge` the parts —
  the result is bit-identical to a single-process run. With
  `--incremental --prev`, only cells whose fingerprint is absent from
  the previous matrix are re-simulated.
";

/// What a successfully executed subcommand did (the binary prints this;
/// tests assert on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `run` over the full cube (fresh or incremental).
    Ran {
        /// Tasks actually simulated.
        evaluated: usize,
        /// Tasks reused from `--prev` by fingerprint.
        reused: usize,
    },
    /// `run --shard i/n`: one part evaluated.
    RanShard {
        /// Shard position.
        index: usize,
        /// Shard count.
        of: usize,
        /// Tasks this shard evaluated.
        tasks: usize,
    },
    /// `merge`: parts combined into a matrix.
    Merged {
        /// Number of part files merged.
        parts: usize,
        /// Total tasks in the merged matrix.
        tasks: usize,
    },
    /// `render`: heatmaps regenerated from a saved matrix.
    Rendered {
        /// Heatmap rows (defenses + the undefended row).
        rows: usize,
        /// Config-slice columns.
        configs: usize,
    },
    /// `--help` was requested; usage was printed.
    Help,
}

/// Why a `campaign` invocation failed.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the message says what to fix.
    Usage(String),
    /// A simulation failed.
    Attack(AttackError),
    /// Reading or writing a campaign artifact failed.
    Artifact {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        source: CampaignIoError,
    },
    /// Part files do not assemble into one campaign.
    Merge(MergeError),
    /// Plain file I/O (e.g. writing a CSV) failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        source: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Attack(e) => write!(f, "simulation failed: {e}"),
            CliError::Artifact { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CliError::Merge(e) => write!(f, "cannot merge parts: {e}"),
            CliError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Attack(e) => Some(e),
            CliError::Artifact { source, .. } => Some(source),
            CliError::Merge(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            CliError::Usage(_) => None,
        }
    }
}

impl From<AttackError> for CliError {
    fn from(e: AttackError) -> Self {
        CliError::Attack(e)
    }
}

impl From<MergeError> for CliError {
    fn from(e: MergeError) -> Self {
        CliError::Merge(e)
    }
}

/// Parses and executes one `campaign` invocation (everything after the
/// program name). This is the exact entry point the binary calls.
///
/// # Errors
///
/// [`CliError`] — usage problems, simulation failures, artifact I/O, or
/// merge validation.
pub fn main_with(args: &[String]) -> Result<Outcome, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("--help" | "-h" | "help") => {
            write_stdout(USAGE)?;
            write_stdout("\n")?;
            Ok(Outcome::Help)
        }
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown subcommand '{other}' (expected run, merge or render)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Spec flags
// ---------------------------------------------------------------------------

/// The spec-defining flags, collected before expansion so every shard
/// process can rebuild the identical [`CampaignSpec`] (enforced at merge
/// time by the spec fingerprint).
#[derive(Debug, Default)]
struct SpecArgs {
    attacks: Option<Vec<String>>,
    defenses: Option<Vec<String>>,
    axes: Vec<(Knob, Vec<KnobValue>)>,
    threads: usize,
}

impl SpecArgs {
    /// Consumes a spec flag if `flag` is one; returns whether it was.
    fn take(
        &mut self,
        flag: &str,
        value: &mut dyn FnMut() -> Result<String, CliError>,
    ) -> Result<bool, CliError> {
        // A repeated flag silently overriding (or surprising a user who
        // expected accumulation) would produce a shard of a different
        // spec than intended — reject repeats outright, like a repeated
        // axis knob.
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--attacks" => {
                once(self.attacks.is_some())?;
                self.attacks = Some(split_list(&value()?));
            }
            "--defenses" => {
                once(self.defenses.is_some())?;
                let v = value()?;
                self.defenses = Some(if v == "none" {
                    Vec::new()
                } else {
                    split_list(&v)
                });
            }
            "--axis" => {
                let v = value()?;
                let (knob, values) = parse_axis(&v)?;
                if self.axes.iter().any(|(k, _)| *k == knob) {
                    return Err(CliError::Usage(format!(
                        "axis '{}' given twice",
                        knob_token(knob)
                    )));
                }
                self.axes.push((knob, values));
            }
            "--threads" => {
                once(self.threads != 0)?;
                let v = value()?;
                self.threads = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--threads needs a number, got '{v}'")))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Expands the flags into a spec, with every builder panic turned
    /// into a usage error first.
    fn build(self) -> Result<CampaignSpec, CliError> {
        let mut builder = CampaignSpec::builder(UarchConfig::default());
        if let Some(names) = &self.attacks {
            let mut list: Vec<&'static dyn Attack> = Vec::new();
            for name in names {
                list.push(attacks::find(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown attack '{name}'; the registry has: {}",
                        attacks::registry()
                            .iter()
                            .map(|a| a.info().name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?);
            }
            builder = builder.attacks(list);
        }
        if let Some(names) = &self.defenses {
            let mut list: Vec<Defense> = Vec::new();
            for name in names {
                list.push(*defenses::find(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown defense '{name}'; the registry has: {}",
                        defenses::registry()
                            .iter()
                            .map(|d| d.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?);
            }
            builder = builder.defenses(list);
        }
        let pins_predictor = self.axes.iter().any(|(k, _)| *k == Knob::Predictor);
        let flush_hardening = self
            .axes
            .iter()
            .any(|(_, vs)| vs.contains(&KnobValue::Hardening(Hardening::FlushPredictors)));
        if pins_predictor && flush_hardening {
            return Err(CliError::Usage(
                "--axis pred=… pins the predictor flags and cannot combine with \
                 an 'flush-predictors' hardening value (pred=flush covers that \
                 slice)"
                    .to_owned(),
            ));
        }
        for (knob, values) in self.axes {
            builder = builder.axis(knob, values);
        }
        Ok(builder.threads(self.threads).build())
    }
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(|p| p.trim().to_owned())
        .filter(|p| !p.is_empty())
        .collect()
}

fn knob_token(knob: Knob) -> &'static str {
    match knob {
        Knob::RobDepth => "rob",
        Knob::FetchWidth => "fetch",
        Knob::IssueWidth => "issue",
        Knob::CacheSets => "sets",
        Knob::CacheWays => "ways",
        Knob::LfbEntries => "lfb",
        Knob::StoreBufferEntries => "stbuf",
        Knob::RsbDepth => "rsb",
        Knob::CacheHitLatency => "hitlat",
        Knob::CacheMissLatency => "misslat",
        Knob::PermissionCheckLatency => "permlat",
        Knob::Predictor => "pred",
        Knob::Hardening => "hardening",
        _ => "?",
    }
}

fn parse_axis(arg: &str) -> Result<(Knob, Vec<KnobValue>), CliError> {
    let (token, list) = arg
        .split_once('=')
        .ok_or_else(|| CliError::Usage(format!("--axis needs KNOB=V1,V2,…, got '{arg}'")))?;
    let numeric = |knob: Knob| -> Result<(Knob, Vec<KnobValue>), CliError> {
        let values = split_list(list)
            .iter()
            .map(|v| {
                v.parse::<u64>().map(KnobValue::Num).map_err(|_| {
                    CliError::Usage(format!("axis '{token}' needs numbers, got '{v}'"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((knob, values))
    };
    let (knob, values) = match token {
        "rob" => numeric(Knob::RobDepth)?,
        "fetch" => numeric(Knob::FetchWidth)?,
        "issue" => numeric(Knob::IssueWidth)?,
        "sets" => numeric(Knob::CacheSets)?,
        "ways" => numeric(Knob::CacheWays)?,
        "lfb" => numeric(Knob::LfbEntries)?,
        "stbuf" => numeric(Knob::StoreBufferEntries)?,
        "rsb" => numeric(Knob::RsbDepth)?,
        "hitlat" => numeric(Knob::CacheHitLatency)?,
        "misslat" => numeric(Knob::CacheMissLatency)?,
        "permlat" => numeric(Knob::PermissionCheckLatency)?,
        "pred" => {
            let values = if list == "all" {
                PredictorFlavor::all().map(KnobValue::Predictor).to_vec()
            } else {
                split_list(list)
                    .iter()
                    .map(|v| {
                        PredictorFlavor::from_token(v)
                            .map(KnobValue::Predictor)
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown predictor flavor '{v}' (shared, flush, \
                                     no-indirect, stuffed-rsb, all)"
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            (Knob::Predictor, values)
        }
        "hardening" => {
            let values = match list {
                "figure8" => Hardening::figure8().map(KnobValue::Hardening).to_vec(),
                "all" => Hardening::all().map(KnobValue::Hardening).to_vec(),
                _ => split_list(list)
                    .iter()
                    .map(|v| {
                        Hardening::from_token(v)
                            .map(KnobValue::Hardening)
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown hardening '{v}' (try one of: {}, figure8, all)",
                                    Hardening::all().map(Hardening::token).join(", ")
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            (Knob::Hardening, values)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown axis knob '{other}' (see campaign --help)"
            )))
        }
    };
    if values.is_empty() {
        return Err(CliError::Usage(format!("axis '{token}' has no values")));
    }
    for (i, v) in values.iter().enumerate() {
        if values[..i].contains(v) {
            return Err(CliError::Usage(format!(
                "axis '{token}' lists a value twice"
            )));
        }
    }
    Ok((knob, values))
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<Outcome, CliError> {
    let mut spec_args = SpecArgs::default();
    let mut shard: Option<(usize, usize)> = None;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut incremental = false;
    let mut prev: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag '{flag}' needs a value")))
        };
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--shard" => {
                once(shard.is_some())?;
                let v = value()?;
                shard = Some(parse_shard(&v)?);
            }
            "--out" => {
                once(out.is_some())?;
                out = Some(PathBuf::from(value()?));
            }
            "--csv" => {
                once(csv.is_some())?;
                csv = Some(PathBuf::from(value()?));
            }
            "--incremental" => incremental = true,
            "--prev" => {
                once(prev.is_some())?;
                prev = Some(PathBuf::from(value()?));
            }
            other => {
                if !spec_args.take(other, &mut value)? {
                    return Err(CliError::Usage(format!(
                        "unknown flag '{other}' for 'campaign run'"
                    )));
                }
            }
        }
        i += 1;
    }
    if incremental != prev.is_some() {
        return Err(CliError::Usage(
            "--incremental and --prev MATRIX.json go together".to_owned(),
        ));
    }
    let spec = spec_args.build()?;
    if let Some((index, of)) = shard {
        if incremental {
            return Err(CliError::Usage(
                "--shard and --incremental do not combine; merge the parts, \
                 then re-run incrementally against the merged matrix"
                    .to_owned(),
            ));
        }
        if csv.is_some() {
            return Err(CliError::Usage(
                "--csv applies to full matrices; merge the parts first".to_owned(),
            ));
        }
        let part = spec.shards(of).swap_remove(index).run()?;
        emit(out.as_deref(), &part.to_json())?;
        eprintln!(
            "campaign: shard {index}/{of} evaluated {} of {} task(s) \
             (spec fingerprint {:#018x})",
            part.len(),
            spec.total_tasks(),
            part.spec_fingerprint(),
        );
        Ok(Outcome::RanShard {
            index,
            of,
            tasks: part.len(),
        })
    } else {
        let previous = prev.as_deref().map(load_matrix).transpose()?;
        let (matrix, report) = CampaignMatrix::run_incremental(&spec, previous.as_ref())?;
        emit(out.as_deref(), &matrix.to_json())?;
        if let Some(path) = &csv {
            write_file(path, &matrix.to_csv())?;
        }
        describe_report(report);
        Ok(Outcome::Ran {
            evaluated: report.evaluated,
            reused: report.reused,
        })
    }
}

fn cmd_merge(args: &[String]) -> Result<Outcome, CliError> {
    let mut part_paths: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--out' needs a value".to_owned())
                })?));
            }
            "--csv" => {
                i += 1;
                csv = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--csv' needs a value".to_owned())
                })?));
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{flag}' for 'campaign merge'"
                )))
            }
            path => part_paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if part_paths.is_empty() {
        return Err(CliError::Usage(
            "campaign merge needs at least one PART.json".to_owned(),
        ));
    }
    let parts = part_paths
        .iter()
        .map(|p| {
            CampaignPart::load_json(p).map_err(|source| CliError::Artifact {
                path: p.clone(),
                source,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let n = parts.len();
    let matrix = CampaignMatrix::merge(parts)?;
    let (a, d, c) = matrix.shape();
    emit(out.as_deref(), &matrix.to_json())?;
    if let Some(path) = &csv {
        write_file(path, &matrix.to_csv())?;
    }
    let tasks = a * c + a * d * c;
    eprintln!("campaign: merged {n} part(s) into a {a}×{d}×{c} matrix ({tasks} task(s))");
    Ok(Outcome::Merged { parts: n, tasks })
}

fn cmd_render(args: &[String]) -> Result<Outcome, CliError> {
    let mut figure8 = false;
    let mut matrix_path: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut svg: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure8" => figure8 = true,
            "--csv" => {
                i += 1;
                csv = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--csv' needs a value".to_owned())
                })?));
            }
            "--svg" => {
                i += 1;
                svg = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--svg' needs a value".to_owned())
                })?));
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{flag}' for 'campaign render'"
                )))
            }
            path if matrix_path.is_none() => matrix_path = Some(PathBuf::from(path)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra argument '{extra}'"
                )))
            }
        }
        i += 1;
    }
    if !figure8 {
        return Err(CliError::Usage(
            "campaign render needs a mode; only --figure8 exists today".to_owned(),
        ));
    }
    let path = matrix_path.ok_or_else(|| {
        CliError::Usage("campaign render needs a MATRIX.json to render".to_owned())
    })?;
    let matrix = load_matrix(&path)?;
    let view = Figure8View::from_matrix(&matrix);
    write_stdout(&view.to_ascii())?;
    if let Some(p) = &csv {
        write_file(p, &view.to_csv())?;
    }
    if let Some(p) = &svg {
        write_file(p, &view.to_svg())?;
    }
    eprintln!(
        "campaign: rendered {} row(s) × {} config(s) from the saved matrix — \
         0 cell(s) re-simulated",
        view.rows.len(),
        view.configs.len()
    );
    Ok(Outcome::Rendered {
        rows: view.rows.len(),
        configs: view.configs.len(),
    })
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

fn parse_shard(v: &str) -> Result<(usize, usize), CliError> {
    let bad = || CliError::Usage(format!("--shard needs I/N with I < N, got '{v}'"));
    let (i, n) = v.split_once('/').ok_or_else(bad)?;
    let (i, n): (usize, usize) = (i.parse().map_err(|_| bad())?, n.parse().map_err(|_| bad())?);
    if n == 0 || i >= n {
        return Err(bad());
    }
    Ok((i, n))
}

fn load_matrix(path: &Path) -> Result<CampaignMatrix, CliError> {
    CampaignMatrix::load_json(path).map_err(|source| CliError::Artifact {
        path: path.to_path_buf(),
        source,
    })
}

fn write_file(path: &Path, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes `content` to `path`, or to stdout when no path was given.
fn emit(path: Option<&Path>, content: &str) -> Result<(), CliError> {
    match path {
        Some(p) => write_file(p, content),
        None => write_stdout(content),
    }
}

/// Writes to stdout, treating a closed pipe (`campaign … | head`) as
/// normal early termination instead of the default `print!` panic.
fn write_stdout(content: &str) -> Result<(), CliError> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    match out.write_all(content.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(source) => Err(CliError::Io {
            path: PathBuf::from("<stdout>"),
            source,
        }),
    }
}

fn describe_report(report: IncrementalReport) {
    eprintln!(
        "campaign: evaluated {} task(s), reused {} from the previous matrix",
        report.evaluated, report.reused
    );
}
