//! The `campaign` command-line tool: campaigns as a **multi-process
//! artifact pipeline**.
//!
//! ```text
//! campaign run    --axis hardening=figure8 --shard 0/2 --out part0.json
//! campaign run    --axis hardening=figure8 --shard 1/2 --out part1.json
//! campaign merge  part0.json part1.json --out matrix.json
//! campaign render --figure8 matrix.json --csv fig8.csv --svg fig8.svg
//! campaign run    --axis hardening=figure8 --incremental --prev matrix.json --out matrix.json
//! campaign serve  --axis hardening=figure8 --workers 4 --checkpoint ckpt/ --out matrix.json
//! campaign query  matrix.json --queries batch.txt --simulate
//! campaign fuzz   --seed 42 --budget 512 --corpus corpus/ --registry-out found.json
//! campaign run    --synthesized found.json --axis hardening=figure8 --out matrix.json
//! ```
//!
//! Every subcommand is a thin wrapper over `specgraph::campaign` (and,
//! for `serve`/`query`, `specgraph::serve`): `run` evaluates a whole cube
//! (or one `--shard i/n` slice, written as a [`CampaignPart`] file),
//! `merge` validates and concatenates part files into a matrix
//! (spec-fingerprint, shard-index and coverage mismatches are hard
//! errors), and `render --figure8` regenerates the Figure-8 hardening
//! heatmaps from a *saved* matrix with zero re-simulation. `serve` runs
//! the cube on the resumable work-stealing scheduler — kill it mid-run
//! and the next invocation resumes from the `--checkpoint` directory
//! without re-simulating a single completed cell. `query` answers point
//! lookups (`ATTACK | STACK | KNOBS` lines) from saved artifacts through
//! the memoized [`VerdictStore`], optionally simulating misses. `fuzz`
//! runs the §V-A discovery loop (`specgraph::discovery::fuzz`): a seeded
//! generator over the design-space dimensions, the differential
//! Theorem-1-vs-simulation oracle, and the shrinking minimizer; novel
//! leaking shapes land in a [`SynthesizedRegistry`] file that
//! `--synthesized` feeds back into any campaign as extra attack rows.
//!
//! Argument parsing is hand-rolled (the workspace builds offline, no
//! `clap`), and lives here — in the library — so the integration tests
//! drive the exact code path the binary runs.

use crate::heatmap::Figure8View;
use specgraph::attacks::{self, Attack, AttackError};
use specgraph::campaign::{
    CampaignIoError, CampaignMatrix, CampaignPart, CampaignSpec, Hardening, IncrementalReport,
    Knob, KnobValue, MatrixDiff, MergeError, PredictorFlavor, TaskEvent,
};
use specgraph::defenses::{self, presets, DefenseStack};
use specgraph::discovery::fuzz::{
    self, Corpus, CorpusError, FuzzConfig, FuzzError, SynthesizedRegistry,
};
use specgraph::fault::{self, PanickingAttack};
use specgraph::serve::{AnswerSource, ChunkEvent, Scheduler, ServeError, VerdictStore};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use uarch::UarchConfig;

/// The usage text `campaign --help` (and every usage error) prints.
pub const USAGE: &str = "\
campaign — run, shard, merge, render, diff, serve, query, fuzz and
           fault-test attack×defense-stack×config campaigns

USAGE:
  campaign run    [SPEC] [--shard I/N] [--out FILE] [--csv FILE] [--progress]
                  [--incremental --prev MATRIX.json]
  campaign merge  PART.json... --out FILE [--csv FILE]
  campaign render --figure8 MATRIX.json [--csv FILE] [--svg FILE]
  campaign diff   OLD.json NEW.json
  campaign serve  [SPEC] [--workers N] [--chunk T] [--checkpoint DIR]
                  [--out FILE] [--csv FILE] [--progress]
  campaign query  ARTIFACT.json... [--queries FILE] [--simulate]
  campaign fuzz   [--seed N] [--budget N] [--corpus DIR] [--threads N]
                  [--checkpoint-every N] [--minimize|--no-minimize]
                  [--registry-out FILE]
  campaign fault  sweep|sweep-fuzz|quarantine --dir DIR [--seed N]
                  [--retries N]

SPEC (must be identical for every shard of one campaign):
  --attacks NAMES    comma-separated attack names (default: full registry)
  --defenses STACKS  comma-separated defense stacks, or 'none'
                     (default: full registry, one singleton stack each).
                     Each stack joins catalog defenses with '+', by short
                     token or full name: kpti+retpoline+ibpb. Preset
                     bundles: linux-default, microcode-only, academic-stt,
                     academic-invisible.
  --synthesized F    add the attacks of a fuzz-grown registry file
                     (written by `campaign fuzz --registry-out`) to the
                     attack axis, after the named/registry rows
  --axis KNOB=V,V..  add a config axis (repeatable; axes multiply):
                     numeric: rob fetch issue sets ways lfb stbuf rsb
                              hitlat misslat permlat
                     pred=shared|flush|no-indirect|stuffed-rsb|all
                     hardening=baseline|no-spec-loads|eager-permcheck|nda|stt|
                               delay-on-miss|invisispec|cleanup-spec|
                               flush-predictors|figure8|all
  --threads N        worker threads (default: all cores)
  --retries N        retry a cell whose simulation panics N times (with
                     backoff) before quarantining it as a typed degraded
                     row instead of aborting the campaign (default: 0)
  --max-cell-cycles N  per-cell cycle budget: a simulation exceeding it
                     degrades to a typed timed-out row (graph verdicts
                     kept) instead of failing the run
  --progress         print per-slice completed/total + ETA lines to stderr

  `campaign run --shard I/N` writes shard I of N as a part file; run all
  N shards (any machines, any order), then `campaign merge` the parts —
  the result is bit-identical to a single-process run. With
  `--incremental --prev`, only cells whose fingerprint is absent from
  the previous matrix are re-simulated. `campaign diff` compares two
  saved matrices: verdict flips, baseline cycle deltas, added/removed
  cells.

  `campaign serve` runs the cube on a resumable work-stealing scheduler:
  the cube splits into --chunk T-task chunks pulled by --workers threads
  (idle workers steal straggler chunks; results are deterministic, so
  duplicated work is harmless). With --checkpoint DIR every finished
  chunk is written to disk, and a killed run's next invocation resumes
  from DIR, re-simulating zero completed cells — the final matrix is
  bit-identical to `campaign run` either way.

  `campaign query` ingests saved matrices/parts/checkpoints into a
  memoized verdict store and answers one query per line from --queries
  FILE (or stdin):  ATTACK | STACK | KNOB=V KNOB=V…
  where STACK is a stack expression, preset, or 'none' (undefended
  baseline), and the knob tokens are the --axis vocabulary, one value
  each (empty = default config). Misses report 'miss' unless --simulate
  is given, which computes the missing cell on a warm machine exactly as
  the campaign engine would (concurrent identical misses coalesce onto
  one flight).

  `campaign fuzz` grows the attack catalog automatically: a seeded
  generator walks the paper's (secret source × delay × channel) design
  space with biased mutations, every candidate is classified by BOTH
  Theorem 1 on the lifted graph and a batched simulation, divergences
  are recorded as first-class findings, and novel leaking shapes —
  deduplicated by graph fingerprint, shrunk to 1-minimal — are saved.
  The loop is deterministic for a given --seed (independent of
  --threads); with --corpus DIR the corpus persists and a re-run with a
  larger --budget resumes where the last one stopped. --registry-out
  writes the findings as a registry file for `run --synthesized`.

  `campaign fault` self-tests the pipeline's failure model inside --dir
  (a scratch workspace it wipes). `sweep` runs a seeded crash sweep over
  a small checkpointed serve grid: every write index k in the run's
  write sequence gets one pass with an injected fault (crash, torn
  write, ENOSPC, failed rename — chosen by --seed) at write #k, and the
  resumed output must be bit-identical to a fault-free run with zero
  completed cells re-simulated. `sweep-fuzz` proves the same for the
  fuzz corpus checkpoint cadence. `quarantine` injects a panicking cell
  and shows --retries exhausting into a typed quarantined row, then the
  incremental re-run healing it.
";

/// What a successfully executed subcommand did (the binary prints this;
/// tests assert on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `run` over the full cube (fresh or incremental).
    Ran {
        /// Tasks actually simulated.
        evaluated: usize,
        /// Tasks reused from `--prev` by fingerprint.
        reused: usize,
    },
    /// `run --shard i/n`: one part evaluated.
    RanShard {
        /// Shard position.
        index: usize,
        /// Shard count.
        of: usize,
        /// Tasks this shard evaluated.
        tasks: usize,
    },
    /// `merge`: parts combined into a matrix.
    Merged {
        /// Number of part files merged.
        parts: usize,
        /// Total tasks in the merged matrix.
        tasks: usize,
    },
    /// `render`: heatmaps regenerated from a saved matrix.
    Rendered {
        /// Heatmap rows (defense stacks + the undefended row).
        rows: usize,
        /// Config-slice columns.
        configs: usize,
    },
    /// `diff`: two saved matrices compared.
    Diffed {
        /// Cells whose verdict changed.
        flips: usize,
        /// Baselines whose leak verdict changed.
        baseline_flips: usize,
        /// Baselines whose cycle count changed.
        cycle_deltas: usize,
        /// Cell/baseline keys only in the newer matrix.
        added: usize,
        /// Cell/baseline keys only in the older matrix.
        removed: usize,
        /// Whether the matrices are identical.
        identical: bool,
    },
    /// `serve`: the cube ran on the resumable work-stealing scheduler.
    Served {
        /// Chunks the cube was decomposed into.
        chunks: usize,
        /// Chunks restored from checkpoint files (zero re-simulation).
        resumed: usize,
        /// Chunks simulated by this invocation's workers.
        executed: usize,
        /// Straggler chunks speculatively duplicated by idle workers.
        stolen: usize,
    },
    /// `query`: a batch of point queries was answered.
    Queried {
        /// Queries answered (hits + simulations + coalesced).
        answered: usize,
        /// Answers served from the memoized index.
        hits: usize,
        /// Answers computed by a miss-path simulation (`--simulate`).
        simulated: usize,
        /// Queries that missed without `--simulate`.
        misses: usize,
    },
    /// `fuzz`: the discovery loop classified a corpus of synthesized
    /// scenarios.
    Fuzzed {
        /// Candidates classified in total (including resumed ones).
        classified: u64,
        /// Candidates classified by this invocation.
        newly_classified: u64,
        /// Oracle divergences recorded (all causally explained).
        divergences: usize,
        /// Known catalog attacks rediscovered from scratch.
        rediscovered: usize,
        /// Novel 1-minimal leaking shapes in the corpus.
        findings: usize,
    },
    /// `fault`: a fault-injection self-test ran to completion.
    FaultTested {
        /// Which mode ran: `sweep`, `sweep-fuzz` or `quarantine`.
        mode: &'static str,
        /// Sweep cases proven (write points) or cells quarantined.
        cases: usize,
    },
    /// `--help` was requested; usage was printed.
    Help,
}

/// Why a `campaign` invocation failed.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the message says what to fix.
    Usage(String),
    /// A simulation failed.
    Attack(AttackError),
    /// Reading or writing a campaign artifact failed.
    Artifact {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        source: CampaignIoError,
    },
    /// Part files do not assemble into one campaign.
    Merge(MergeError),
    /// The serving layer failed (scheduler or verdict store).
    Serve(ServeError),
    /// The fuzzing loop failed (oracle, corpus I/O, or resume mismatch).
    Fuzz(FuzzError),
    /// A synthesized-registry file could not be read or re-assembled.
    Registry {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        source: CorpusError,
    },
    /// Plain file I/O (e.g. writing a CSV) failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        source: std::io::Error,
    },
    /// A `campaign fault` self-test found the pipeline not crash-safe.
    Fault(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Attack(e) => write!(f, "simulation failed: {e}"),
            CliError::Artifact { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CliError::Merge(e) => write!(f, "cannot merge parts: {e}"),
            CliError::Serve(e) => write!(f, "serving failed: {e}"),
            CliError::Fuzz(e) => write!(f, "fuzzing failed: {e}"),
            CliError::Registry { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CliError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CliError::Fault(msg) => write!(f, "fault self-test failed: {msg}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Attack(e) => Some(e),
            CliError::Artifact { source, .. } => Some(source),
            CliError::Merge(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Fuzz(e) => Some(e),
            CliError::Registry { source, .. } => Some(source),
            CliError::Io { source, .. } => Some(source),
            CliError::Usage(_) | CliError::Fault(_) => None,
        }
    }
}

impl From<AttackError> for CliError {
    fn from(e: AttackError) -> Self {
        CliError::Attack(e)
    }
}

impl From<MergeError> for CliError {
    fn from(e: MergeError) -> Self {
        CliError::Merge(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<FuzzError> for CliError {
    fn from(e: FuzzError) -> Self {
        CliError::Fuzz(e)
    }
}

/// Parses and executes one `campaign` invocation (everything after the
/// program name). This is the exact entry point the binary calls.
///
/// # Errors
///
/// [`CliError`] — usage problems, simulation failures, artifact I/O, or
/// merge validation.
pub fn main_with(args: &[String]) -> Result<Outcome, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("--help" | "-h" | "help") => {
            write_stdout(USAGE)?;
            write_stdout("\n")?;
            Ok(Outcome::Help)
        }
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("fault") => cmd_fault(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown subcommand '{other}' (expected run, merge, render, diff, \
             serve, query, fuzz or fault)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Spec flags
// ---------------------------------------------------------------------------

/// The spec-defining flags, collected before expansion so every shard
/// process can rebuild the identical [`CampaignSpec`] (enforced at merge
/// time by the spec fingerprint).
#[derive(Debug, Default)]
struct SpecArgs {
    attacks: Option<Vec<String>>,
    synthesized: Option<PathBuf>,
    defenses: Option<Vec<String>>,
    axes: Vec<(Knob, Vec<KnobValue>)>,
    threads: usize,
    retries: Option<u32>,
    max_cell_cycles: Option<u64>,
}

impl SpecArgs {
    /// Consumes a spec flag if `flag` is one; returns whether it was.
    fn take(
        &mut self,
        flag: &str,
        value: &mut dyn FnMut() -> Result<String, CliError>,
    ) -> Result<bool, CliError> {
        // A repeated flag silently overriding (or surprising a user who
        // expected accumulation) would produce a shard of a different
        // spec than intended — reject repeats outright, like a repeated
        // axis knob.
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--attacks" => {
                once(self.attacks.is_some())?;
                self.attacks = Some(split_list(&value()?));
            }
            "--synthesized" => {
                once(self.synthesized.is_some())?;
                self.synthesized = Some(PathBuf::from(value()?));
            }
            "--defenses" => {
                once(self.defenses.is_some())?;
                let v = value()?;
                self.defenses = Some(if v == "none" {
                    Vec::new()
                } else {
                    split_list(&v)
                });
            }
            "--axis" => {
                let v = value()?;
                let (knob, values) = parse_axis(&v)?;
                if self.axes.iter().any(|(k, _)| *k == knob) {
                    return Err(CliError::Usage(format!(
                        "axis '{}' given twice",
                        knob_token(knob)
                    )));
                }
                self.axes.push((knob, values));
            }
            "--threads" => {
                once(self.threads != 0)?;
                let v = value()?;
                self.threads = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--threads needs a number, got '{v}'")))?;
            }
            "--retries" => {
                once(self.retries.is_some())?;
                let v = value()?;
                self.retries = Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("--retries needs a number, got '{v}'"))
                })?);
            }
            "--max-cell-cycles" => {
                once(self.max_cell_cycles.is_some())?;
                let v = value()?;
                self.max_cell_cycles =
                    Some(v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!(
                            "--max-cell-cycles needs a positive cycle count, got '{v}'"
                        ))
                    })?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Expands the flags into a spec, with every builder panic turned
    /// into a usage error first.
    fn build(self) -> Result<CampaignSpec, CliError> {
        let mut base = UarchConfig::default();
        if let Some(budget) = self.max_cell_cycles {
            base.max_cycles = budget;
        }
        let mut builder = CampaignSpec::builder(base);
        if self.attacks.is_some() || self.synthesized.is_some() {
            let mut list: Vec<&'static dyn Attack> = match &self.attacks {
                // `--synthesized` alone extends the default full registry.
                None => attacks::registry().to_vec(),
                Some(names) => Vec::with_capacity(names.len()),
            };
            for name in self.attacks.as_deref().unwrap_or_default() {
                list.push(attacks::find(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown attack '{name}'; the registry has: {}",
                        attacks::registry()
                            .iter()
                            .map(|a| a.info().name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?);
            }
            if let Some(path) = &self.synthesized {
                let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
                    path: path.clone(),
                    source,
                })?;
                let registry =
                    SynthesizedRegistry::from_json(&text).map_err(|source| CliError::Registry {
                        path: path.clone(),
                        source,
                    })?;
                list.extend(registry.attacks().map_err(|source| CliError::Registry {
                    path: path.clone(),
                    source,
                })?);
            }
            builder = builder.attacks(list);
        }
        if let Some(exprs) = &self.defenses {
            let mut list: Vec<DefenseStack> = Vec::new();
            for expr in exprs {
                list.push(resolve_stack(expr)?);
            }
            builder = builder.defense_stacks(list);
        }
        let pins_predictor = self.axes.iter().any(|(k, _)| *k == Knob::Predictor);
        let flush_hardening = self
            .axes
            .iter()
            .any(|(_, vs)| vs.contains(&KnobValue::Hardening(Hardening::FlushPredictors)));
        if pins_predictor && flush_hardening {
            return Err(CliError::Usage(
                "--axis pred=… pins the predictor flags and cannot combine with \
                 an 'flush-predictors' hardening value (pred=flush covers that \
                 slice)"
                    .to_owned(),
            ));
        }
        for (knob, values) in self.axes {
            builder = builder.axis(knob, values);
        }
        let mut spec = builder.threads(self.threads).build();
        if let Some(retries) = self.retries {
            spec.resilience.retries = retries;
        }
        // An explicit budget means the user wants runaway cells degraded,
        // not the whole campaign failed.
        spec.resilience.degrade_timeouts = self.max_cell_cycles.is_some();
        Ok(spec)
    }
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(|p| p.trim().to_owned())
        .filter(|p| !p.is_empty())
        .collect()
}

/// Resolves one `--defenses` item: a preset token (`linux-default`) or a
/// `+`-joined stack expression over catalog tokens/names
/// (`kpti+retpoline`, `NDA`).
fn resolve_stack(expr: &str) -> Result<DefenseStack, CliError> {
    if let Some(preset) = presets::find(expr) {
        return Ok(preset);
    }
    DefenseStack::parse(expr).map_err(|e| {
        CliError::Usage(format!(
            "bad defense stack '{expr}': {e}\n  catalog tokens: {}\n  presets: {}",
            defenses::registry()
                .iter()
                .map(|d| d.token)
                .collect::<Vec<_>>()
                .join(", "),
            presets::all()
                .iter()
                .map(|(t, _)| *t)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

fn knob_token(knob: Knob) -> &'static str {
    match knob {
        Knob::RobDepth => "rob",
        Knob::FetchWidth => "fetch",
        Knob::IssueWidth => "issue",
        Knob::CacheSets => "sets",
        Knob::CacheWays => "ways",
        Knob::LfbEntries => "lfb",
        Knob::StoreBufferEntries => "stbuf",
        Knob::RsbDepth => "rsb",
        Knob::CacheHitLatency => "hitlat",
        Knob::CacheMissLatency => "misslat",
        Knob::PermissionCheckLatency => "permlat",
        Knob::Predictor => "pred",
        Knob::Hardening => "hardening",
        _ => "?",
    }
}

fn parse_axis(arg: &str) -> Result<(Knob, Vec<KnobValue>), CliError> {
    let (token, list) = arg
        .split_once('=')
        .ok_or_else(|| CliError::Usage(format!("--axis needs KNOB=V1,V2,…, got '{arg}'")))?;
    let numeric = |knob: Knob| -> Result<(Knob, Vec<KnobValue>), CliError> {
        let values = split_list(list)
            .iter()
            .map(|v| {
                v.parse::<u64>().map(KnobValue::Num).map_err(|_| {
                    CliError::Usage(format!("axis '{token}' needs numbers, got '{v}'"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((knob, values))
    };
    let (knob, values) = match token {
        "rob" => numeric(Knob::RobDepth)?,
        "fetch" => numeric(Knob::FetchWidth)?,
        "issue" => numeric(Knob::IssueWidth)?,
        "sets" => numeric(Knob::CacheSets)?,
        "ways" => numeric(Knob::CacheWays)?,
        "lfb" => numeric(Knob::LfbEntries)?,
        "stbuf" => numeric(Knob::StoreBufferEntries)?,
        "rsb" => numeric(Knob::RsbDepth)?,
        "hitlat" => numeric(Knob::CacheHitLatency)?,
        "misslat" => numeric(Knob::CacheMissLatency)?,
        "permlat" => numeric(Knob::PermissionCheckLatency)?,
        "pred" => {
            let values = if list == "all" {
                PredictorFlavor::all().map(KnobValue::Predictor).to_vec()
            } else {
                split_list(list)
                    .iter()
                    .map(|v| {
                        PredictorFlavor::from_token(v)
                            .map(KnobValue::Predictor)
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown predictor flavor '{v}' (shared, flush, \
                                     no-indirect, stuffed-rsb, all)"
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            (Knob::Predictor, values)
        }
        "hardening" => {
            let values = match list {
                "figure8" => Hardening::figure8().map(KnobValue::Hardening).to_vec(),
                "all" => Hardening::all().map(KnobValue::Hardening).to_vec(),
                _ => split_list(list)
                    .iter()
                    .map(|v| {
                        Hardening::from_token(v)
                            .map(KnobValue::Hardening)
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown hardening '{v}' (try one of: {}, figure8, all)",
                                    Hardening::all().map(Hardening::token).join(", ")
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            (Knob::Hardening, values)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown axis knob '{other}' (see campaign --help)"
            )))
        }
    };
    if values.is_empty() {
        return Err(CliError::Usage(format!("axis '{token}' has no values")));
    }
    for (i, v) in values.iter().enumerate() {
        if values[..i].contains(v) {
            return Err(CliError::Usage(format!(
                "axis '{token}' lists a value twice"
            )));
        }
    }
    Ok((knob, values))
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<Outcome, CliError> {
    let mut spec_args = SpecArgs::default();
    let mut shard: Option<(usize, usize)> = None;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut incremental = false;
    let mut progress = false;
    let mut prev: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag '{flag}' needs a value")))
        };
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--shard" => {
                once(shard.is_some())?;
                let v = value()?;
                shard = Some(parse_shard(&v)?);
            }
            "--out" => {
                once(out.is_some())?;
                out = Some(PathBuf::from(value()?));
            }
            "--csv" => {
                once(csv.is_some())?;
                csv = Some(PathBuf::from(value()?));
            }
            "--incremental" => incremental = true,
            "--progress" => progress = true,
            "--prev" => {
                once(prev.is_some())?;
                prev = Some(PathBuf::from(value()?));
            }
            other => {
                if !spec_args.take(other, &mut value)? {
                    return Err(CliError::Usage(format!(
                        "unknown flag '{other}' for 'campaign run'"
                    )));
                }
            }
        }
        i += 1;
    }
    if incremental != prev.is_some() {
        return Err(CliError::Usage(
            "--incremental and --prev MATRIX.json go together".to_owned(),
        ));
    }
    let spec = spec_args.build()?;
    if let Some((index, of)) = shard {
        if incremental {
            return Err(CliError::Usage(
                "--shard and --incremental do not combine; merge the parts, \
                 then re-run incrementally against the merged matrix"
                    .to_owned(),
            ));
        }
        if csv.is_some() {
            return Err(CliError::Usage(
                "--csv applies to full matrices; merge the parts first".to_owned(),
            ));
        }
        // Within one shard the per-slice quota is range-dependent: report
        // milestone progress only.
        let printer = progress.then(|| ProgressPrinter::new(&spec, None));
        let observer = printer.as_ref().map(ProgressPrinter::observer);
        let part = spec
            .shards(of)
            .swap_remove(index)
            .run_observed(observer.as_ref().map(|f| f as &(dyn Fn(TaskEvent) + Sync)))?;
        emit(out.as_deref(), &part.to_json())?;
        eprintln!(
            "campaign: shard {index}/{of} evaluated {} of {} task(s) \
             (spec fingerprint {:#018x})",
            part.len(),
            spec.total_tasks(),
            part.spec_fingerprint(),
        );
        Ok(Outcome::RanShard {
            index,
            of,
            tasks: part.len(),
        })
    } else {
        let previous = prev.as_deref().map(load_matrix).transpose()?;
        // A fresh full run evaluates every slice completely, so the
        // per-slice quota is known; an incremental run's stale counts are
        // fingerprint-dependent, so fall back to milestone lines.
        let per_slice = (previous.is_none())
            .then(|| spec.attacks.len() + spec.attacks.len() * spec.defenses.len());
        let printer = progress.then(|| ProgressPrinter::new(&spec, per_slice));
        let observer = printer.as_ref().map(ProgressPrinter::observer);
        let (matrix, report) = CampaignMatrix::run_incremental_observed(
            &spec,
            previous.as_ref(),
            observer.as_ref().map(|f| f as &(dyn Fn(TaskEvent) + Sync)),
        )?;
        emit(out.as_deref(), &matrix.to_json())?;
        if let Some(path) = &csv {
            write_file(path, &matrix.to_csv())?;
        }
        describe_report(report);
        describe_degraded(&matrix);
        Ok(Outcome::Ran {
            evaluated: report.evaluated,
            reused: report.reused,
        })
    }
}

fn cmd_diff(args: &[String]) -> Result<Outcome, CliError> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        if arg.starts_with("--") {
            return Err(CliError::Usage(format!(
                "unknown flag '{arg}' for 'campaign diff'"
            )));
        }
        paths.push(PathBuf::from(arg));
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(CliError::Usage(
            "campaign diff needs exactly two files: OLD.json NEW.json".to_owned(),
        ));
    };
    let old = load_matrix(old_path)?;
    let new = load_matrix(new_path)?;
    let diff = old.diff(&new);
    write_stdout(&diff.to_text())?;
    summarize_diff(&diff, old_path, new_path);
    Ok(Outcome::Diffed {
        flips: diff.flips.len(),
        baseline_flips: diff.baseline_flips.len(),
        cycle_deltas: diff.cycle_deltas.len(),
        added: diff.added.len(),
        removed: diff.removed.len(),
        identical: diff.is_empty(),
    })
}

fn summarize_diff(diff: &MatrixDiff, old_path: &Path, new_path: &Path) {
    if diff.is_empty() {
        eprintln!(
            "campaign: {} and {} agree on every cell",
            old_path.display(),
            new_path.display()
        );
    } else {
        eprintln!(
            "campaign: {} change(s) between {} and {}",
            diff.flips.len()
                + diff.baseline_flips.len()
                + diff.cycle_deltas.len()
                + diff.added.len()
                + diff.removed.len(),
            old_path.display(),
            new_path.display()
        );
    }
}

/// Stderr progress for `campaign run --progress`: one line per completed
/// config slice when the per-slice quota is known (fresh full runs), and
/// ~10 milestone lines otherwise (shards, incremental runs), each with an
/// elapsed-rate ETA.
struct ProgressPrinter {
    start: std::time::Instant,
    configs: Vec<String>,
    per_slice: Option<usize>,
    slice_done: Mutex<Vec<usize>>,
}

impl ProgressPrinter {
    fn new(spec: &CampaignSpec, per_slice: Option<usize>) -> Self {
        ProgressPrinter {
            start: std::time::Instant::now(),
            configs: spec.configs.iter().map(|nc| nc.name.clone()).collect(),
            per_slice,
            slice_done: Mutex::new(vec![0; spec.configs.len()]),
        }
    }

    /// The observer closure to hand to the campaign engine.
    fn observer(&self) -> impl Fn(TaskEvent) + Sync + '_ {
        move |event| {
            if let Some(line) = self.line_for(event) {
                eprintln!("{line}");
            }
        }
    }

    /// The progress line for one completed task, if it is worth printing.
    fn line_for(&self, event: TaskEvent) -> Option<String> {
        let slice_done = {
            let mut done = self.slice_done.lock().expect("progress lock");
            done[event.config] += 1;
            done[event.config]
        };
        let worth_printing = match self.per_slice {
            Some(quota) => slice_done == quota,
            None => {
                let step = (event.total / 10).max(1);
                event.completed % step == 0 || event.completed == event.total
            }
        };
        if !worth_printing {
            return None;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if event.completed == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // task counts << 2^52
            {
                elapsed * (event.total - event.completed) as f64 / event.completed as f64
            }
        };
        Some(match self.per_slice {
            Some(quota) => format!(
                "campaign: slice '{}' {slice_done}/{quota} task(s) done — \
                 {}/{} total, ETA {eta:.1}s",
                self.configs[event.config], event.completed, event.total
            ),
            None => format!(
                "campaign: {}/{} task(s) done (last slice '{}'), ETA {eta:.1}s",
                event.completed, event.total, self.configs[event.config]
            ),
        })
    }
}

fn cmd_merge(args: &[String]) -> Result<Outcome, CliError> {
    let mut part_paths: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--out' needs a value".to_owned())
                })?));
            }
            "--csv" => {
                i += 1;
                csv = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--csv' needs a value".to_owned())
                })?));
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{flag}' for 'campaign merge'"
                )))
            }
            path => part_paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if part_paths.is_empty() {
        return Err(CliError::Usage(
            "campaign merge needs at least one PART.json".to_owned(),
        ));
    }
    let parts = part_paths
        .iter()
        .map(|p| {
            CampaignPart::load_json(p).map_err(|source| CliError::Artifact {
                path: p.clone(),
                source,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let n = parts.len();
    let matrix = CampaignMatrix::merge(parts)?;
    let (a, d, c) = matrix.shape();
    emit(out.as_deref(), &matrix.to_json())?;
    if let Some(path) = &csv {
        write_file(path, &matrix.to_csv())?;
    }
    let tasks = a * c + a * d * c;
    eprintln!("campaign: merged {n} part(s) into a {a}×{d}×{c} matrix ({tasks} task(s))");
    Ok(Outcome::Merged { parts: n, tasks })
}

fn cmd_render(args: &[String]) -> Result<Outcome, CliError> {
    let mut figure8 = false;
    let mut matrix_path: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut svg: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure8" => figure8 = true,
            "--csv" => {
                i += 1;
                csv = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--csv' needs a value".to_owned())
                })?));
            }
            "--svg" => {
                i += 1;
                svg = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--svg' needs a value".to_owned())
                })?));
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{flag}' for 'campaign render'"
                )))
            }
            path if matrix_path.is_none() => matrix_path = Some(PathBuf::from(path)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra argument '{extra}'"
                )))
            }
        }
        i += 1;
    }
    if !figure8 {
        return Err(CliError::Usage(
            "campaign render needs a mode; only --figure8 exists today".to_owned(),
        ));
    }
    let path = matrix_path.ok_or_else(|| {
        CliError::Usage("campaign render needs a MATRIX.json to render".to_owned())
    })?;
    let matrix = load_matrix(&path)?;
    let view = Figure8View::from_matrix(&matrix);
    write_stdout(&view.to_ascii())?;
    if let Some(p) = &csv {
        write_file(p, &view.to_csv())?;
    }
    if let Some(p) = &svg {
        write_file(p, &view.to_svg())?;
    }
    eprintln!(
        "campaign: rendered {} row(s) × {} config(s) from the saved matrix — \
         0 cell(s) re-simulated",
        view.rows.len(),
        view.configs.len()
    );
    Ok(Outcome::Rendered {
        rows: view.rows.len(),
        configs: view.configs.len(),
    })
}

fn cmd_serve(args: &[String]) -> Result<Outcome, CliError> {
    let mut spec_args = SpecArgs::default();
    let mut workers = 0usize;
    let mut chunk: Option<usize> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut progress = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag '{flag}' needs a value")))
        };
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--workers" => {
                once(workers != 0)?;
                let v = value()?;
                workers = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!("--workers needs a positive number, got '{v}'"))
                })?;
            }
            "--chunk" => {
                once(chunk.is_some())?;
                let v = value()?;
                chunk = Some(v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!("--chunk needs a positive task count, got '{v}'"))
                })?);
            }
            "--checkpoint" => {
                once(checkpoint.is_some())?;
                checkpoint = Some(PathBuf::from(value()?));
            }
            "--out" => {
                once(out.is_some())?;
                out = Some(PathBuf::from(value()?));
            }
            "--csv" => {
                once(csv.is_some())?;
                csv = Some(PathBuf::from(value()?));
            }
            "--progress" => progress = true,
            other => {
                if !spec_args.take(other, &mut value)? {
                    return Err(CliError::Usage(format!(
                        "unknown flag '{other}' for 'campaign serve'"
                    )));
                }
            }
        }
        i += 1;
    }
    let spec = spec_args.build()?;
    let mut scheduler = Scheduler::new(&spec);
    if workers != 0 {
        scheduler = scheduler.workers(workers);
    }
    if let Some(tasks) = chunk {
        scheduler = scheduler.chunk_tasks(tasks);
    }
    if let Some(dir) = &checkpoint {
        scheduler = scheduler.checkpoint(dir);
    }
    let observer = |event: ChunkEvent| {
        eprintln!(
            "campaign: chunk {} done ({}/{} chunk(s))",
            event.index, event.completed, event.of
        );
    };
    let (matrix, report) =
        scheduler.run_observed(None, progress.then_some(&observer as ChunkObserverRef))?;
    emit(out.as_deref(), &matrix.to_json())?;
    if let Some(path) = &csv {
        write_file(path, &matrix.to_csv())?;
    }
    for repair in &report.repaired {
        eprintln!(
            "campaign: checkpoint {} was unusable ({}) — re-ran chunk {}",
            repair.path.display(),
            repair.reason,
            repair.index,
        );
    }
    eprintln!(
        "campaign: served {} task(s) in {} chunk(s) — resumed {} chunk(s) \
         ({} task(s), 0 re-simulated), executed {}, stole {}",
        spec.total_tasks(),
        report.chunks,
        report.resumed,
        report.resumed_tasks,
        report.executed,
        report.stolen,
    );
    describe_degraded(&matrix);
    Ok(Outcome::Served {
        chunks: report.chunks,
        resumed: report.resumed,
        executed: report.executed,
        stolen: report.stolen,
    })
}

/// The observer coercion target for [`Scheduler::run_observed`].
type ChunkObserverRef<'a> = &'a (dyn Fn(ChunkEvent) + Sync);

fn cmd_query(args: &[String]) -> Result<Outcome, CliError> {
    let mut artifacts: Vec<PathBuf> = Vec::new();
    let mut queries: Option<PathBuf> = None;
    let mut simulate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queries" => {
                i += 1;
                queries = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::Usage("flag '--queries' needs a value".to_owned())
                })?));
            }
            "--simulate" => simulate = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{flag}' for 'campaign query'"
                )))
            }
            path => artifacts.push(PathBuf::from(path)),
        }
        i += 1;
    }
    let store = VerdictStore::new();
    for path in &artifacts {
        ingest_artifact(&store, path)?;
    }
    let text = match &queries {
        Some(path) if path.as_os_str() != "-" => {
            std::fs::read_to_string(path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?
        }
        _ => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|source| CliError::Io {
                    path: PathBuf::from("<stdin>"),
                    source,
                })?;
            buf
        }
    };
    let mut answered = 0;
    let mut hits = 0;
    let mut simulated = 0;
    let mut misses = 0;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let q = parse_query_line(line)
            .map_err(|msg| CliError::Usage(format!("query line {}: {msg}", lineno + 1)))?;
        let answer = if simulate {
            Some(store.query(q.attack, q.stack.as_ref(), &q.config)?)
        } else {
            store.lookup(q.attack.info().name, q.stack.as_ref(), &q.config)
        };
        match answer {
            Some(a) => {
                answered += 1;
                match a.source {
                    AnswerSource::Hit => hits += 1,
                    AnswerSource::Simulated | AnswerSource::Coalesced => simulated += 1,
                }
                let graph = a.graph.map_or("-".to_owned(), |g| g.to_string());
                let cycles = a.cycles.map_or("-".to_owned(), |c| c.to_string());
                write_stdout(&format!(
                    "{} {} graph={graph} cycles={cycles}\t{line}\n",
                    source_token(a.source),
                    a.verdict,
                ))?;
            }
            None => {
                misses += 1;
                write_stdout(&format!("miss - graph=- cycles=-\t{line}\n"))?;
            }
        }
    }
    eprintln!(
        "campaign: {answered} answer(s) from {} stored row(s) — {hits} hit(s), \
         {simulated} simulated, {misses} miss(es)",
        store.len(),
    );
    Ok(Outcome::Queried {
        answered,
        hits,
        simulated,
        misses,
    })
}

fn source_token(source: AnswerSource) -> &'static str {
    match source {
        AnswerSource::Hit => "hit",
        AnswerSource::Simulated => "simulated",
        AnswerSource::Coalesced => "coalesced",
    }
}

/// One parsed `ATTACK | STACK | KNOBS` query line.
struct Query {
    attack: &'static dyn Attack,
    stack: Option<DefenseStack>,
    config: UarchConfig,
}

/// Parses one query line: `ATTACK | STACK | KNOB=V KNOB=V…`. The third
/// field may be empty or absent (default config); `STACK` may be `none`
/// for the undefended baseline.
fn parse_query_line(line: &str) -> Result<Query, String> {
    let mut fields = line.splitn(3, '|').map(str::trim);
    let attack_name = fields
        .next()
        .filter(|s| !s.is_empty())
        .ok_or("empty attack field (want ATTACK | STACK | KNOBS)")?;
    let stack_expr = fields
        .next()
        .ok_or("missing stack field (want ATTACK | STACK | KNOBS; STACK may be 'none')")?;
    let knobs = fields.next().unwrap_or("");
    let attack =
        attacks::find(attack_name).ok_or_else(|| format!("unknown attack '{attack_name}'"))?;
    let stack = if stack_expr == "none" {
        None
    } else {
        Some(resolve_stack(stack_expr).map_err(|e| e.to_string())?)
    };
    Ok(Query {
        attack,
        stack,
        config: config_from_tokens(knobs)?,
    })
}

/// Builds a [`UarchConfig`] from whitespace-separated `KNOB=V` tokens in
/// the `--axis` vocabulary, each with exactly one value, applied to the
/// default config. The token list may be empty.
fn config_from_tokens(tokens: &str) -> Result<UarchConfig, String> {
    // Reuse the axis grammar and the spec builder's knob application: a
    // throwaway single-point spec's lone config slice *is* the requested
    // configuration (and the guarantee it matches what a campaign over
    // the same axes simulated falls out for free).
    let mut builder = CampaignSpec::builder(UarchConfig::default()).defense_stacks([]);
    let mut seen: Vec<Knob> = Vec::new();
    for token in tokens.split_whitespace() {
        let (knob, values) = parse_axis(token).map_err(|e| e.to_string())?;
        let [value] = values.as_slice() else {
            return Err(format!("token '{token}' must pin exactly one value"));
        };
        if seen.contains(&knob) {
            return Err(format!("knob '{}' given twice", knob_token(knob)));
        }
        seen.push(knob);
        builder = builder.axis(knob, [*value]);
    }
    let spec = builder.build();
    let [config] = spec.configs.as_slice() else {
        return Err("internal: single-point spec expanded to multiple configs".to_owned());
    };
    Ok(config.config.clone())
}

/// Loads one `campaign query` artifact — a saved matrix, part, or
/// scheduler checkpoint, distinguished by its `kind` — into the store.
fn ingest_artifact(store: &VerdictStore, path: &Path) -> Result<usize, CliError> {
    let artifact = |source| CliError::Artifact {
        path: path.to_path_buf(),
        source,
    };
    match CampaignMatrix::load_json(path) {
        Ok(matrix) => Ok(store.ingest_matrix(&matrix)),
        Err(CampaignIoError::Kind { .. }) => match CampaignPart::load_json(path) {
            Ok(part) => Ok(store.ingest_part(&part)),
            Err(CampaignIoError::Kind { .. }) => CampaignPart::load_checkpoint_json(path)
                .map(|part| store.ingest_part(&part))
                .map_err(artifact),
            Err(e) => Err(artifact(e)),
        },
        Err(e) => Err(artifact(e)),
    }
}

fn cmd_fuzz(args: &[String]) -> Result<Outcome, CliError> {
    let mut cfg = FuzzConfig::default();
    let mut seed_set = false;
    let mut budget_set = false;
    let mut minimize_set = false;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut registry_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag '{flag}' needs a value")))
        };
        let once = |taken: bool| -> Result<(), CliError> {
            if taken {
                Err(CliError::Usage(format!("flag '{flag}' given twice")))
            } else {
                Ok(())
            }
        };
        match flag {
            "--seed" => {
                once(seed_set)?;
                seed_set = true;
                let v = value()?;
                cfg.seed = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed needs a number, got '{v}'")))?;
            }
            "--budget" => {
                once(budget_set)?;
                budget_set = true;
                let v = value()?;
                cfg.budget = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!("--budget needs a positive count, got '{v}'"))
                })?;
            }
            "--threads" => {
                once(cfg.threads != 0)?;
                let v = value()?;
                cfg.threads = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!("--threads needs a positive number, got '{v}'"))
                })?;
            }
            "--checkpoint-every" => {
                once(cfg.checkpoint_every != 0)?;
                let v = value()?;
                cfg.checkpoint_every = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--checkpoint-every needs a positive count, got '{v}'"
                    ))
                })?;
            }
            "--minimize" | "--no-minimize" => {
                once(minimize_set)?;
                minimize_set = true;
                cfg.minimize = flag == "--minimize";
            }
            "--corpus" => {
                once(corpus_dir.is_some())?;
                corpus_dir = Some(PathBuf::from(value()?));
            }
            "--registry-out" => {
                once(registry_out.is_some())?;
                registry_out = Some(PathBuf::from(value()?));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{other}' for 'campaign fuzz'"
                )))
            }
        }
        i += 1;
    }
    let report = fuzz::fuzz(&cfg, corpus_dir.as_deref())?;
    let corpus = &report.corpus;
    if let Some(why) = &report.recovered {
        eprintln!(
            "campaign: corpus was damaged but recoverable ({why}) — \
             re-classified from budget 0"
        );
    }
    for r in &corpus.rediscovered {
        eprintln!(
            "campaign: rediscovered {} (candidate #{}, fingerprint {:016x})",
            r.name, r.index, r.fingerprint
        );
    }
    for f in &corpus.findings {
        eprintln!(
            "campaign: NEW {} — {} [{}]{}",
            f.name(),
            f.combo,
            f.mutations
                .iter()
                .map(|m| m.tag())
                .collect::<Vec<_>>()
                .join(", "),
            if f.removed > 0 {
                format!(", {} instruction(s) shrunk away", f.removed)
            } else {
                String::new()
            },
        );
    }
    eprintln!(
        "campaign: fuzzed {} candidate(s) ({} new) — {} agree-leak, {} \
         agree-safe, {} divergence(s) ({} unexplained), {} known attack(s) \
         rediscovered, {} novel finding(s)",
        corpus.classified,
        report.newly_classified,
        corpus.agree_leak,
        corpus.agree_safe,
        corpus.divergences.len(),
        corpus.unexplained().len(),
        corpus.rediscovered.len(),
        corpus.findings.len(),
    );
    if let Some(path) = &registry_out {
        write_file(path, &corpus.registry().to_json())?;
    }
    // Without a corpus directory nothing persists on its own — emit the
    // corpus to stdout so the run is still inspectable/pipeable.
    if corpus_dir.is_none() {
        write_stdout(&corpus.to_json())?;
    }
    Ok(Outcome::Fuzzed {
        classified: corpus.classified,
        newly_classified: report.newly_classified,
        divergences: corpus.divergences.len(),
        rediscovered: corpus.rediscovered.len(),
        findings: corpus.findings.len(),
    })
}

// ---------------------------------------------------------------------------
// Fault self-tests
// ---------------------------------------------------------------------------

fn cmd_fault(args: &[String]) -> Result<Outcome, CliError> {
    let mut mode: Option<String> = None;
    let mut seed: u64 = 0xFA17;
    let mut dir: Option<PathBuf> = None;
    let mut retries: u32 = 2;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag '{flag}' needs a value")))
        };
        match flag {
            "--seed" => {
                let v = value()?;
                seed = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed needs a number, got '{v}'")))?;
            }
            "--dir" => {
                dir = Some(PathBuf::from(value()?));
            }
            "--retries" => {
                let v = value()?;
                retries = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--retries needs a number, got '{v}'")))?;
            }
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{other}' for 'campaign fault'"
                )));
            }
            positional => {
                if mode.is_some() {
                    return Err(CliError::Usage(format!(
                        "campaign fault takes one mode, got '{positional}' too"
                    )));
                }
                mode = Some(positional.to_owned());
            }
        }
        i += 1;
    }
    let mode = mode.ok_or_else(|| {
        CliError::Usage("campaign fault needs a mode: sweep, sweep-fuzz or quarantine".to_owned())
    })?;
    match mode.as_str() {
        "quarantine" => return fault_quarantine(retries),
        "sweep" | "sweep-fuzz" => {}
        other => {
            return Err(CliError::Usage(format!(
                "unknown fault mode '{other}' (expected sweep, sweep-fuzz or quarantine)"
            )))
        }
    }
    let dir = dir.ok_or_else(|| {
        CliError::Usage(
            "campaign fault sweeps need --dir DIR (a scratch workspace they wipe)".to_owned(),
        )
    })?;
    match mode.as_str() {
        "sweep" => fault_sweep_scheduler(seed, &dir),
        _ => fault_sweep_fuzz(seed, &dir),
    }
}

/// The small serve grid every scheduler crash-sweep runs: 2 attacks ×
/// 1 defense × 2 ROB depths = 8 tasks, chunked 2 per checkpoint file.
fn sweep_spec() -> CampaignSpec {
    CampaignSpec::builder(UarchConfig::default())
        .attacks([
            attacks::find(attacks::names::MELTDOWN).expect("Meltdown is in the registry"),
            attacks::find(attacks::names::RETBLEED).expect("Retbleed is in the registry"),
        ])
        .defenses([*defenses::find("NDA").expect("NDA is in the catalog")])
        .axis(Knob::RobDepth, [16usize, 64])
        .threads(1)
        .build()
}

/// Wipes and recreates a sweep workspace directory.
fn wipe_dir(dir: &Path) -> Result<(), CliError> {
    let io = |source| CliError::Io {
        path: dir.to_path_buf(),
        source,
    };
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(io)?;
    }
    std::fs::create_dir_all(dir).map_err(io)
}

/// Counts checkpoint files in `ckpt` that still load as valid chunks —
/// the resume report must reuse exactly these, never fewer.
fn intact_chunks(ckpt: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(ckpt) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("chunk-")
                && name.ends_with(".json")
                && CampaignPart::load_checkpoint_json(e.path()).is_ok()
        })
        .count()
}

fn fault_sweep_scheduler(seed: u64, dir: &Path) -> Result<Outcome, CliError> {
    let spec = sweep_spec();
    let ckpt = dir.join("ckpt");
    let out = dir.join("matrix.json");
    let run = |spec: &CampaignSpec| {
        Scheduler::new(spec)
            .workers(1)
            .chunk_tasks(2)
            .checkpoint(&ckpt)
            .run()
    };
    let read_out = || {
        std::fs::read(&out).map_err(|source| CliError::Io {
            path: out.clone(),
            source,
        })
    };
    let report = fault::crash_sweep(
        seed,
        || wipe_dir(dir),
        || {
            let (matrix, _) = run(&spec)?;
            write_file(&out, &matrix.to_json())?;
            read_out()
        },
        |k| {
            let intact = intact_chunks(&ckpt);
            let (matrix, rep) = run(&spec)?;
            if rep.resumed < intact {
                return Err(CliError::Fault(format!(
                    "resume after write #{k} reused {} chunk(s) but {intact} \
                     checkpoint(s) were intact — completed cells were re-simulated",
                    rep.resumed,
                )));
            }
            if rep.resumed + rep.executed != rep.chunks {
                return Err(CliError::Fault(format!(
                    "resume after write #{k} covered {} of {} chunk(s)",
                    rep.resumed + rep.executed,
                    rep.chunks,
                )));
            }
            write_file(&out, &matrix.to_json())?;
            read_out()
        },
    )
    .map_err(CliError::Fault)?;
    eprintln!(
        "campaign: fault sweep (scheduler) passed — {} write point(s), {} \
         fault(s) fired, every resume bit-identical with 0 completed cell(s) \
         re-simulated",
        report.writes, report.fired,
    );
    Ok(Outcome::FaultTested {
        mode: "sweep",
        cases: report.writes,
    })
}

fn fault_sweep_fuzz(seed: u64, dir: &Path) -> Result<Outcome, CliError> {
    let cfg = FuzzConfig {
        seed,
        budget: 48,
        checkpoint_every: 16,
        threads: 1,
        ..FuzzConfig::default()
    };
    let read_out = || {
        let path = Corpus::path_in(dir);
        std::fs::read(&path).map_err(|source| CliError::Io { path, source })
    };
    let report = fault::crash_sweep(
        seed,
        || wipe_dir(dir),
        || {
            fuzz::fuzz(&cfg, Some(dir))?;
            read_out()
        },
        |k| {
            // How far the surviving corpus actually got: a torn or missing
            // file recovers from zero, an intact checkpoint from its budget.
            let on_disk = match Corpus::load(dir) {
                Ok(Some(corpus)) => corpus.classified,
                Ok(None) => 0,
                Err(e) if e.is_recoverable() => 0,
                Err(e) => {
                    return Err(CliError::Fault(format!(
                        "corpus after write #{k} is unrecoverable: {e}"
                    )))
                }
            };
            let resumed = fuzz::fuzz(&cfg, Some(dir))?;
            if resumed.newly_classified != cfg.budget - on_disk {
                return Err(CliError::Fault(format!(
                    "resume after write #{k} re-classified {} candidate(s), \
                     expected {} (the corpus on disk already had {on_disk})",
                    resumed.newly_classified,
                    cfg.budget - on_disk,
                )));
            }
            read_out()
        },
    )
    .map_err(CliError::Fault)?;
    eprintln!(
        "campaign: fault sweep (fuzz corpus) passed — {} write point(s), {} \
         fault(s) fired, every resume bit-identical with 0 completed \
         candidate(s) re-classified",
        report.writes, report.fired,
    );
    Ok(Outcome::FaultTested {
        mode: "sweep-fuzz",
        cases: report.writes,
    })
}

fn fault_quarantine(retries: u32) -> Result<Outcome, CliError> {
    let panicking = PanickingAttack::wrap(
        attacks::find(attacks::names::MELTDOWN).expect("Meltdown is in the registry"),
    );
    let mut spec = CampaignSpec::builder(UarchConfig::default())
        .attacks([
            panicking as &'static dyn Attack,
            attacks::find(attacks::names::RETBLEED).expect("Retbleed is in the registry"),
        ])
        .defenses([*defenses::find("NDA").expect("NDA is in the catalog")])
        .axis(Knob::RobDepth, [16usize, 64])
        .threads(1)
        .build();
    spec.resilience.retries = retries;
    let matrix = CampaignMatrix::run(&spec)?;
    let quarantined = matrix.quarantined();
    if quarantined == 0 {
        return Err(CliError::Fault(
            "injected panicking cell produced no quarantined rows".to_owned(),
        ));
    }
    eprintln!(
        "campaign: quarantined {quarantined} cell(s) after {retries} \
         retry(ies) each — the campaign still completed all {} task(s)",
        spec.total_tasks(),
    );
    panicking.disarm();
    let (healed, report) = CampaignMatrix::run_incremental_observed(&spec, Some(&matrix), None)?;
    if healed.quarantined() != 0 {
        return Err(CliError::Fault(format!(
            "{} cell(s) still quarantined after the fault was removed",
            healed.quarantined(),
        )));
    }
    if report.evaluated != quarantined {
        return Err(CliError::Fault(format!(
            "healing run re-evaluated {} task(s), expected exactly the \
             {quarantined} quarantined one(s)",
            report.evaluated,
        )));
    }
    eprintln!(
        "campaign: re-run with the fault removed healed all {quarantined} \
         quarantined cell(s) incrementally ({} task(s) reused)",
        report.reused,
    );
    Ok(Outcome::FaultTested {
        mode: "quarantine",
        cases: quarantined,
    })
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

fn parse_shard(v: &str) -> Result<(usize, usize), CliError> {
    let bad = || CliError::Usage(format!("--shard needs I/N with I < N, got '{v}'"));
    let (i, n) = v.split_once('/').ok_or_else(bad)?;
    let (i, n): (usize, usize) = (i.parse().map_err(|_| bad())?, n.parse().map_err(|_| bad())?);
    if n == 0 || i >= n {
        return Err(bad());
    }
    Ok((i, n))
}

fn load_matrix(path: &Path) -> Result<CampaignMatrix, CliError> {
    CampaignMatrix::load_json(path).map_err(|source| CliError::Artifact {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes through the fault-injectable atomic layer (tmp + rename), so
/// every CLI artifact — CSV, SVG, registry — is crash-consistent and
/// covered by `campaign fault` sweeps.
fn write_file(path: &Path, content: &str) -> Result<(), CliError> {
    fault::write_atomic(path, content).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes `content` to `path`, or to stdout when no path was given.
fn emit(path: Option<&Path>, content: &str) -> Result<(), CliError> {
    match path {
        Some(p) => write_file(p, content),
        None => write_stdout(content),
    }
}

/// Writes to stdout, treating a closed pipe (`campaign … | head`) as
/// normal early termination instead of the default `print!` panic.
fn write_stdout(content: &str) -> Result<(), CliError> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    match out.write_all(content.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(source) => Err(CliError::Io {
            path: PathBuf::from("<stdout>"),
            source,
        }),
    }
}

fn describe_report(report: IncrementalReport) {
    eprintln!(
        "campaign: evaluated {} task(s), reused {} from the previous matrix",
        report.evaluated, report.reused
    );
}

/// One stderr line when a matrix carries degraded rows, so a scripted
/// campaign can grep for partial results.
fn describe_degraded(matrix: &CampaignMatrix) {
    let quarantined = matrix.quarantined();
    let timed_out = matrix.timed_out();
    if quarantined > 0 || timed_out > 0 {
        eprintln!(
            "campaign: quarantined {quarantined} cell(s), timed out \
             {timed_out} — degraded rows keep their graph verdicts and \
             re-simulate on the next run"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::builder(UarchConfig::default())
            .attacks([attacks::find("Meltdown").unwrap()])
            .defenses([*defenses::find("NDA").unwrap()])
            .axis(Knob::RobDepth, [16usize, 64])
            .build()
    }

    #[test]
    fn progress_lines_fire_per_completed_slice() {
        let spec = tiny_spec();
        // Per-slice quota: 1 baseline + 1 cell per config slice.
        let printer = ProgressPrinter::new(&spec, Some(2));
        let event = |completed, config| TaskEvent {
            completed,
            total: 4,
            config,
        };
        // First task of slice 0: below quota, silent.
        assert!(printer.line_for(event(1, 0)).is_none());
        // Second task of slice 0 completes the slice: a line, with the
        // slice name and per-slice + total counts.
        let line = printer.line_for(event(2, 0)).expect("slice-done line");
        assert!(line.contains("slice 'rob=16'"), "{line}");
        assert!(line.contains("2/2"), "{line}");
        assert!(line.contains("2/4 total"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        // Slice 1 likewise.
        assert!(printer.line_for(event(3, 1)).is_none());
        assert!(printer
            .line_for(event(4, 1))
            .expect("final line")
            .contains("slice 'rob=64'"));
    }

    #[test]
    fn progress_without_quota_prints_milestones() {
        let spec = tiny_spec();
        let printer = ProgressPrinter::new(&spec, None);
        // total 40 → step 4: only every 4th completion (and the last)
        // prints.
        let mut lines = 0;
        for completed in 1..=40usize {
            if let Some(line) = printer.line_for(TaskEvent {
                completed,
                total: 40,
                config: completed % 2,
            }) {
                lines += 1;
                assert!(line.contains("task(s) done"), "{line}");
            }
        }
        assert_eq!(lines, 10);
    }

    #[test]
    fn stack_expressions_resolve_like_the_library_grammar() {
        assert_eq!(
            resolve_stack("kpti+retpoline").unwrap().name(),
            "KAISER/KPTI+Retpoline"
        );
        assert_eq!(
            resolve_stack("linux-default").unwrap(),
            presets::linux_default()
        );
        let err = resolve_stack("kpti+warp-drive").unwrap_err();
        assert!(err.to_string().contains("catalog tokens"));
        assert!(err.to_string().contains("presets"));
    }
}
