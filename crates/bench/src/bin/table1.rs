//! Regenerates **Table I** of the paper: the speculative attacks, their
//! CVEs and impacts — extended with the simulated outcome column
//! ("does this attack actually recover the planted secret on the vulnerable
//! baseline machine?").

use attacks::catalog;
use uarch::UarchConfig;

fn main() {
    let cfg = UarchConfig::default();
    println!("Table I: Speculative attacks and their variants");
    println!("(extended with the simulated outcome on the vulnerable baseline)\n");
    println!(
        "{:<16} {:<16} {:<52} {:>9} {:>8}",
        "Attack", "CVE", "Impact", "Leaked?", "Cycles"
    );
    println!("{}", "-".repeat(105));
    for a in catalog() {
        let info = a.info();
        let out = a
            .run(&cfg)
            .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", info.name));
        println!(
            "{:<16} {:<16} {:<52} {:>9} {:>8}",
            info.name,
            info.cve.unwrap_or("N/A"),
            info.impact,
            if out.leaked { "yes" } else { "NO" },
            out.cycles
        );
    }
    println!("\nAll rows 'yes': every Table-I variant reproduces on the baseline.");
}
