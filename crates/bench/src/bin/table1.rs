//! Regenerates **Table I** of the paper: the speculative attacks, their
//! CVEs and impacts — extended with the simulated outcome column
//! ("does this attack actually recover the planted secret on the vulnerable
//! baseline machine?").
//!
//! A thin consumer of the campaign engine: one run with an empty defense
//! axis yields exactly the undefended baseline rows.

use specgraph::campaign::{CampaignMatrix, CampaignSpec};
use uarch::UarchConfig;

fn main() {
    // Table I is the undefended baseline column: no defense axis.
    let spec = CampaignSpec::builder(UarchConfig::default())
        .defenses(Vec::new())
        .build();
    let matrix = CampaignMatrix::run(&spec).unwrap_or_else(|e| panic!("campaign failed: {e}"));

    println!("Table I: Speculative attacks and their variants");
    println!("(extended with the simulated outcome on the vulnerable baseline)\n");
    println!(
        "{:<16} {:<16} {:<52} {:>9} {:>8}",
        "Attack", "CVE", "Impact", "Leaked?", "Cycles"
    );
    println!("{}", "-".repeat(105));
    for row in matrix.baselines() {
        println!(
            "{:<16} {:<16} {:<52} {:>9} {:>8}",
            row.info.name,
            row.info.cve.unwrap_or("N/A"),
            row.info.impact,
            if row.leaked { "yes" } else { "NO" },
            row.cycles
        );
    }
    println!("\nAll rows 'yes': every Table-I variant reproduces on the baseline.");
}
