//! The security/performance trade-off (Insight 5): measure benign-workload
//! slowdown under each defense strategy. The paper predicts the ordering
//! ① (serialize access) ≥ ② (block use) ≥ ③ (block send) ≥ ④ (flush
//! predictors), because later strategies relax what speculation may do.

use bench::{measure_cycles, workload_array_sum, workload_pointer_chase};
use uarch::UarchConfig;

fn main() {
    let configs: Vec<(&str, UarchConfig)> = vec![
        ("baseline (no defense)", UarchConfig::default()),
        (
            "① no speculative loads (fences)",
            UarchConfig::builder().no_speculative_loads(true).build(),
        ),
        (
            "① eager permission check",
            UarchConfig::builder().eager_permission_check(true).build(),
        ),
        ("② NDA (block spec. forwarding)", UarchConfig::builder().nda(true).build()),
        ("③ STT (block tainted transmit)", UarchConfig::builder().stt(true).build()),
        (
            "③ delay-on-miss (CondSpec)",
            UarchConfig::builder().delay_on_miss(true).build(),
        ),
        (
            "③ InvisiSpec (deferred fills)",
            UarchConfig::builder().invisible_spec(true).build(),
        ),
        (
            "③ CleanupSpec (undo on squash)",
            UarchConfig::builder().cleanup_spec(true).build(),
        ),
        (
            "④ flush predictors on switch",
            UarchConfig::builder().flush_predictors_on_switch(true).build(),
        ),
    ];

    let workloads: Vec<(&str, isa::Program, u64)> = vec![
        ("array-sum (branchy)", workload_array_sum(64), 128),
        ("pointer-chase (memory)", workload_pointer_chase(24), 128),
    ];

    println!("Defense overhead on benign workloads (simulated cycles)\n");
    print!("{:<36}", "configuration");
    for (wname, _, _) in &workloads {
        print!(" {wname:>24} {:>9}", "slowdown");
    }
    println!();
    println!("{}", "-".repeat(36 + workloads.len() * 35));

    let mut baselines = Vec::new();
    for (i, (name, cfg)) in configs.iter().enumerate() {
        print!("{name:<36}");
        for (w, (_, program, words)) in workloads.iter().enumerate() {
            let cycles = measure_cycles(cfg, program, *words)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            if i == 0 {
                baselines.push(cycles);
            }
            let slowdown = cycles as f64 / baselines[w] as f64;
            print!(" {cycles:>24} {slowdown:>8.2}x");
        }
        println!();
    }

    println!("\nExpected shape (paper Insight 5): ① costs the most; ② relaxes");
    println!("access; ③ additionally relaxes use; ④ is free without context");
    println!("switches. Absolute numbers are simulator-specific; the ordering");
    println!("and crossover pattern are the reproduced result.");
}
