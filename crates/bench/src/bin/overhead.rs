//! The security/performance trade-off (Insight 5): measure benign-workload
//! slowdown under each defense strategy. The paper predicts the ordering
//! ① (serialize access) ≥ ② (block use) ≥ ③ (block send) ≥ ④ (flush
//! predictors), because later strategies relax what speculation may do.
//!
//! A thin consumer of the campaign builder: the measured machines are the
//! [`Hardening`] knob axis expanded by `CampaignSpec::builder` — baseline
//! plus one configuration per distinct registry mechanism — so the grid
//! and its names come from the same axis every matrix sweep uses.

use bench::{measure_cycles, workload_array_sum, workload_pointer_chase};
use specgraph::campaign::{CampaignSpec, Hardening, Knob};
use uarch::UarchConfig;

fn main() {
    let spec = CampaignSpec::builder(UarchConfig::default())
        .axis(Knob::Hardening, Hardening::all())
        .build();

    let workloads: Vec<(&str, isa::Program, u64)> = vec![
        ("array-sum (branchy)", workload_array_sum(64), 128),
        ("pointer-chase (memory)", workload_pointer_chase(24), 128),
    ];

    println!("Defense overhead on benign workloads (simulated cycles)\n");
    print!("{:<36}", "configuration");
    for (wname, _, _) in &workloads {
        print!(" {wname:>24} {:>9}", "slowdown");
    }
    println!();
    println!("{}", "-".repeat(36 + workloads.len() * 35));

    let mut baselines = Vec::new();
    for (i, nc) in spec.configs.iter().enumerate() {
        print!("{:<36}", nc.name);
        for (w, (_, program, words)) in workloads.iter().enumerate() {
            let cycles = measure_cycles(&nc.config, program, *words)
                .unwrap_or_else(|e| panic!("{} failed: {e}", nc.name));
            if i == 0 {
                baselines.push(cycles);
            }
            let slowdown = cycles as f64 / baselines[w] as f64;
            print!(" {cycles:>24} {slowdown:>8.2}x");
        }
        println!();
    }

    println!("\nExpected shape (paper Insight 5): ① costs the most; ② relaxes");
    println!("access; ③ additionally relaxes use; ④ is free without context");
    println!("switches. Absolute numbers are simulator-specific; the ordering");
    println!("and crossover pattern are the reproduced result.");
}
