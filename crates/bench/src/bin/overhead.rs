//! The security/performance trade-off (Insight 5): measure benign-workload
//! slowdown under each defense strategy. The paper predicts the ordering
//! ① (serialize access) ≥ ② (block use) ≥ ③ (block send) ≥ ④ (flush
//! predictors), because later strategies relax what speculation may do.
//!
//! A thin consumer of the defense registry: instead of a hand-written knob
//! list, the configurations measured below are the modeled registry
//! defenses themselves (one representative per distinct mechanism), so a
//! new catalog entry is measured automatically.

use bench::{measure_cycles, workload_array_sum, workload_pointer_chase};
use defenses::names as defense;
use uarch::UarchConfig;

/// The registry defenses measured, one per distinct hardware mechanism.
const MEASURED: &[&str] = &[
    defense::LFENCE,                  // ① no speculative loads
    defense::EAGER_PERMISSION_CHECK,  // ① eager authorization
    defense::NDA,                     // ② block speculative forwarding
    defense::STT,                     // ③ block tainted transmit
    defense::CONDITIONAL_SPECULATION, // ③ delay on miss
    defense::INVISISPEC,              // ③ deferred fills
    defense::CLEANUPSPEC,             // ③ undo on squash
    defense::IBPB,                    // ④ flush predictors on switch
];

fn main() {
    let base = UarchConfig::default();
    let configs: Vec<(String, UarchConfig)> =
        std::iter::once(("baseline (no defense)".to_owned(), base.clone()))
            .chain(MEASURED.iter().map(|name| {
                let d = defenses::find(name).unwrap_or_else(|| panic!("{name} not in registry"));
                let cfg = d
                    .configure(&base)
                    .unwrap_or_else(|| panic!("{name} has no hardware model"));
                (format!("{} {}", d.strategy.label(), d.name), cfg)
            }))
            .collect();

    let workloads: Vec<(&str, isa::Program, u64)> = vec![
        ("array-sum (branchy)", workload_array_sum(64), 128),
        ("pointer-chase (memory)", workload_pointer_chase(24), 128),
    ];

    println!("Defense overhead on benign workloads (simulated cycles)\n");
    print!("{:<36}", "configuration");
    for (wname, _, _) in &workloads {
        print!(" {wname:>24} {:>9}", "slowdown");
    }
    println!();
    println!("{}", "-".repeat(36 + workloads.len() * 35));

    let mut baselines = Vec::new();
    for (i, (name, cfg)) in configs.iter().enumerate() {
        print!("{name:<36}");
        for (w, (_, program, words)) in workloads.iter().enumerate() {
            let cycles = measure_cycles(cfg, program, *words)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            if i == 0 {
                baselines.push(cycles);
            }
            let slowdown = cycles as f64 / baselines[w] as f64;
            print!(" {cycles:>24} {slowdown:>8.2}x");
        }
        println!();
    }

    println!("\nExpected shape (paper Insight 5): ① costs the most; ② relaxes");
    println!("access; ③ additionally relaxes use; ④ is free without context");
    println!("switches. Absolute numbers are simulator-specific; the ordering");
    println!("and crossover pattern are the reproduced result.");
}
