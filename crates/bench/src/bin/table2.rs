//! Regenerates **Table II** of the paper: industrial defenses against
//! speculative attacks — extended with executable verification: each
//! defense is enabled on the simulator and the row's attack family is
//! re-run under it.

use attacks::Attack;
use defenses::{catalog, industry_rows, Verdict};
use uarch::UarchConfig;

/// The representative executable attack(s) for each Table II row.
fn row_attacks(row_attack: &str) -> Vec<Box<dyn Attack>> {
    match row_attack {
        s if s.starts_with("Spectre variants") => vec![Box::new(attacks::spectre_v2::SpectreV2)],
        s if s.starts_with("Spectre boundary") => vec![Box::new(attacks::spectre_v1::SpectreV1)],
        "Spectre" => vec![Box::new(attacks::spectre_v1::SpectreV1)],
        "Meltdown" => vec![Box::new(attacks::meltdown::Meltdown)],
        "Spectre v4" => vec![Box::new(attacks::spectre_v4::SpectreV4)],
        "Spectre RSB" => vec![Box::new(attacks::spectre_rsb::SpectreRsb)],
        other => panic!("unknown Table II row: {other}"),
    }
}

fn main() {
    let all = catalog();
    let base = UarchConfig::default();
    println!("Table II: Industrial defenses against speculative attacks");
    println!("(extended with executable verification on the simulator)\n");
    println!(
        "{:<52} {:<40} {:<34} {}",
        "Attack", "Defense strategy", "Defense", "Verified"
    );
    println!("{}", "-".repeat(140));
    for row in industry_rows() {
        let atks = row_attacks(row.attack);
        for (i, dname) in row.defenses.iter().enumerate() {
            let d = all
                .iter()
                .find(|d| d.name == *dname)
                .unwrap_or_else(|| panic!("{dname} not in catalog"));
            let verdicts: Vec<String> = atks
                .iter()
                .map(|a| {
                    let v = defenses::verify(d, a.as_ref(), &base)
                        .unwrap_or_else(|e| panic!("verify failed: {e}"));
                    match v {
                        Verdict::Blocked => format!("blocks {}", a.info().name),
                        Verdict::Leaked => format!("FAILS vs {}", a.info().name),
                        Verdict::GraphOnly => "software (graph-level)".to_owned(),
                    }
                })
                .collect();
            let (attack_col, strat_col) = if i == 0 {
                (row.attack, row.strategy_name)
            } else {
                ("", "")
            };
            println!(
                "{:<52} {:<40} {:<34} {}",
                attack_col,
                strat_col,
                dname,
                verdicts.join(", ")
            );
        }
    }
    println!("\nStrategy mapping (the paper's Figure-8 taxonomy):");
    for d in &all {
        println!(
            "  {:<40} -> {} ({})",
            d.name,
            d.strategy,
            d.origin
        );
    }
}
