//! Regenerates **Table II** of the paper: industrial defenses against
//! speculative attacks — extended with executable verification: each
//! defense is enabled on the simulator and the row's attack family is
//! re-run under it.
//!
//! A thin consumer of the campaign engine: one matrix run supplies every
//! verdict; the rows below are lookups into it.

use attacks::names as attack;
use defenses::industry_rows;
use specgraph::campaign::{CampaignMatrix, CampaignSpec};
use uarch::UarchConfig;

/// The representative executable attack(s) for each Table II row, by
/// canonical registry name.
fn row_attacks(row_attack: &str) -> Vec<&'static str> {
    match row_attack {
        s if s.starts_with("Spectre variants") => vec![attack::SPECTRE_V2],
        s if s.starts_with("Spectre boundary") => vec![attack::SPECTRE_V1],
        "Spectre" => vec![attack::SPECTRE_V1],
        "Meltdown" => vec![attack::MELTDOWN],
        "Spectre v4" => vec![attack::SPECTRE_V4],
        "Spectre RSB" => vec![attack::SPECTRE_RSB],
        other => panic!("unknown Table II row: {other}"),
    }
}

fn main() {
    let matrix = CampaignMatrix::run(&CampaignSpec::builder(UarchConfig::default()).build())
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));

    println!("Table II: Industrial defenses against speculative attacks");
    println!("(extended with executable verification on the simulator)\n");
    println!(
        "{:<52} {:<40} {:<34} Verified",
        "Attack", "Defense strategy", "Defense"
    );
    println!("{}", "-".repeat(140));
    for row in industry_rows() {
        let atks = row_attacks(row.attack);
        for (i, dname) in row.defenses.iter().enumerate() {
            let verdicts: Vec<String> = atks
                .iter()
                .map(|aname| {
                    let cell = matrix
                        .cell(aname, dname, 0)
                        .unwrap_or_else(|| panic!("{dname} vs {aname} not in the matrix"));
                    match cell.evaluation.mechanism {
                        defenses::Verdict::Blocked => format!("blocks {aname}"),
                        defenses::Verdict::Leaked => format!("FAILS vs {aname}"),
                        defenses::Verdict::GraphOnly => "software (graph-level)".to_owned(),
                    }
                })
                .collect();
            let (attack_col, strat_col) = if i == 0 {
                (row.attack, row.strategy_name)
            } else {
                ("", "")
            };
            println!(
                "{:<52} {:<40} {:<34} {}",
                attack_col,
                strat_col,
                dname,
                verdicts.join(", ")
            );
        }
    }
    println!("\nStrategy mapping (the paper's Figure-8 taxonomy):");
    for stack in &matrix.defenses {
        for d in stack.members() {
            println!("  {:<40} -> {} ({})", d.name, d.strategy, d.origin);
        }
    }
    println!(
        "\nAcross the whole campaign matrix: {} of {} cells are §V-B",
        matrix.false_senses().len(),
        matrix.cells().len()
    );
    println!("'false sense of security' pairs (strategy fits, mechanism misses).");
}
