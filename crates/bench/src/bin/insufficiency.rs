//! The §V-B **insufficient defense** experiment: a security dependency in
//! the wrong place gives a false sense of security.
//!
//! Four configurations of the Meltdown attack:
//! 1. vulnerable baseline, secret in DRAM         → leaks
//! 2. memory-path-only fix, secret in DRAM        → blocked
//! 3. memory-path-only fix, secret in L1 (!)      → leaks again
//! 4. full fix (every datapath ordered)           → blocked

use specgraph::insufficiency::{graph_argument, run_experiment};

fn main() {
    println!("§V-B insufficiency experiment (Meltdown + attacker-induced L1 hit)\n");
    let r = run_experiment().expect("experiment runs");
    println!(
        "{:<52} {:>8} {:>10}",
        "configuration", "leaked?", "recovered"
    );
    println!("{}", "-".repeat(74));
    for (name, out) in [
        ("baseline, secret in DRAM", &r.baseline),
        (
            "defense ① on memory path only, secret in DRAM",
            &r.partial_blocks_baseline,
        ),
        (
            "defense ① on memory path only, secret in L1",
            &r.partial_bypassed_via_cache,
        ),
        (
            "full defense (all datapaths ordered), secret in L1",
            &r.full_blocks_everything,
        ),
    ] {
        println!(
            "{:<52} {:>8} {:>10}",
            name,
            if out.leaked { "YES" } else { "no" },
            out.recovered
                .map_or_else(|| "-".to_owned(), |v| format!("{v:#x}"))
        );
    }

    println!("\nGraph-level version of the same argument:");
    let (_, before, after_partial) = graph_argument();
    println!("  races before any patch:            {before}");
    println!("  races after memory-path-only edge: {after_partial}  <- the cache path still races");
    println!("\nConclusion (paper): a security dependency must cover *every* source");
    println!("of the secret, or the defense only appears to work.");
}
