//! Regenerates **Table III** of the paper: the authorization and
//! illegal-access nodes of every speculative attack variant — extended with
//! two verification columns: the Theorem-1 race check on the variant's
//! attack graph, and the simulated leak verdict.

use attacks::catalog;
use tsg::NodeKind;
use uarch::UarchConfig;

fn main() {
    let cfg = UarchConfig::default();
    println!("Table III: Authorization and Access Nodes of Speculative Attacks");
    println!("(extended: graph race detected by Theorem 1; leak verified by simulation)\n");
    println!(
        "{:<16} {:<38} {:<52} {:<12} {:>6} {:>7}",
        "Attack", "Authorization", "Illegal Access", "Class", "Race?", "Leaks?"
    );
    println!("{}", "-".repeat(135));
    for a in catalog() {
        let info = a.info();
        let sa = a.graph();
        let g = sa.graph();
        let auths = g.nodes_of_kind(NodeKind::is_authorization);
        let accesses = g.nodes_of_kind(NodeKind::is_secret_access);
        let mut race = false;
        for &u in &auths {
            for &v in &accesses {
                race |= g.has_race(u, v).expect("nodes exist");
            }
        }
        let out = a
            .run(&cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", info.name));
        let class = match info.class {
            attacks::AttackClass::Spectre => "inter-inst",
            attacks::AttackClass::Meltdown => "intra-inst",
        };
        println!(
            "{:<16} {:<38} {:<52} {:<12} {:>6} {:>7}",
            info.name,
            info.authorization,
            info.illegal_access,
            class,
            if race { "yes" } else { "NO" },
            if out.leaked { "yes" } else { "NO" }
        );
    }
    println!("\nEvery row shows race=yes (the missing security dependency) and");
    println!("leaks=yes (the executable proof that the race is exploitable).");
}
