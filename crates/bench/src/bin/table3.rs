//! Regenerates **Table III** of the paper: the authorization and
//! illegal-access nodes of every speculative attack variant — extended with
//! two verification columns: the Theorem-1 race check on the variant's
//! attack graph (answered from the reachability index), and the simulated
//! leak verdict.
//!
//! A thin consumer of the campaign engine: the baseline rows already carry
//! both verification columns.

use attacks::AttackClass;
use specgraph::campaign::{CampaignMatrix, CampaignSpec};
use uarch::UarchConfig;

fn main() {
    // Table III verifies the undefended graphs: no defense axis.
    let spec = CampaignSpec::builder(UarchConfig::default())
        .defenses(Vec::new())
        .build();
    let matrix = CampaignMatrix::run(&spec).unwrap_or_else(|e| panic!("campaign failed: {e}"));

    println!("Table III: Authorization and Access Nodes of Speculative Attacks");
    println!("(extended: graph race detected by Theorem 1; leak verified by simulation)\n");
    println!(
        "{:<16} {:<38} {:<52} {:<12} {:>6} {:>7}",
        "Attack", "Authorization", "Illegal Access", "Class", "Race?", "Leaks?"
    );
    println!("{}", "-".repeat(135));
    for row in matrix.baselines() {
        let class = match row.info.class {
            AttackClass::Spectre => "inter-inst",
            AttackClass::Meltdown => "intra-inst",
        };
        println!(
            "{:<16} {:<38} {:<52} {:<12} {:>6} {:>7}",
            row.info.name,
            row.info.authorization,
            row.info.illegal_access,
            class,
            if row.graph_race { "yes" } else { "NO" },
            if row.leaked { "yes" } else { "NO" }
        );
    }
    println!("\nEvery row shows race=yes (the missing security dependency) and");
    println!("leaks=yes (the executable proof that the race is exploitable).");
}
