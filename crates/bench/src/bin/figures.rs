//! Regenerates **Figures 1–9** of the paper: each attack graph as Graphviz
//! DOT (render with `dot -Tpdf`), together with its race analysis, and for
//! Figure 2 the valid-ordering demonstration.
//!
//! Attack graphs are pulled from the registry by canonical name, and the
//! Figure-8 executable cross-check is a campaign slice (Spectre v1 across
//! the strategy-sweep configurations), so the figures track the same
//! single attack list as every table.
//!
//! Usage: `cargo run -p bench --bin figures [fig1 fig2 … fig9 | all]`

use analyzer::{AnalysisConfig, Analyzer};
use attacks::names as attack;
use defenses::Strategy;
use specgraph::campaign::{CampaignMatrix, CampaignSpec, Hardening, Knob};
use std::env;
use tsg::SecurityAnalysis;
use uarch::UarchConfig;

/// The named variant's vulnerable-baseline graph, from the registry.
fn graph_of(name: &str) -> SecurityAnalysis {
    attacks::find(name)
        .unwrap_or_else(|| panic!("{name} not in the attack registry"))
        .graph()
}

fn print_analysis(title: &str, sa: &SecurityAnalysis) {
    println!("=== {title} ===");
    println!("{}", sa.graph().to_dot(title));
    let vulns = sa.vulnerabilities().expect("analyzable");
    println!(
        "missing security dependencies (Theorem 1 races): {}",
        vulns.len()
    );
    for v in &vulns {
        println!("  - {v}");
    }
    println!();
}

fn fig1() {
    print_analysis(
        "Figure 1: Spectre v1/v2 attack graph",
        &graph_of(attack::SPECTRE_V1),
    );
}

fn fig2() {
    println!("=== Figure 2: example Topological Sort Graph ===");
    let g = tsg::examples::fig2();
    println!("{}", g.to_dot("Figure 2"));
    let find = |l: &str| g.find_by_label(l).expect("node exists");
    let s: Vec<_> = ["A", "B", "C", "D", "E", "F", "G"]
        .iter()
        .map(|l| find(l))
        .collect();
    let s_prime: Vec<_> = ["A", "C", "E", "B", "D", "F", "G"]
        .iter()
        .map(|l| find(l))
        .collect();
    let s_double: Vec<_> = ["A", "B", "D", "E", "C", "F", "G"]
        .iter()
        .map(|l| find(l))
        .collect();
    println!(
        "S   = [A,B,C,D,E,F,G] valid: {}",
        g.is_valid_ordering(&s).unwrap()
    );
    println!(
        "S'  = [A,C,E,B,D,F,G] valid: {}",
        g.is_valid_ordering(&s_prime).unwrap()
    );
    println!(
        "S'' = [A,B,D,E,C,F,G] valid: {}",
        g.is_valid_ordering(&s_double).unwrap()
    );
    println!(
        "race(D, E) = {} (Theorem 1: no path connects D and E)",
        g.has_race(find("D"), find("E")).unwrap()
    );
    println!(
        "total valid orderings: {}\n",
        g.count_valid_orderings(12).unwrap()
    );
}

fn fig3() {
    print_analysis(
        "Figure 3: Meltdown attack graph (micro-op level)",
        &graph_of(attack::MELTDOWN),
    );
}

fn fig4() {
    // The unified graph exactly as the paper draws it.
    print_analysis(
        "Figure 4: unified Meltdown/Foreshadow/MDS graph",
        &attacks::graphs::fig4_unified(),
    );
    // Plus each variant's per-source instantiation, from the registry.
    for (caption, name) in [
        ("Meltdown (read from memory)", attack::MELTDOWN),
        ("Foreshadow (read from cache)", attack::FORESHADOW),
        ("RIDL (read from load port)", attack::RIDL),
        (
            "ZombieLoad (read from line fill buffer)",
            attack::ZOMBIELOAD,
        ),
        ("Fallout (read from store buffer)", attack::FALLOUT),
    ] {
        print_analysis(&format!("Figure 4 branch: {caption}"), &graph_of(name));
    }
    // The four defense insertion points ①–④ on the Meltdown graph.
    println!("--- Figure 4 defense arrows ---");
    for s in Strategy::all() {
        let mut sa = graph_of(attack::MELTDOWN);
        match defenses::patch_strategy(&mut sa, s) {
            Ok(n) => {
                let left = sa.vulnerabilities().unwrap().len();
                println!("strategy {s}: {n} edge(s) inserted, {left} race(s) remain");
            }
            Err(e) => println!("strategy {s}: not applicable here ({e})"),
        }
    }
    println!();
}

fn fig5() {
    print_analysis(
        "Figure 5: special-register attacks (Spectre v3a)",
        &graph_of(attack::SPECTRE_V3A),
    );
    print_analysis("Figure 5: Lazy FP", &graph_of(attack::LAZY_FP));
}

fn fig6() {
    print_analysis(
        "Figure 6: memory-disambiguation attack (Spectre v4)",
        &graph_of(attack::SPECTRE_V4),
    );
}

fn fig7() {
    print_analysis("Figure 7: Load Value Injection", &graph_of(attack::LVI));
}

fn fig8() {
    println!("=== Figure 8: the four defense strategies on Spectre v1/v2 ===");
    // Graph level: insert each strategy's edges and recount races.
    for s in Strategy::all() {
        let mut sa = graph_of(attack::SPECTRE_V1);
        let before = sa.vulnerabilities().unwrap().len();
        let inserted = defenses::patch_strategy(&mut sa, s).expect("applicable");
        let after = sa.vulnerabilities().unwrap().len();
        println!("strategy {s}: races {before} -> {after} ({inserted} security edge(s))");
    }
    // Executable cross-check: one campaign slice sweeping Spectre v1 over
    // the per-strategy hardened machines (no defense axis needed) — the
    // Figure-8 five slices as one Hardening knob axis.
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks([attacks::find(attack::SPECTRE_V1).expect("registered")])
        .defenses(Vec::new())
        .axis(Knob::Hardening, Hardening::figure8())
        .build();
    let matrix = CampaignMatrix::run(&spec).expect("campaign runs");
    println!("simulator cross-check (Spectre v1 per hardened machine):");
    for row in matrix.baselines() {
        println!(
            "    {:<28} leaked = {}",
            matrix.configs[row.config], row.leaked
        );
    }
    println!();
}

fn fig9() {
    println!("=== Figure 9: the attack-graph generation flow ===");
    // Left branch: control-flow misprediction (instruction-level).
    let spectre = isa::asm::assemble(
        "load r4, [r2]\nbge r0, r4, out\nload r6, [r5]\nadd r7, r6, r3\nload r8, [r7]\nout: halt",
    )
    .expect("assembles");
    let report = Analyzer::new(AnalysisConfig::default())
        .analyze(&spectre)
        .expect("analyzes");
    println!(
        "Spectre-type input: {} gadget(s), {} race(s) at the instruction level",
        report.gadgets.len(),
        report.vulnerabilities.len()
    );
    // Right branch: faulty access (micro-op decomposition).
    let meltdown = isa::asm::assemble("load r6, [r5]\nload r8, [r6]\nhalt").expect("assembles");
    let report = Analyzer::new(AnalysisConfig {
        user_mode: true,
        ..AnalysisConfig::default()
    })
    .analyze(&meltdown)
    .expect("analyzes");
    println!(
        "Meltdown-type input: {} gadget(s); access decomposed into micro-ops; {} race(s)",
        report.gadgets.len(),
        report.vulnerabilities.len()
    );
    println!(
        "{}",
        report
            .graph
            .graph()
            .to_dot("Figure 9 output (Meltdown-type)")
    );
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in wanted {
        match w {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            other => eprintln!("unknown figure '{other}' (use fig1..fig9 or all)"),
        }
    }
}
