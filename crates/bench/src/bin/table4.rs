//! **Table IV** (a new artifact, not in the paper): minimal sufficient
//! defense stacks, answering the paper's headline §V-B question by
//! exhaustive machine-checked search — *which combination of defenses
//! closes every leak path, and what is the cheapest such combination?*
//!
//! Three searches over [`defenses::cover`]:
//!
//! 1. the **full catalog** (a singleton suffices — at ubiquitous-fencing
//!    or NDA-class cost);
//! 2. the **practical industry** set (no ubiquitous fencing): provably
//!    cannot cover the bounds-bypass family — the reason address masking
//!    exists;
//! 3. the practical industry set on its own turf (the attacks it *can*
//!    block): the provably smallest real-world bundle.
//!
//! Plus the preset-bundle audit ([`defenses::cover::audit_stack`]) with
//! the stack-level "false sense of security" rows called out.
//!
//! Usage: `cargo run --release -p bench --bin table4`

use specgraph::attacks::{self, Attack};
use specgraph::defenses::cover::{self, practical_industry};
use specgraph::defenses::{self, presets};
use uarch::UarchConfig;

fn main() {
    let base = UarchConfig::default();
    let attacks_list = attacks::registry();

    println!("Table IV: minimal sufficient defense stacks");
    println!(
        "(exhaustive search, every candidate stack verified by simulation \
         against all {} registry attacks)\n",
        attacks_list.len()
    );

    // 1. Full catalog.
    let full = cover::minimal_cover(attacks_list, defenses::registry(), &base)
        .unwrap_or_else(|e| panic!("cover search failed: {e}"));
    println!("over the full Table-II/§V-B catalog:");
    println!("  {full}");

    // 2. Practical industry: where coverage breaks.
    let industry = practical_industry();
    let report = cover::minimal_cover(attacks_list, &industry, &base)
        .unwrap_or_else(|e| panic!("cover search failed: {e}"));
    println!("\nover practical industry defenses (no ubiquitous fencing):");
    println!("  {report}");
    println!("  (the paper's point: those escapes are left to software address masking)");

    // 3. Practical industry on its coverable subset.
    let coverable: Vec<&'static dyn Attack> = attacks_list
        .iter()
        .filter(|a| !report.uncovered.contains(&a.info().name))
        .copied()
        .collect();
    let turf = cover::minimal_cover(&coverable, &industry, &base)
        .unwrap_or_else(|e| panic!("cover search failed: {e}"));
    println!("\nover the {} industry-coverable attacks:", coverable.len());
    println!("  {turf}");
    if let Some(stack) = &turf.minimal {
        println!("  members ({}):", stack.tokens());
        for d in stack.members() {
            println!(
                "    {:<36} {} — {}",
                d.name,
                d.strategy.label(),
                d.mechanism
            );
        }
    }

    if !turf.false_sense_stacks.is_empty() {
        println!(
            "  ({} candidate bundle(s) were sufficient on paper but leaked in \
             simulation — §V-B false senses the union arithmetic missed)",
            turf.false_sense_stacks.len()
        );
    }

    // Preset audit: the bundles people actually deploy. One shared graph
    // session per attack serves every preset's false-sense checks.
    println!("\npreset bundles vs all {} attacks:", attacks_list.len());
    let (tokens, stacks): (Vec<_>, Vec<_>) = presets::all().into_iter().unzip();
    let audits = cover::audit_stacks(&stacks, attacks_list, &base)
        .unwrap_or_else(|e| panic!("audit failed: {e}"));
    for (token, audit) in tokens.iter().zip(&audits) {
        println!("  [{token}] {audit}");
    }

    println!("\nper-defense singleton coverage (what each candidate blocks alone):");
    let mut singles = full.singletons.clone();
    singles.sort_by_key(|s| std::cmp::Reverse(s.blocks.len()));
    for s in &singles {
        println!(
            "  {:<40} blocks {:>2}/{}",
            s.defense,
            s.blocks.len(),
            attacks_list.len()
        );
    }
}
