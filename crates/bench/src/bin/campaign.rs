//! The `campaign` binary: a thin shell around [`bench::campaign_cli`],
//! which holds all parsing and command logic so the integration tests
//! exercise the exact code path this binary runs.
//!
//! Usage: `cargo run -p bench --bin campaign -- --help`

use bench::campaign_cli::{main_with, CliError, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match main_with(&args) {
        Ok(_) => {}
        Err(e @ CliError::Usage(_)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
