//! Figure-8 heatmap rendering from a **saved** campaign matrix.
//!
//! The paper's Figure 8 asks one question per hardening mechanism: *which
//! attacks still leak, and what does the mechanism cost?* A
//! [`Figure8View`] answers it from a [`CampaignMatrix`] alone — typically
//! one loaded with `CampaignMatrix::load_json` — so regenerating the
//! heatmap after a campaign (or a `campaign merge`) re-simulates **zero**
//! cells.
//!
//! Three renderings, all deterministic functions of the matrix:
//!
//! * [`Figure8View::to_csv`] — one row per (defense × config) with leak
//!   counts/rates, plus per-config mean baseline cycles and overhead on
//!   the undefended row;
//! * [`Figure8View::to_ascii`] — a terminal heatmap (glyph + percent per
//!   cell);
//! * [`Figure8View::to_svg`] — a standalone SVG heatmap (sequential
//!   single-hue fill, direct per-cell labels, native `<title>` tooltips).
//!
//! Rows are the defense axis with an `(undefended)` row first (from the
//! matrix's baseline runs); columns are the config slices — for a
//! Figure-8 campaign, the knob grid of hardened machines.

use specgraph::campaign::CampaignMatrix;
use specgraph::defenses::Verdict;
use std::fmt::Write as _;

/// The leak-rate row for one defense (or for the undefended baselines).
#[derive(Debug, Clone)]
pub struct HeatRow {
    /// Defense name, or `"(undefended)"` for the baseline row.
    pub defense: String,
    /// Per config slice: attacks that leaked under this defense.
    pub leaked: Vec<usize>,
}

/// A Figure-8 heatmap: leak rate per defense × config slice, with
/// per-config overhead from the undefended baseline cycles.
#[derive(Debug, Clone)]
pub struct Figure8View {
    /// Config-slice names (heatmap columns), in matrix order.
    pub configs: Vec<String>,
    /// Attacks evaluated per cell (the leak-rate denominator).
    pub attacks: usize,
    /// Mean undefended cycles per config slice.
    pub mean_cycles: Vec<f64>,
    /// Mean undefended cycles relative to the first config slice.
    pub overhead: Vec<f64>,
    /// `(undefended)` first, then one row per defense, in matrix order.
    pub rows: Vec<HeatRow>,
}

impl Figure8View {
    /// Builds the view from a matrix — a pure summarization; nothing is
    /// re-simulated.
    #[must_use]
    pub fn from_matrix(m: &CampaignMatrix) -> Self {
        let (a, _, c) = m.shape();
        let mut cycles = vec![0u64; c];
        let mut baseline_leaks = vec![0usize; c];
        for b in m.baselines() {
            cycles[b.config] += b.cycles;
            baseline_leaks[b.config] += usize::from(b.leaked);
        }
        let mean_cycles: Vec<f64> = cycles
            .iter()
            .map(|&sum| {
                if a == 0 {
                    0.0
                } else {
                    to_f64(sum) / to_f64(a as u64)
                }
            })
            .collect();
        let overhead = mean_cycles
            .iter()
            .map(|&mc| {
                if mean_cycles.first().copied().unwrap_or(0.0) > 0.0 {
                    mc / mean_cycles[0]
                } else {
                    1.0
                }
            })
            .collect();
        let mut rows = vec![HeatRow {
            defense: "(undefended)".to_owned(),
            leaked: baseline_leaks,
        }];
        rows.extend(m.defenses.iter().map(|defense| HeatRow {
            defense: defense.name().to_owned(),
            leaked: vec![0usize; c],
        }));
        // One pass over the attack-major cell layout (((a·D)+d)·C + c):
        // row 1 + (j/C) % D is the cell's defense.
        let d = m.defenses.len();
        for (j, cell) in m.cells().iter().enumerate() {
            rows[1 + (j / c) % d].leaked[cell.config] +=
                usize::from(cell.evaluation.mechanism == Verdict::Leaked);
        }
        Figure8View {
            configs: m.configs.clone(),
            attacks: a,
            mean_cycles,
            overhead,
            rows,
        }
    }

    /// Leak rate (`0.0..=1.0`) for one row/column cell.
    #[must_use]
    pub fn leak_rate(&self, row: &HeatRow, config: usize) -> f64 {
        if self.attacks == 0 {
            0.0
        } else {
            to_f64(row.leaked[config] as u64) / to_f64(self.attacks as u64)
        }
    }

    /// The heatmap as CSV: one row per (defense, config) cell. Mean
    /// cycles and overhead come from the undefended baselines, so they
    /// are only filled on the `(undefended)` rows.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("defense,config,attacks,leaked,leak_rate,mean_cycles,overhead\n");
        for row in &self.rows {
            for (j, cfg) in self.configs.iter().enumerate() {
                let (cycles, overhead) = if row.defense == "(undefended)" {
                    (
                        format!("{:.1}", self.mean_cycles[j]),
                        format!("{:.3}", self.overhead[j]),
                    )
                } else {
                    (String::new(), String::new())
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.3},{},{}",
                    csv_field(&row.defense),
                    csv_field(cfg),
                    self.attacks,
                    row.leaked[j],
                    self.leak_rate(row, j),
                    cycles,
                    overhead,
                );
            }
        }
        out
    }

    /// The heatmap for a terminal: numbered columns (config names and
    /// overheads in a key above), one glyph + percentage per cell.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut out = String::from(
            "Figure 8 — hardening heatmap (per cell: fraction of attacks that still leak)\n\n",
        );
        for (j, cfg) in self.configs.iter().enumerate() {
            let _ = writeln!(out, "  [c{j}] {cfg}  (overhead ×{:.2})", self.overhead[j]);
        }
        let name_w = self
            .rows
            .iter()
            .map(|r| r.defense.chars().count())
            .max()
            .unwrap_or(0)
            .max("row \\ col".len());
        let _ = write!(out, "\n  {:<name_w$}", "row \\ col");
        for j in 0..self.configs.len() {
            let _ = write!(out, " {:>6}", format!("c{j}"));
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "  {:<name_w$}", row.defense);
            for j in 0..self.configs.len() {
                let rate = self.leak_rate(row, j);
                let _ = write!(
                    out,
                    " {:>6}",
                    format!("{}{:>4.0}%", glyph(rate), rate * 100.0)
                );
            }
            out.push('\n');
        }
        out.push_str("\n  legend: · 0%   ░ ≤33%   ▒ ≤67%   ▓ <100%   █ 100%\n");
        out
    }

    /// The heatmap as a standalone SVG document: sequential single-hue
    /// cell fill (light → dark blue with rising leak rate), a direct
    /// percentage label on every cell, per-config overhead under the
    /// column labels, and a native `<title>` tooltip per cell.
    #[must_use]
    pub fn to_svg(&self) -> String {
        const CELL_W: usize = 64;
        const CELL_H: usize = 34;
        const GAP: usize = 2; // spacer between fills
        let label_w = 16 + 7 * self.rows.iter().map(|r| r.defense.len()).max().unwrap_or(8);
        let top = 96;
        let cols = self.configs.len();
        let grid_w = cols * (CELL_W + GAP);
        // Keep room for the caption and the last rotated column label
        // even when the grid itself is narrow.
        let longest_config = self.configs.iter().map(String::len).max().unwrap_or(0);
        let width = (label_w + grid_w + 24 + 6 * longest_config).max(560);
        let legend_h = 56;
        let height = top + self.rows.len() * (CELL_H + GAP) + legend_h;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             viewBox=\"0 0 {width} {height}\" font-family=\"system-ui, sans-serif\">"
        );
        let _ = writeln!(
            s,
            "  <rect width=\"{width}\" height=\"{height}\" fill=\"{SURFACE}\"/>"
        );
        let _ = writeln!(
            s,
            "  <text x=\"16\" y=\"28\" font-size=\"15\" font-weight=\"600\" fill=\"{INK}\">\
             Figure 8 — hardening heatmap</text>"
        );
        let _ = writeln!(
            s,
            "  <text x=\"16\" y=\"46\" font-size=\"11\" fill=\"{INK_2}\">\
             cell = fraction of {} attack(s) that still leak; columns show \
             run-time overhead vs the first config</text>",
            self.attacks
        );
        // Column headers: angled config names plus an overhead line.
        for (j, cfg) in self.configs.iter().enumerate() {
            let x = label_w + j * (CELL_W + GAP) + CELL_W / 2;
            let _ = writeln!(
                s,
                "  <text x=\"{x}\" y=\"{y}\" font-size=\"10\" fill=\"{INK}\" \
                 text-anchor=\"start\" transform=\"rotate(-30 {x} {y})\">{}</text>",
                esc(cfg),
                y = top - 26,
            );
            let _ = writeln!(
                s,
                "  <text x=\"{x}\" y=\"{y}\" font-size=\"9\" fill=\"{INK_2}\" \
                 text-anchor=\"middle\">×{:.2}</text>",
                self.overhead[j],
                y = top - 8,
            );
        }
        for (i, row) in self.rows.iter().enumerate() {
            let y = top + i * (CELL_H + GAP);
            let _ = writeln!(
                s,
                "  <text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"{INK}\" \
                 text-anchor=\"end\">{}</text>",
                label_w - 10,
                y + CELL_H / 2 + 4,
                esc(&row.defense)
            );
            for j in 0..cols {
                let rate = self.leak_rate(row, j);
                let x = label_w + j * (CELL_W + GAP);
                let (fill, dark) = sequential_fill(rate);
                let _ = writeln!(
                    s,
                    "  <g><title>{} / {}: {} of {} attack(s) leak ({:.0}%)</title>\n    \
                     <rect x=\"{x}\" y=\"{y}\" width=\"{CELL_W}\" height=\"{CELL_H}\" \
                     rx=\"3\" fill=\"{fill}\"/>\n    \
                     <text x=\"{tx}\" y=\"{ty}\" font-size=\"11\" text-anchor=\"middle\" \
                     fill=\"{ink}\">{:.0}%</text>\n  </g>",
                    esc(&row.defense),
                    esc(&self.configs[j]),
                    row.leaked[j],
                    self.attacks,
                    rate * 100.0,
                    rate * 100.0,
                    tx = x + CELL_W / 2,
                    ty = y + CELL_H / 2 + 4,
                    ink = if dark { "#ffffff" } else { INK },
                );
            }
        }
        // Legend: the sequential ramp with end labels.
        let ly = top + self.rows.len() * (CELL_H + GAP) + 22;
        let _ = writeln!(
            s,
            "  <text x=\"{label_w}\" y=\"{}\" font-size=\"10\" fill=\"{INK_2}\">leak rate</text>",
            ly - 6
        );
        for k in 0..=10usize {
            let (fill, _) = sequential_fill(to_f64(k as u64) / 10.0);
            let _ = writeln!(
                s,
                "  <rect x=\"{}\" y=\"{ly}\" width=\"18\" height=\"10\" fill=\"{fill}\"/>",
                label_w + k * 18
            );
        }
        let _ = writeln!(
            s,
            "  <text x=\"{label_w}\" y=\"{}\" font-size=\"9\" fill=\"{INK_2}\">0%</text>",
            ly + 22
        );
        let _ = writeln!(
            s,
            "  <text x=\"{}\" y=\"{}\" font-size=\"9\" fill=\"{INK_2}\" \
             text-anchor=\"end\">100%</text>",
            label_w + 11 * 18,
            ly + 22
        );
        s.push_str("</svg>\n");
        s
    }
}

/// Chart surface (light mode).
const SURFACE: &str = "#fcfcfb";
/// Primary ink for labels; never the series color.
const INK: &str = "#0b0b0b";
/// Secondary ink for captions and de-emphasized labels.
const INK_2: &str = "#52514e";

/// Sequential single-hue ramp (blue, light → dark) for leak-rate
/// magnitude; exact zero recedes to a neutral near-surface gray. Returns
/// the fill and whether it is dark enough to need white cell labels.
fn sequential_fill(rate: f64) -> (String, bool) {
    const RAMP: [(u8, u8, u8); 7] = [
        (0xcd, 0xe2, 0xfb), // 100
        (0x9e, 0xc5, 0xf4), // 200
        (0x6d, 0xa7, 0xec), // 300
        (0x39, 0x87, 0xe5), // 400
        (0x25, 0x6a, 0xbf), // 500
        (0x18, 0x4f, 0x95), // 600
        (0x0d, 0x36, 0x6b), // 700
    ];
    if rate <= 0.0 {
        return ("#f0efec".to_owned(), false);
    }
    let t = rate.min(1.0) * (RAMP.len() - 1) as f64;
    let lo = (t.floor() as usize).min(RAMP.len() - 2);
    let frac = t - to_f64(lo as u64);
    let mix = |a: u8, b: u8| -> u8 {
        let v = f64::from(a) + (f64::from(b) - f64::from(a)) * frac;
        let clamped = v.clamp(0.0, 255.0);
        // Rounded channel mix stays in 0..=255 by the clamp above.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            clamped.round() as u8
        }
    };
    let (a, b) = (RAMP[lo], RAMP[lo + 1]);
    let rgb = (mix(a.0, b.0), mix(a.1, b.1), mix(a.2, b.2));
    (
        format!("#{:02x}{:02x}{:02x}", rgb.0, rgb.1, rgb.2),
        rate >= 0.55, // from step ~450 on, white labels clear the fill
    )
}

fn glyph(rate: f64) -> char {
    if rate <= 0.0 {
        '·'
    } else if rate <= 1.0 / 3.0 {
        '░'
    } else if rate <= 2.0 / 3.0 {
        '▒'
    } else if rate < 1.0 {
        '▓'
    } else {
        '█'
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn to_f64(n: u64) -> f64 {
    // Campaign counts and cycle sums are far below 2^52; the lossless
    // range of f64.
    #[allow(clippy::cast_precision_loss)]
    {
        n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specgraph::campaign::{CampaignSpec, Hardening, Knob};
    use specgraph::prelude::*;
    use uarch::UarchConfig;

    fn tiny_fig8_matrix() -> CampaignMatrix {
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks([
                attacks::find(attacks::names::SPECTRE_V1).unwrap(),
                attacks::find(attacks::names::MELTDOWN).unwrap(),
            ])
            .defenses([*defenses::find(defenses::names::NDA).unwrap()])
            .axis(Knob::Hardening, [Hardening::None, Hardening::Nda])
            .build();
        CampaignMatrix::run(&spec).unwrap()
    }

    #[test]
    fn view_summarizes_without_resimulating() {
        let m = tiny_fig8_matrix();
        let v = Figure8View::from_matrix(&m);
        assert_eq!(v.configs, m.configs);
        assert_eq!(v.attacks, 2);
        assert_eq!(v.rows.len(), 1 + 1); // (undefended) + NDA
        assert_eq!(v.rows[0].defense, "(undefended)");
        // Undefended baseline leaks everything; the NDA-hardened machine
        // (config 1) leaks nothing even undefended.
        assert_eq!(v.rows[0].leaked, vec![2, 0]);
        assert!((v.leak_rate(&v.rows[0], 0) - 1.0).abs() < 1e-9);
        assert_eq!(v.overhead[0], 1.0);
        assert!(
            v.overhead[1] >= 1.0,
            "hardening never speeds the machine up"
        );
    }

    #[test]
    fn renderings_are_well_formed() {
        let v = Figure8View::from_matrix(&tiny_fig8_matrix());
        let csv = v.to_csv();
        assert!(csv.starts_with("defense,config,attacks,leaked,leak_rate,"));
        // Header + (2 rows × 2 configs).
        assert_eq!(csv.lines().count(), 1 + 4);
        // Overhead only on the undefended rows: exactly 2 rows end with a
        // filled overhead column.
        assert_eq!(
            csv.lines().filter(|l| !l.ends_with(",,")).count(),
            1 + 2,
            "csv: {csv}"
        );
        let ascii = v.to_ascii();
        assert!(ascii.contains("(undefended)"));
        assert!(ascii.contains("100%"));
        assert!(ascii.contains("legend"));
        let svg = v.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<title>").count(), 4);
        // ② NDA's label must be XML-escaped? No markup characters — but
        // the escaper must at least keep the document balanced.
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 11); // bg + cells + legend
    }

    #[test]
    fn sequential_fill_is_monotone_and_zero_recedes() {
        assert_eq!(sequential_fill(0.0).0, "#f0efec");
        assert_eq!(sequential_fill(1.0).0, "#0d366b");
        assert!(!sequential_fill(0.2).1);
        assert!(sequential_fill(0.9).1, "dark cells need white labels");
    }
}
