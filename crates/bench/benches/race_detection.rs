//! Criterion: Theorem-1 race detection scaling on random DAGs, compared
//! against the exponential ordering-enumeration oracle on small graphs —
//! plus the campaign-relevant guardrail: the all-pairs race scan over the
//! catalog attack graphs, per-pair DFS vs the `ReachabilityIndex`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tsg::{EdgeKind, NodeId, NodeKind, ReachabilityIndex, Tsg};

fn random_dag(nodes: usize, edge_prob: f64, seed: u64) -> Tsg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Tsg::with_capacity(nodes, nodes * 4);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
        .collect();
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if rng.gen_bool(edge_prob) {
                g.add_edge(ids[i], ids[j], EdgeKind::Data)
                    .expect("forward edges are acyclic");
            }
        }
    }
    g
}

fn bench_has_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_has_race");
    for &n in &[16usize, 64, 256, 1024] {
        let g = random_dag(n, 4.0 / n as f64, 42);
        let u = NodeId::from_index(0);
        let v = NodeId::from_index(n - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g.has_race(black_box(u), black_box(v)).unwrap()));
        });
    }
    group.finish();
}

fn bench_all_races(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_races");
    for &n in &[16usize, 64, 256] {
        let g = random_dag(n, 4.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g.all_races().len()));
        });
    }
    group.finish();
}

/// All-pairs race count via two DFS walks per pair (the seed algorithm).
fn dfs_all_pairs(g: &Tsg) -> usize {
    let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
    let mut races = 0;
    for (i, &u) in ids.iter().enumerate() {
        for &v in &ids[i + 1..] {
            if g.has_race_dfs(u, v).expect("nodes exist") {
                races += 1;
            }
        }
    }
    races
}

/// All-pairs race count via one closure build plus O(1) probes.
fn indexed_all_pairs(g: &Tsg) -> usize {
    let idx = ReachabilityIndex::build(g);
    let ids: Vec<NodeId> = g.nodes().map(|n| n.id()).collect();
    let mut races = 0;
    for (i, &u) in ids.iter().enumerate() {
        for &v in &ids[i + 1..] {
            if idx.races(u, v) {
                races += 1;
            }
        }
    }
    races
}

/// The perf guardrail behind the campaign engine: the all-pairs race scan
/// over every catalog attack graph (the work one campaign's graph-level
/// verdicts amortize), per-pair DFS vs the reachability index. The index
/// build is *inside* the measured region, so the comparison is honest for
/// single-use graphs too.
fn bench_catalog_graphs(c: &mut Criterion) {
    let graphs: Vec<(String, Tsg)> = attacks::registry()
        .iter()
        .map(|a| (a.info().name.to_owned(), a.graph().into_graph()))
        .collect();
    let expected: usize = graphs.iter().map(|(_, g)| dfs_all_pairs(g)).sum();

    let mut group = c.benchmark_group("catalog_all_pairs_races");
    group.bench_function("per_pair_dfs", |b| {
        b.iter(|| {
            let total: usize = graphs
                .iter()
                .map(|(_, g)| dfs_all_pairs(black_box(g)))
                .sum();
            assert_eq!(total, expected);
            total
        });
    });
    group.bench_function("reachability_index", |b| {
        b.iter(|| {
            let total: usize = graphs
                .iter()
                .map(|(_, g)| indexed_all_pairs(black_box(g)))
                .sum();
            assert_eq!(total, expected);
            total
        });
    });
    group.finish();
}

/// The same comparison on one large random DAG, where the asymptotic gap
/// (O(K²·(V+E)) vs O(V·E/64) + O(K²)) dominates.
fn bench_large_dag_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_dag_all_pairs_races");
    for &n in &[128usize, 512] {
        let g = random_dag(n, 4.0 / n as f64, 21);
        group.bench_with_input(BenchmarkId::new("per_pair_dfs", n), &g, |b, g| {
            b.iter(|| black_box(dfs_all_pairs(g)));
        });
        group.bench_with_input(BenchmarkId::new("reachability_index", n), &g, |b, g| {
            b.iter(|| black_box(indexed_all_pairs(g)));
        });
    }
    group.finish();
}

fn bench_oracle_vs_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("race_fast_vs_enumeration_oracle");
    let g = random_dag(8, 0.3, 3);
    let u = NodeId::from_index(0);
    let v = NodeId::from_index(7);
    group.bench_function("reachability (Theorem 1)", |b| {
        b.iter(|| black_box(g.has_race(u, v).unwrap()));
    });
    group.bench_function("ordering enumeration (definition)", |b| {
        b.iter(|| black_box(g.has_race_by_enumeration(u, v, 12).unwrap()));
    });
    group.finish();
}

fn bench_topological_sort(c: &mut Criterion) {
    let g = random_dag(1024, 4.0 / 1024.0, 11);
    c.bench_function("topological_sort_1024", |b| {
        b.iter(|| black_box(g.topological_sort().len()));
    });
}

criterion_group!(
    benches,
    bench_has_race,
    bench_all_races,
    bench_catalog_graphs,
    bench_large_dag_scan,
    bench_oracle_vs_fast,
    bench_topological_sort
);
criterion_main!(benches);
