//! Criterion: Theorem-1 race detection scaling on random DAGs, compared
//! against the exponential ordering-enumeration oracle on small graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tsg::{EdgeKind, NodeId, NodeKind, Tsg};

fn random_dag(nodes: usize, edge_prob: f64, seed: u64) -> Tsg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Tsg::with_capacity(nodes, nodes * 4);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
        .collect();
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if rng.gen_bool(edge_prob) {
                g.add_edge(ids[i], ids[j], EdgeKind::Data)
                    .expect("forward edges are acyclic");
            }
        }
    }
    g
}

fn bench_has_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_has_race");
    for &n in &[16usize, 64, 256, 1024] {
        let g = random_dag(n, 4.0 / n as f64, 42);
        let u = NodeId::from_index(0);
        let v = NodeId::from_index(n - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g.has_race(black_box(u), black_box(v)).unwrap()));
        });
    }
    group.finish();
}

fn bench_all_races(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_races");
    for &n in &[16usize, 64, 256] {
        let g = random_dag(n, 4.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g.all_races().len()));
        });
    }
    group.finish();
}

fn bench_oracle_vs_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("race_fast_vs_enumeration_oracle");
    let g = random_dag(8, 0.3, 3);
    let u = NodeId::from_index(0);
    let v = NodeId::from_index(7);
    group.bench_function("reachability (Theorem 1)", |b| {
        b.iter(|| black_box(g.has_race(u, v).unwrap()));
    });
    group.bench_function("ordering enumeration (definition)", |b| {
        b.iter(|| black_box(g.has_race_by_enumeration(u, v, 12).unwrap()));
    });
    group.finish();
}

fn bench_topological_sort(c: &mut Criterion) {
    let g = random_dag(1024, 4.0 / 1024.0, 11);
    c.bench_function("topological_sort_1024", |b| {
        b.iter(|| black_box(g.topological_sort().len()));
    });
}

criterion_group!(
    benches,
    bench_has_race,
    bench_all_races,
    bench_oracle_vs_fast,
    bench_topological_sort
);
criterion_main!(benches);
