//! Criterion: end-to-end attack cost — wall time of each Table-III attack
//! (setup + training + transient window + receive) on the baseline, and
//! the analyzer's gadget-finding throughput.

use analyzer::{AnalysisConfig, Analyzer};
use attacks::Attack;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uarch::UarchConfig;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_end_to_end");
    group.sample_size(20);
    let cfg = UarchConfig::default();
    let representative: Vec<Box<dyn Attack>> = vec![
        Box::new(attacks::spectre_v1::SpectreV1),
        Box::new(attacks::spectre_v2::SpectreV2),
        Box::new(attacks::spectre_v4::SpectreV4),
        Box::new(attacks::meltdown::Meltdown),
        Box::new(attacks::foreshadow::Foreshadow::sgx()),
        Box::new(attacks::mds::ZombieLoad),
        Box::new(attacks::lvi::Lvi),
        Box::new(attacks::tsx::Taa),
    ];
    for a in representative {
        group.bench_with_input(BenchmarkId::from_parameter(a.info().name), &a, |b, a| {
            b.iter(|| {
                let out = a.run(&cfg).expect("attack runs");
                assert!(out.leaked);
                black_box(out.cycles)
            });
        });
    }
    group.finish();
}

fn bench_defended_attack(c: &mut Criterion) {
    // How much work a *blocked* attack wastes under NDA.
    c.bench_function("spectre_v1_under_nda", |b| {
        let cfg = UarchConfig::builder().nda(true).build();
        b.iter(|| {
            let out = attacks::spectre_v1::SpectreV1.run(&cfg).expect("runs");
            assert!(!out.leaked);
            black_box(out.cycles)
        });
    });
}

fn bench_analyzer(c: &mut Criterion) {
    let program = attacks::spectre_v1::SpectreV1::program().expect("builds");
    let tool = Analyzer::new(AnalysisConfig::default());
    c.bench_function("analyzer_full_pipeline_spectre_v1", |b| {
        b.iter(|| {
            let report = tool.analyze(&program).expect("analyzes");
            black_box(report.vulnerabilities.len())
        });
    });
}

criterion_group!(
    benches,
    bench_attacks,
    bench_defended_attack,
    bench_analyzer
);
criterion_main!(benches);
