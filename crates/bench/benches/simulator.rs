//! Criterion: simulator throughput — instructions per wall-second on
//! benign workloads, plus the per-strategy defended variants.

use bench::{prepare_workload_memory, workload_array_sum, workload_pointer_chase};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uarch::{Machine, UarchConfig};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    let sum = workload_array_sum(64);
    // array_sum retires ~6 instructions per iteration + setup.
    group.throughput(Throughput::Elements(64 * 6));
    group.bench_function("array_sum_64", |b| {
        b.iter(|| {
            let mut m = Machine::new(UarchConfig::default());
            prepare_workload_memory(&mut m, 128).unwrap();
            black_box(m.run(&sum).unwrap().retired)
        });
    });
    let chase = workload_pointer_chase(32);
    group.throughput(Throughput::Elements(32));
    group.bench_function("pointer_chase_32", |b| {
        b.iter(|| {
            let mut m = Machine::new(UarchConfig::default());
            prepare_workload_memory(&mut m, 128).unwrap();
            black_box(m.run(&chase).unwrap().retired)
        });
    });
    group.finish();
}

fn bench_defended(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_defended");
    let program = workload_array_sum(48);
    let configs: Vec<(&str, UarchConfig)> = vec![
        ("baseline", UarchConfig::default()),
        (
            "strategy1_fences",
            UarchConfig::builder().no_speculative_loads(true).build(),
        ),
        ("strategy2_nda", UarchConfig::builder().nda(true).build()),
        ("strategy3_stt", UarchConfig::builder().stt(true).build()),
        (
            "strategy3_invisispec",
            UarchConfig::builder().invisible_spec(true).build(),
        ),
        ("hardened", UarchConfig::hardened()),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut m = Machine::new(cfg.clone());
                prepare_workload_memory(&mut m, 128).unwrap();
                black_box(m.run(&program).unwrap().cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_defended);
criterion_main!(benches);
