//! Criterion: the serving layer's hit path — the guardrail for the
//! verdict store's ≥1M-lookups/sec contract.
//!
//! Three rungs:
//!
//! 1. `hit_keyed`: [`VerdictStore::get`] with a precomputed cell key —
//!    the raw indexed probe a batch client with cached keys pays.
//! 2. `hit_lookup`: [`VerdictStore::lookup`] from (attack, stack,
//!    config) — key derivation (config digest + FNV fingerprint)
//!    included, still simulation-free.
//! 3. `miss_simulate`: one cold [`VerdictStore::query`] miss per
//!    iteration against a store that never saw the cell — the price the
//!    memoized hit path amortizes away (orders of magnitude above 1/2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use specgraph::campaign::{CampaignMatrix, CampaignSpec, Knob};
use specgraph::defenses::{self, DefenseStack};
use specgraph::serve::VerdictStore;
use specgraph::{attacks, uarch::UarchConfig};
use std::hint::black_box;

/// A small real campaign whose rows seed the store: 4 attacks × 3
/// defenses × 2 ROB depths (20 baselines + cells per slice).
fn seeded_store() -> (VerdictStore, CampaignSpec) {
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks(
            ["Spectre v1", "Spectre v2", "Meltdown", "Spectre-RSB"]
                .iter()
                .map(|n| attacks::find(n).expect("registered")),
        )
        .defenses(
            ["LFENCE", "NDA", "KAISER/KPTI"]
                .iter()
                .map(|n| *defenses::find(n).expect("registered")),
        )
        .axis(Knob::RobDepth, [16usize, 64])
        .build();
    let matrix = CampaignMatrix::run(&spec).expect("campaign runs");
    let store = VerdictStore::new();
    store.ingest_matrix(&matrix);
    (store, spec)
}

/// The keyed hit path: one indexed probe per iteration over a rotating
/// set of real keys. Criterion reports elements/sec — the 1M/sec floor
/// is asserted (much more cheaply) in CI via this same path.
fn bench_hit_paths(c: &mut Criterion) {
    let (store, spec) = seeded_store();
    let mut keys: Vec<u64> = Vec::new();
    for a in &spec.attacks {
        let name = a.info().name;
        for s in &spec.defenses {
            for nc in &spec.configs {
                keys.push(VerdictStore::cell_key(name, s, &nc.config));
            }
        }
    }
    assert!(keys.iter().all(|k| store.get(*k).is_some()));

    let mut group = c.benchmark_group("verdict_store");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("hit_keyed", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(store.get(black_box(keys[i])).expect("seeded"))
        });
    });

    let stack = &spec.defenses[0];
    let cfg = &spec.configs[0].config;
    group.bench_function("hit_lookup", |b| {
        b.iter(|| {
            black_box(
                store
                    .lookup(black_box("Spectre v1"), Some(black_box(stack)), cfg)
                    .expect("seeded"),
            )
        });
    });
    group.finish();
}

/// One miss-path simulation per iteration: a fresh single-row store each
/// time so the miss never becomes a hit. This is the cost the memoized
/// index amortizes — compare against `hit_keyed` for the speedup.
fn bench_miss_simulation(c: &mut Criterion) {
    let attack = attacks::find("Meltdown").expect("registered");
    let stack = DefenseStack::parse("lfence").expect("catalog token");
    let cfg = UarchConfig::default();
    let mut group = c.benchmark_group("verdict_store");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);
    group.bench_function("miss_simulate", |b| {
        b.iter(|| {
            let store = VerdictStore::new();
            let answer = store
                .query(attack, Some(black_box(&stack)), black_box(&cfg))
                .expect("simulates");
            assert_eq!(store.simulations(), 1);
            black_box(answer)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hit_paths, bench_miss_simulation);
criterion_main!(benches);
