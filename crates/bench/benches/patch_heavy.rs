//! Criterion: the patch-heavy loops that dominate campaign runtime —
//! graph mutation with a live reachability index vs the full-rebuild
//! path, the per-attack patch session vs fresh graphs in the
//! `graph_sufficient` and cover-search loops, and the end-to-end
//! knob-grid campaign wall clock.
//!
//! The "rebuild" arms reproduce the pre-incremental cost model (every
//! patch discards the closure; every candidate rebuilds the graph), so
//! the before/after speedup is measured honestly in one tree — the same
//! guardrail style as `race_detection`'s DFS-vs-index comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defenses::{DefenseStack, PatchSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specgraph::campaign::{CampaignMatrix, CampaignSpec, Knob, PredictorFlavor};
use std::hint::black_box;
use tsg::{EdgeKind, NodeId, NodeKind, RacePair, ReachabilityIndex, Tsg};
use uarch::UarchConfig;

fn random_dag(nodes: usize, edge_prob: f64, seed: u64) -> Tsg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Tsg::with_capacity(nodes, nodes * 4);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| g.add_node(format!("n{i}"), NodeKind::Compute))
        .collect();
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if rng.gen_bool(edge_prob) {
                g.add_edge(ids[i], ids[j], EdgeKind::Data)
                    .expect("forward edges are acyclic");
            }
        }
    }
    g
}

/// The campaign-shaped patch/unpatch loop at the `tsg` level: patch one
/// racing pair, ask a reachability verdict, undo — once per candidate.
/// The rebuild arm pays a full `ReachabilityIndex::build` per patch (the
/// pre-incremental cost: every mutation invalidated the cache); the
/// incremental arm folds the edge into the live index and rolls back to a
/// warm checkpoint.
fn bench_patch_unpatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("patch_unpatch");
    for &n in &[128usize, 512] {
        let mut g = random_dag(n, 4.0 / n as f64, 5);
        let pairs: Vec<RacePair> = g.all_races().into_iter().take(32).collect();
        assert!(!pairs.is_empty(), "DAG has no races to patch");

        // Cold checkpoint: no cached closure, so every verdict below is a
        // fresh full build — the old cost model.
        let cold = random_dag(n, 4.0 / n as f64, 5);
        let cold_cp = cold.checkpoint();
        let mut cold = cold;
        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &(), |b, ()| {
            b.iter(|| {
                let mut races = 0usize;
                for pair in &pairs {
                    cold.add_edge(pair.a, pair.b, EdgeKind::Security).unwrap();
                    let idx = ReachabilityIndex::build(&cold);
                    races += usize::from(idx.races(black_box(pair.b), black_box(pair.a)));
                    cold.rollback(&cold_cp);
                }
                races
            });
        });

        // Warm checkpoint: the live index absorbs each patch and rollback
        // restores it by memcpy — no rebuild anywhere in the loop.
        let expected = ReachabilityIndex::build(&g);
        let _ = g.reachability();
        let cp = g.checkpoint();
        group.bench_with_input(BenchmarkId::new("incremental_rollback", n), &(), |b, ()| {
            b.iter(|| {
                let mut races = 0usize;
                for pair in &pairs {
                    g.add_edge(pair.a, pair.b, EdgeKind::Security).unwrap();
                    races +=
                        usize::from(g.reachability().races(black_box(pair.b), black_box(pair.a)));
                    g.rollback(&cp);
                }
                races
            });
        });
        assert_eq!(
            *g.reachability(),
            expected,
            "rollback must restore the index"
        );
    }
    group.finish();
}

/// The defense layer's patch loop: every registry stack's graph verdict
/// against one attack. The fresh-graph arm is the pre-session cost
/// (`DefenseStack::graph_sufficient` constructs and indexes the attack
/// graph per candidate); the session arm builds it once and patches and
/// rolls back incrementally.
fn bench_graph_sufficient_catalog(c: &mut Criterion) {
    let stacks: Vec<DefenseStack> = defenses::registry()
        .iter()
        .map(|d| DefenseStack::single(*d))
        .collect();
    let attack = &attacks::spectre_v2::SpectreV2;
    let expected: Vec<Option<bool>> = stacks
        .iter()
        .map(|s| s.graph_sufficient(attack).unwrap())
        .collect();

    let mut group = c.benchmark_group("graph_sufficient_catalog");
    group.bench_function("fresh_graph_per_stack", |b| {
        b.iter(|| {
            let verdicts: Vec<Option<bool>> = stacks
                .iter()
                .map(|s| s.graph_sufficient(black_box(attack)).unwrap())
                .collect();
            assert_eq!(verdicts, expected);
            verdicts
        });
    });
    group.bench_function("patch_session", |b| {
        b.iter(|| {
            let mut session = PatchSession::new(black_box(attack));
            let verdicts: Vec<Option<bool>> = stacks
                .iter()
                .map(|s| session.graph_sufficient(s).unwrap())
                .collect();
            assert_eq!(verdicts, expected);
            verdicts
        });
    });
    group.finish();
}

/// The Table-IV cover search over the practical industry candidates — the
/// exponential loop the session pool serves.
fn bench_cover_search(c: &mut Criterion) {
    let base = UarchConfig::default();
    let industry = defenses::cover::practical_industry();
    let mut group = c.benchmark_group("cover_search");
    group.bench_function("practical_industry", |b| {
        b.iter(|| {
            let report =
                defenses::cover::minimal_cover(attacks::registry(), &industry, &base).unwrap();
            assert!(report.minimal.is_none());
            report.stacks_verified
        });
    });
    group.finish();
}

/// End-to-end knob-grid campaign wall clock (single-threaded for stable
/// numbers): graph verdicts are hoisted to one per (attack, stack) pair
/// and shared across all four config slices.
fn bench_campaign_grid(c: &mut Criterion) {
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks(attacks::registry().iter().copied().take(6))
        .defenses(defenses::registry().iter().copied().take(6))
        .axis(Knob::RobDepth, [16usize, 48])
        .axis(
            Knob::Predictor,
            [PredictorFlavor::Shared, PredictorFlavor::FlushOnSwitch],
        )
        .threads(1)
        .build();
    let mut group = c.benchmark_group("campaign_grid");
    group.bench_function("6x6x4_single_thread", |b| {
        b.iter(|| {
            let matrix = CampaignMatrix::run(black_box(&spec)).unwrap();
            assert_eq!(matrix.shape(), (6, 6, 4));
            matrix.cells().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_patch_unpatch,
    bench_graph_sufficient_catalog,
    bench_cover_search,
    bench_campaign_grid
);
criterion_main!(benches);
