//! Criterion: the synthesized-scenario discovery loop.
//!
//! Three rungs, from the loop's inner costs outward:
//!
//! 1. `generate`: [`Scenario::generate`] alone — the seeded draw over
//!    (source × delay × channel) plus mutation splicing. Pure CPU, no
//!    simulation; this is the per-candidate overhead the fuzzer adds on
//!    top of the oracles.
//! 2. `classify`: one [`DualOracle::classify`] per iteration over a
//!    rotating window of generated candidates — lift + Theorem 1 on the
//!    warm patch session, plus a full batched simulation on the warm
//!    pooled machine. The dominant cost of every fuzzing campaign.
//! 3. `fuzz_budget_32`: an end-to-end [`fuzz`] run (generate, classify,
//!    dedup, rediscover, shrink) at a small fixed budget — the number a
//!    `campaign fuzz` user actually experiences per 32 candidates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use specgraph::discovery::fuzz::{fuzz, DualOracle, FuzzConfig, Scenario};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzz_loop");
    g.throughput(Throughput::Elements(1));
    let mut index = 0u64;
    g.bench_function("generate", |b| {
        b.iter(|| {
            index = index.wrapping_add(1);
            black_box(Scenario::generate(42, black_box(index)))
        })
    });
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzz_loop");
    g.throughput(Throughput::Elements(1));
    let candidates: Vec<Scenario> = (0..32).map(|i| Scenario::generate(42, i)).collect();
    let mut oracle = DualOracle::new();
    let mut i = 0usize;
    g.bench_function("classify", |b| {
        b.iter(|| {
            i = (i + 1) % candidates.len();
            black_box(oracle.classify(&candidates[i]).expect("classifies"))
        })
    });
    g.finish();
}

fn bench_fuzz_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzz_loop");
    g.sample_size(10);
    let cfg = FuzzConfig {
        seed: 42,
        budget: 32,
        minimize: true,
        threads: 1,
        checkpoint_every: 0,
    };
    g.bench_function("fuzz_budget_32", |b| {
        b.iter(|| black_box(fuzz(&cfg, None).expect("fuzzes")))
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_classify, bench_fuzz_budget);
criterion_main!(benches);
