//! Criterion: warm-machine batched simulation — the guardrail for the
//! campaign executor's machine pool.
//!
//! Three rungs, each with the pre-pool cost model reproduced in-tree so
//! the speedup is measured honestly:
//!
//! 1. `machine_setup`: `Machine::new` per cell vs `Machine::reset` on a
//!    pooled machine — the raw construction overhead the pool removes.
//! 2. `attack_cell`: one full attack simulation per cell, cold
//!    (`Attack::run`, fresh machine each call) vs warm
//!    (`BatchRunner::run`, reset + channel re-prepare).
//! 3. `campaign_grid`: the full registry × Figure-8 hardening grid —
//!    an explicit rebuild-per-cell sweep vs the warm-pool executor
//!    (`CampaignMatrix::run`), single-threaded for stable numbers.

use attacks::BatchRunner;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use specgraph::campaign::{CampaignMatrix, CampaignSpec, Hardening, Knob};
use std::hint::black_box;
use uarch::{Machine, UarchConfig};

/// Machine construction vs reset, nothing else: the setup cost a campaign
/// pays per cell without a pool.
fn bench_machine_setup(c: &mut Criterion) {
    let cfg = UarchConfig::default();
    let mut group = c.benchmark_group("machine_setup");
    group.throughput(Throughput::Elements(1));
    group.bench_function("rebuild", |b| {
        b.iter(|| black_box(Machine::new(black_box(cfg.clone()))).cycle());
    });
    let mut pooled = Machine::new(cfg.clone());
    group.bench_function("warm_reset", |b| {
        b.iter(|| {
            pooled.reset(black_box(&cfg));
            black_box(&pooled).cycle()
        });
    });
    group.finish();
}

/// One attack evaluation per iteration — the campaign's unit of work —
/// cold vs warm. Uses Spectre v1 (mid-weight: training loop + attack run)
/// under the default config.
fn bench_attack_cell(c: &mut Criterion) {
    let cfg = UarchConfig::default();
    let attack = &attacks::spectre_v1::SpectreV1;
    let mut group = c.benchmark_group("attack_cell");
    group.throughput(Throughput::Elements(1));
    group.bench_function("cold_rebuild", |b| {
        b.iter(|| {
            let out = attacks::Attack::run(attack, black_box(&cfg)).unwrap();
            assert!(out.leaked);
            out.cycles
        });
    });
    let mut runner = BatchRunner::new();
    group.bench_function("warm_reset", |b| {
        b.iter(|| {
            let out = runner.run(attack, black_box(&cfg)).unwrap();
            assert!(out.leaked);
            out.cycles
        });
    });
    group.finish();
}

/// The full registry × Figure-8 hardening sweep. The rebuild arm replays
/// the machine work of every task (baselines + cells) with a fresh
/// machine per call — the pre-pool executor's cost model; the warm arm is
/// the real executor with its per-worker pool.
fn bench_campaign_grid(c: &mut Criterion) {
    let spec = CampaignSpec::builder(UarchConfig::default())
        .attacks(attacks::registry().iter().copied())
        .defenses(defenses::registry().iter().copied())
        .axis(Knob::Hardening, Hardening::figure8())
        .threads(1)
        .build();
    let expected = CampaignMatrix::run(&spec).unwrap();
    let tasks = expected.baselines().len() + expected.cells().len();

    let mut group = c.benchmark_group("campaign_grid");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tasks as u64));
    group.bench_function("rebuild_per_cell", |b| {
        b.iter(|| {
            let mut leaks = 0usize;
            for cfg in &spec.configs {
                for attack in &spec.attacks {
                    leaks += usize::from(attack.run(&cfg.config).unwrap().leaked);
                    for stack in &spec.defenses {
                        let v = defenses::verify_stack(stack, *attack, &cfg.config).unwrap();
                        leaks += usize::from(v == defenses::Verdict::Leaked);
                    }
                }
            }
            leaks
        });
    });
    // Same bare sweep on one pooled machine — isolates exactly what the
    // pool buys, with no executor bookkeeping in either arm.
    group.bench_function("warm_pool", |b| {
        let mut runner = BatchRunner::new();
        b.iter(|| {
            let mut leaks = 0usize;
            for cfg in &spec.configs {
                for attack in &spec.attacks {
                    leaks += usize::from(runner.run(*attack, &cfg.config).unwrap().leaked);
                    for stack in &spec.defenses {
                        let v =
                            defenses::verify_stack_warm(stack, *attack, &cfg.config, &mut runner)
                                .unwrap();
                        leaks += usize::from(v == defenses::Verdict::Leaked);
                    }
                }
            }
            leaks
        });
    });
    // The real executor end to end (graph verdicts, fingerprints, matrix
    // assembly included) — the wall-clock number ROADMAP tracks.
    group.bench_function("warm_pool_executor", |b| {
        b.iter(|| {
            let matrix = CampaignMatrix::run(black_box(&spec)).unwrap();
            assert_eq!(matrix.cells().len(), expected.cells().len());
            matrix.cells().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_setup,
    bench_attack_cell,
    bench_campaign_grid
);
criterion_main!(benches);
