//! Criterion: covert-channel performance — full send+receive round trips
//! for the channel classes of §II-C.

use channels::flush_reload::FlushReload;
use channels::prime_probe::PrimeProbe;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uarch::{Machine, UarchConfig};

fn bench_flush_reload(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush_reload_roundtrip");
    for &slots in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            b.iter(|| {
                let mut m = Machine::new(UarchConfig::default());
                let ch = FlushReload::new(0x10_0000, slots);
                ch.prepare(&mut m).unwrap();
                m.touch(ch.slot_address(slots / 2)).unwrap();
                black_box(ch.receive(&mut m).unwrap().recovered)
            });
        });
    }
    group.finish();
}

fn bench_prime_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("prime_probe_roundtrip");
    for &symbols in &[8usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(symbols),
            &symbols,
            |b, &symbols| {
                b.iter(|| {
                    let mut m = Machine::new(UarchConfig::default());
                    let ch = PrimeProbe::new(0x40_0000, symbols);
                    ch.prime(&mut m).unwrap();
                    let sender = PrimeProbe::sender_address(0x80_0000, symbols / 2);
                    m.map_user_page(sender).unwrap();
                    m.timed_read(sender).unwrap();
                    black_box(ch.probe(&mut m).unwrap().recovered)
                });
            },
        );
    }
    group.finish();
}

fn bench_channel_accuracy_sweep(c: &mut Criterion) {
    // Transmit every symbol value once; the decoder must be exact. This
    // benchmarks a full byte transfer over Flush+Reload.
    c.bench_function("flush_reload_full_byte_sweep", |b| {
        b.iter(|| {
            let mut m = Machine::new(UarchConfig::default());
            let ch = FlushReload::new(0x10_0000, 32);
            let mut correct = 0u32;
            for sym in 0..32usize {
                ch.prepare(&mut m).unwrap();
                m.touch(ch.slot_address(sym)).unwrap();
                if ch.receive(&mut m).unwrap().recovered == Some(sym) {
                    correct += 1;
                }
            }
            assert_eq!(correct, 32);
            black_box(correct)
        });
    });
}

criterion_group!(
    benches,
    bench_flush_reload,
    bench_prime_probe,
    bench_channel_accuracy_sweep
);
criterion_main!(benches);
