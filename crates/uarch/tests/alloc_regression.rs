//! Allocation regression guard for the warm-machine hot path.
//!
//! The campaign executor runs thousands of attack simulations on one
//! pooled machine per worker; the win only holds if the steady-state cycle
//! loop and [`Machine::reset`] stay heap-allocation-free. This test wraps
//! the system allocator in a counter and pins both down to **zero**
//! allocations once the machine is warm (first-touch `HashMap` inserts in
//! memory and predictor tables are warm-up cost, paid once per machine).
//!
//! Kept to a single `#[test]` so concurrent tests in the same binary
//! cannot perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use isa::{AluOp, Cond, ProgramBuilder, Reg};
use uarch::{Machine, UarchConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation counter bolted on.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_machine_run_and_reset_are_allocation_free() {
    let cfg = UarchConfig::default();
    let mut m = Machine::new(cfg.clone());
    m.map_user_page(0x7000).unwrap();
    for i in 0..8 {
        m.write_u64(0x7000 + i * 8, i + 1).unwrap();
    }
    // A fault-free program exercising the whole pipeline: ALU, loads,
    // stores, a (trainable) branch — every steady-state datapath.
    let program = ProgramBuilder::new()
        .imm(Reg::R1, 0x7000)
        .load(Reg::R2, Reg::R1, 0)
        .alu_imm(AluOp::Add, Reg::R3, Reg::R2, 5)
        .alu(AluOp::Add, Reg::R4, Reg::R3, Reg::R2)
        .store(Reg::R4, Reg::R1, 16)
        .branch_if(Cond::Eq, Reg::R2, Reg::ZERO, "skip")
        .load(Reg::R5, Reg::R1, 8)
        .label("skip")
        .unwrap()
        .alu_imm(AluOp::Xor, Reg::R6, Reg::R5, 1)
        .halt()
        .build()
        .unwrap();

    // Warm-up: grows the ROB ring, inserts the first-touch memory words
    // and predictor entries, sizes the tx-fallback scratch.
    for _ in 0..3 {
        m.run(&program).unwrap();
    }
    m.clear_events();

    // Steady state: the cycle loop must not touch the heap at all.
    let during_run = allocations_during(|| {
        let r = m.run(&program).unwrap();
        assert!(r.halted);
    });
    assert_eq!(
        during_run, 0,
        "steady-state run allocated {during_run} times"
    );

    // Reset is clear-and-reuse, never rebuild: also allocation-free.
    let during_reset = allocations_during(|| m.reset(&cfg));
    assert_eq!(during_reset, 0, "reset allocated {during_reset} times");

    // And the machine still works after the counted reset.
    m.map_user_page(0x7000).unwrap();
    for i in 0..8 {
        m.write_u64(0x7000 + i * 8, i + 1).unwrap();
    }
    let r = m.run(&program).unwrap();
    assert!(r.halted);
}
