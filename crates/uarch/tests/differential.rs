//! Differential testing: the speculative out-of-order machine must be
//! *architecturally* equivalent to a trivial in-order interpreter on
//! fault-free programs. Speculation may leave micro-architectural residue
//! (that is the whole point of the paper) but never architectural
//! differences — squash must roll back everything visible.

use isa::{AluOp, Cond, Instruction, Operand, Program, Reg};
use proptest::prelude::*;
use std::collections::HashMap;
use uarch::{Machine, UarchConfig};

/// The mapped data page used by generated programs.
const PAGE: u64 = 0x7000;

/// Words available on the data page.
const WORDS: u64 = 64;

/// A simple sequential reference interpreter with the same architectural
/// semantics (fault-free subset).
fn reference_run(program: &Program, init_mem: &[(u64, u64)]) -> ([u64; 16], HashMap<u64, u64>) {
    let mut regs = [0u64; 16];
    let mut mem: HashMap<u64, u64> = init_mem.iter().copied().collect();
    let mut pc = 0usize;
    let read_reg = |regs: &[u64; 16], r: Reg| if r.is_zero() { 0 } else { regs[r.index()] };
    let mut steps = 0;
    while pc < program.len() && steps < 10_000 {
        steps += 1;
        match program[pc] {
            Instruction::Imm { dst, value } => {
                if !dst.is_zero() {
                    regs[dst.index()] = value;
                }
                pc += 1;
            }
            Instruction::Alu { op, dst, a, b } => {
                let bv = match b {
                    Operand::Reg(r) => read_reg(&regs, r),
                    Operand::Imm(v) => v,
                };
                if !dst.is_zero() {
                    regs[dst.index()] = op.apply(read_reg(&regs, a), bv);
                }
                pc += 1;
            }
            Instruction::Load { dst, base, offset } => {
                let addr = read_reg(&regs, base).wrapping_add(offset as u64) & !7;
                if !dst.is_zero() {
                    regs[dst.index()] = mem.get(&addr).copied().unwrap_or(0);
                }
                pc += 1;
            }
            Instruction::Store { src, base, offset } => {
                let addr = read_reg(&regs, base).wrapping_add(offset as u64) & !7;
                mem.insert(addr, read_reg(&regs, src));
                pc += 1;
            }
            Instruction::BranchIf { cond, a, b, target } => {
                if cond.eval(read_reg(&regs, a), read_reg(&regs, b)) {
                    pc = target;
                } else {
                    pc += 1;
                }
            }
            Instruction::Halt => break,
            Instruction::Nop => pc += 1,
            ref other => panic!("generator produced unsupported instruction {other}"),
        }
    }
    (regs, mem)
}

/// One generated instruction, operands constrained to stay fault-free.
#[derive(Debug, Clone)]
enum GenOp {
    Imm { dst: u8, word: u64 },
    Alu { op: u8, dst: u8, a: u8, imm: u64 },
    AluReg { op: u8, dst: u8, a: u8, b: u8 },
    LoadAt { dst: u8, word: u64 },
    StoreAt { src: u8, word: u64 },
    SkipIf { cond: u8, a: u8, b: u8 },
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..8, 0u64..WORDS).prop_map(|(dst, word)| GenOp::Imm { dst, word }),
        (0u8..8, 0u8..8, 0u8..8, 0u64..64).prop_map(|(op, dst, a, imm)| GenOp::Alu {
            op: op % 8,
            dst,
            a,
            imm
        }),
        (0u8..8, 0u8..8, 0u8..8, 0u8..8).prop_map(|(op, dst, a, b)| GenOp::AluReg {
            op: op % 8,
            dst,
            a,
            b
        }),
        (0u8..8, 0u64..WORDS).prop_map(|(dst, word)| GenOp::LoadAt { dst, word }),
        (0u8..8, 0u64..WORDS).prop_map(|(src, word)| GenOp::StoreAt { src, word }),
        (0u8..4, 0u8..8, 0u8..8).prop_map(|(cond, a, b)| GenOp::SkipIf { cond, a, b }),
    ]
}

fn alu_of(i: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Mul,
    ][(i % 8) as usize]
}

fn cond_of(i: u8) -> Cond {
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge][(i % 4) as usize]
}

/// Compiles the generated ops into a program. `SkipIf` becomes a forward
/// branch over the next instruction — real (speculatable, mispredictable)
/// control flow with guaranteed termination. r14 is reserved as the data
/// page base.
fn compile(ops: &[GenOp]) -> Program {
    let base = Reg::R14;
    let mut insts: Vec<Instruction> = vec![Instruction::Imm {
        dst: base,
        value: PAGE,
    }];
    for op in ops {
        match *op {
            GenOp::Imm { dst, word } => insts.push(Instruction::Imm {
                dst: Reg::new(dst),
                value: word * 8 + 1,
            }),
            GenOp::Alu { op, dst, a, imm } => insts.push(Instruction::Alu {
                op: alu_of(op),
                dst: Reg::new(dst),
                a: Reg::new(a),
                b: Operand::Imm(imm),
            }),
            GenOp::AluReg { op, dst, a, b } => insts.push(Instruction::Alu {
                op: alu_of(op),
                dst: Reg::new(dst),
                a: Reg::new(a),
                b: Operand::Reg(Reg::new(b)),
            }),
            GenOp::LoadAt { dst, word } => insts.push(Instruction::Load {
                dst: Reg::new(dst),
                base,
                offset: (word * 8) as i64,
            }),
            GenOp::StoreAt { src, word } => insts.push(Instruction::Store {
                src: Reg::new(src),
                base,
                offset: (word * 8) as i64,
            }),
            GenOp::SkipIf { cond, a, b } => {
                let target = insts.len() + 2;
                insts.push(Instruction::BranchIf {
                    cond: cond_of(cond),
                    a: Reg::new(a),
                    b: Reg::new(b),
                    target,
                });
                insts.push(Instruction::Nop); // the skippable slot
            }
        }
    }
    insts.push(Instruction::Halt);
    // Branch targets may point at the halt; always in range.
    Program::from_instructions(insts).expect("generated program is valid")
}

fn machine_with_page(cfg: &UarchConfig, init: &[(u64, u64)]) -> Machine {
    let mut m = Machine::new(cfg.clone());
    m.map_user_page(PAGE).expect("mappable");
    for &(a, v) in init {
        m.write_u64(a, v).expect("mapped");
    }
    m
}

fn init_mem() -> Vec<(u64, u64)> {
    (0..WORDS).map(|i| (PAGE + i * 8, i * 3 + 7)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Architectural equivalence: OoO speculative execution must produce
    /// the same registers and memory as the in-order reference.
    #[test]
    fn ooo_matches_reference(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let program = compile(&ops);
        let init = init_mem();
        let (ref_regs, ref_mem) = reference_run(&program, &init);

        let mut m = machine_with_page(&UarchConfig::default(), &init);
        let r = m.run(&program).expect("fault-free program runs");
        prop_assert!(r.halted);
        for i in 0..15 {
            prop_assert_eq!(
                m.reg(Reg::new(i)),
                ref_regs[i as usize],
                "r{} differs (program:\n{})", i, program
            );
        }
        for w in 0..WORDS {
            let addr = PAGE + w * 8;
            let expected = ref_mem.get(&addr).copied().unwrap_or(0);
            prop_assert_eq!(m.read_u64(addr).expect("mapped"), expected, "mem[{:#x}]", addr);
        }
    }

    /// Architectural equivalence must hold under *every* defense
    /// configuration: defenses restrict speculation, never change
    /// semantics.
    #[test]
    fn defenses_preserve_semantics(ops in proptest::collection::vec(arb_op(), 1..24)) {
        let program = compile(&ops);
        let init = init_mem();
        let (ref_regs, _) = reference_run(&program, &init);
        for cfg in [
            UarchConfig::builder().no_speculative_loads(true).build(),
            UarchConfig::builder().nda(true).build(),
            UarchConfig::builder().stt(true).build(),
            UarchConfig::builder().delay_on_miss(true).build(),
            UarchConfig::builder().invisible_spec(true).build(),
            UarchConfig::builder().cleanup_spec(true).build(),
            UarchConfig::builder().ssb_disable(true).build(),
            UarchConfig::hardened(),
        ] {
            let mut m = machine_with_page(&cfg, &init);
            let r = m.run(&program).expect("runs");
            prop_assert!(r.halted);
            for i in 0..15 {
                prop_assert_eq!(m.reg(Reg::new(i)), ref_regs[i as usize]);
            }
        }
    }

    /// Determinism: identical runs produce identical cycle counts and
    /// state.
    #[test]
    fn runs_are_deterministic(ops in proptest::collection::vec(arb_op(), 1..24)) {
        let program = compile(&ops);
        let init = init_mem();
        let run = || {
            let mut m = machine_with_page(&UarchConfig::default(), &init);
            let r = m.run(&program).expect("runs");
            let regs: Vec<u64> = (0..15).map(|i| m.reg(Reg::new(i))).collect();
            (r, regs)
        };
        prop_assert_eq!(run(), run());
    }
}
