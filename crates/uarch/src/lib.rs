//! # `uarch` — a speculative out-of-order CPU simulator
//!
//! The micro-architectural substrate of the specgraph reproduction of
//! "New Models for Understanding and Reasoning about Speculative Execution
//! Attacks" (HPCA 2021).
//!
//! The paper reasons about attacks as *ordering races* between a delayed
//! **authorization** operation and eager **access/use/send** operations.
//! This simulator makes those races executable: it models
//!
//! * an in-order-retire, out-of-order-execute pipeline with a re-order
//!   buffer ([`Machine`]),
//! * trainable predictors — pattern history table, branch target buffer,
//!   return stack buffer, memory-disambiguation predictor
//!   ([`predictor`]),
//! * a set-associative write-back data cache whose contents persist across
//!   squashes — the covert-channel medium ([`cache`]),
//! * delayed permission checks (MMU privilege, present/reserved bits for
//!   L1-terminal-fault, MSR privilege, lazy-FPU ownership) that *race* with
//!   the data access of the same instruction — the Meltdown-type
//!   intra-instruction race ([`mmu`], [`Machine`]),
//! * leaky micro-architectural buffers — line-fill buffer, store buffer,
//!   load ports — for the MDS attack family ([`buffers`]),
//! * TSX-style transactions whose aborts suppress exceptions (TAA),
//! * every defense strategy of the paper's Figure 8 as a configuration knob
//!   ([`UarchConfig`]): serialize access (①), block speculative data use
//!   (②, NDA/STT), hide or undo micro-architectural sends (③,
//!   delay-on-miss / InvisiSpec / CleanupSpec), and flush predictors on
//!   context switch (④).
//!
//! Determinism: given the same programs and configuration the simulation is
//! bit-for-bit reproducible; there is no randomness anywhere.
//!
//! ```
//! use isa::{ProgramBuilder, Reg};
//! use uarch::{Machine, UarchConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(UarchConfig::default());
//! m.map_user_page(0x1000)?;
//! m.write_u64(0x1000, 7)?;
//! let p = ProgramBuilder::new()
//!     .imm(Reg::R0, 0x1000)
//!     .load(Reg::R1, Reg::R0, 0)
//!     .halt()
//!     .build()?;
//! let r = m.run(&p)?;
//! assert!(r.halted);
//! assert_eq!(m.reg(Reg::R1), 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffers;
pub mod cache;
mod config;
mod error;
mod event;
mod fpu;
mod machine;
mod mem;
pub mod mmu;
pub mod predictor;
mod result;
mod smallmap;

pub use config::{UarchConfig, UarchConfigBuilder};
pub use error::UarchError;
pub use event::{SquashCause, TraceEvent, TransientSource};
pub use fpu::FpuState;
pub use machine::{ContextId, ExceptionBehavior, Machine, Privilege};
pub use mem::Memory;
pub use result::{Fault, RunResult};
pub use smallmap::SmallMap;
