//! Leaky micro-architectural buffers: line fill buffer, store buffer and
//! load ports.
//!
//! These are the *sources of secrets* for the MDS attack family in the
//! paper's Figure 4: a faulting load on a vulnerable machine aggressively
//! forwards stale data from one of these structures instead of the correct
//! memory value — RIDL (load port / line fill buffer), ZombieLoad (line fill
//! buffer), Fallout (store buffer), and LVI (attacker-planted values in any
//! of them).

use crate::cache::WORDS_PER_LINE;
use std::collections::VecDeque;

/// One line-fill-buffer entry: a line in flight (or recently completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfbEntry {
    /// Line-aligned physical address.
    pub base: u64,
    /// Line data.
    pub data: [u64; WORDS_PER_LINE],
}

/// The line fill buffer: a FIFO of recently-filled lines whose stale
/// contents remain visible to faulting loads (ZombieLoad/RIDL).
#[derive(Debug, Clone)]
pub struct LineFillBuffer {
    entries: VecDeque<LfbEntry>,
    capacity: usize,
}

impl LineFillBuffer {
    /// Creates an LFB with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LFB capacity must be non-zero");
        LineFillBuffer {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Empties the buffer and adopts a (possibly different) capacity,
    /// keeping the heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "LFB capacity must be non-zero");
        self.entries.clear();
        self.capacity = capacity;
    }

    /// Records a fill passing through the buffer.
    pub fn record(&mut self, base: u64, data: [u64; WORDS_PER_LINE]) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LfbEntry { base, data });
    }

    /// The *stale* word a faulting load at line offset `offset` would
    /// sample: the most recent entry's word at that offset.
    #[must_use]
    pub fn sample(&self, offset: u64) -> Option<u64> {
        let word = ((offset % 64) / 8) as usize;
        self.entries.back().map(|e| e.data[word])
    }

    /// All entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<LfbEntry> {
        self.entries.iter().copied().collect()
    }

    /// Clears the buffer (e.g. VERW-style overwrite mitigation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One store-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Full physical address of the store.
    pub paddr: u64,
    /// Stored value.
    pub value: u64,
    /// Whether the store has retired (drained stores eventually disappear).
    pub retired: bool,
}

/// The store buffer: completed-but-not-drained stores.
///
/// Used for (a) legitimate store-to-load forwarding, (b) Spectre v4 stale
/// reads when forwarding is *not* detected, and (c) Fallout, where a
/// faulting load samples a store-buffer value that merely matches in the
/// low address bits.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<StoreEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a store buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be non-zero");
        StoreBuffer {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Empties the buffer and adopts a (possibly different) capacity,
    /// keeping the heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "store buffer capacity must be non-zero");
        self.entries.clear();
        self.capacity = capacity;
    }

    /// Appends a retired store (oldest evicted on overflow).
    pub fn record(&mut self, paddr: u64, value: u64) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(StoreEntry {
            paddr,
            value,
            retired: true,
        });
    }

    /// Latest value for an *exact* address match (store-to-load forwarding).
    #[must_use]
    pub fn forward(&self, paddr: u64) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.paddr & !7 == paddr & !7)
            .map(|e| e.value)
    }

    /// The value a *faulting* load would transiently sample (Fallout):
    /// the newest entry whose **page offset** matches the load's page
    /// offset — the partial-address match of real store buffers.
    #[must_use]
    pub fn sample_by_offset(&self, page_offset: u64) -> Option<u64> {
        let off = (page_offset % 4096) & !7;
        self.entries
            .iter()
            .rev()
            .find(|e| (e.paddr % 4096) & !7 == off)
            .map(|e| e.value)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Load-port residue: values recently moved through the load ports, which a
/// faulting load may sample (RIDL).
#[derive(Debug, Clone)]
pub struct LoadPorts {
    values: VecDeque<u64>,
    capacity: usize,
}

impl LoadPorts {
    /// Creates load-port state with the given number of tracked values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "load port capacity must be non-zero");
        LoadPorts {
            values: VecDeque::new(),
            capacity,
        }
    }

    /// Empties the residue and adopts a (possibly different) capacity,
    /// keeping the heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "load port capacity must be non-zero");
        self.values.clear();
        self.capacity = capacity;
    }

    /// Records a value passing through a load port.
    pub fn record(&mut self, value: u64) {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// The stale value a faulting load would sample (most recent).
    #[must_use]
    pub fn sample(&self) -> Option<u64> {
        self.values.back().copied()
    }

    /// Clears the residue.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Current number of tracked values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there is no residue.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfb_records_and_samples_most_recent() {
        let mut l = LineFillBuffer::new(2);
        assert_eq!(l.sample(0), None);
        l.record(0x000, [1; WORDS_PER_LINE]);
        l.record(0x040, [2; WORDS_PER_LINE]);
        assert_eq!(l.sample(8), Some(2));
        l.record(0x080, [3; WORDS_PER_LINE]); // evicts oldest
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[0].base, 0x040);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn lfb_sample_respects_word_offset() {
        let mut l = LineFillBuffer::new(1);
        let mut data = [0u64; WORDS_PER_LINE];
        data[3] = 0xdead;
        l.record(0x100, data);
        assert_eq!(l.sample(24), Some(0xdead));
        assert_eq!(l.sample(0), Some(0));
        // Offsets wrap at line size.
        assert_eq!(l.sample(64 + 24), Some(0xdead));
    }

    #[test]
    fn store_buffer_exact_forwarding() {
        let mut s = StoreBuffer::new(4);
        s.record(0x1000, 11);
        s.record(0x1008, 22);
        s.record(0x1000, 33); // newer store to same addr
        assert_eq!(s.forward(0x1000), Some(33));
        assert_eq!(s.forward(0x1004), Some(33)); // same word
        assert_eq!(s.forward(0x1008), Some(22));
        assert_eq!(s.forward(0x2000), None);
    }

    #[test]
    fn store_buffer_fallout_offset_match() {
        let mut s = StoreBuffer::new(4);
        // Victim stores a secret at kernel address 0xffff_1238.
        s.record(0xffff_1238, 0x5ec2e7);
        // Attacker's faulting load at user address with same page offset
        // 0x238 samples it.
        assert_eq!(s.sample_by_offset(0x238), Some(0x5ec2e7));
        assert_eq!(s.sample_by_offset(0x240), None);
    }

    #[test]
    fn store_buffer_capacity() {
        let mut s = StoreBuffer::new(2);
        s.record(0, 1);
        s.record(8, 2);
        s.record(16, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.forward(0), None); // oldest evicted
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn load_ports_sample_latest() {
        let mut p = LoadPorts::new(2);
        assert_eq!(p.sample(), None);
        p.record(5);
        p.record(6);
        p.record(7);
        assert_eq!(p.len(), 2);
        assert_eq!(p.sample(), Some(7));
        p.clear();
        assert!(p.is_empty());
    }
}
