//! Flat physical memory.

use std::collections::HashMap;

/// Sparse, word-granular physical memory.
///
/// All accesses are 8-byte and 8-byte aligned (the attack models never need
/// sub-word granularity); unaligned addresses are rounded down. Unwritten
/// memory reads as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// Creates empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn align(addr: u64) -> u64 {
        addr & !7
    }

    /// Reads the 8-byte word containing `addr`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.words.get(&Self::align(addr)).copied().unwrap_or(0)
    }

    /// Writes the 8-byte word containing `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        if value == 0 {
            self.words.remove(&Self::align(addr));
        } else {
            self.words.insert(Self::align(addr), value);
        }
    }

    /// Number of non-zero words stored.
    #[must_use]
    pub fn populated_words(&self) -> usize {
        self.words.len()
    }

    /// Zeroes all of memory, keeping the heap capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0x1234), 0);
    }

    #[test]
    fn roundtrip_and_alignment() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 42);
        assert_eq!(m.read_u64(0x1000), 42);
        assert_eq!(m.read_u64(0x1007), 42); // same word
        assert_eq!(m.read_u64(0x1008), 0); // next word
        m.write_u64(0x1003, 7); // rounds down to 0x1000
        assert_eq!(m.read_u64(0x1000), 7);
    }

    #[test]
    fn writing_zero_reclaims_storage() {
        let mut m = Memory::new();
        m.write_u64(8, 5);
        assert_eq!(m.populated_words(), 1);
        m.write_u64(8, 0);
        assert_eq!(m.populated_words(), 0);
        assert_eq!(m.read_u64(8), 0);
    }
}
