//! A sorted small-vec map for tiny, hot lookup tables.
//!
//! [`Machine`](crate::Machine) keeps two such tables — MSR values and
//! TxBegin→fallback pcs. Both hold at most a handful of entries but sit in
//! the cycle loop, where a `HashMap` costs hashing on every probe and an
//! allocation per rebuild. A sorted `Vec<(K, V)>` with binary search is
//! faster at these sizes, keeps its heap capacity across
//! [`clear`](SmallMap::clear), and iterates in deterministic key order.

/// A map backed by a key-sorted vector; insertion is `O(n)`, lookup is
/// `O(log n)`, and `clear` keeps the allocated capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmallMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V: Copy> SmallMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        SmallMap {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value for the same key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// The value stored under `key`, if any.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries
            .binary_search_by_key(key, |&(k, _)| k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Removes all entries, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// The entry with the largest key `<= bound`, if any.
    #[must_use]
    pub fn range_max_le(&self, bound: K) -> Option<(K, V)> {
        let i = self.entries.partition_point(|&(k, _)| k <= bound);
        (i > 0).then(|| self.entries[i - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_replace() {
        let mut m = SmallMap::new();
        assert_eq!(m.insert(5u32, 50u64), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&3), Some(&30));
        assert_eq!(m.get(&5), Some(&50));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.insert(3, 33), Some(30));
        assert_eq!(m.get(&3), Some(&33));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m = SmallMap::new();
        for k in [9usize, 2, 7, 4] {
            m.insert(k, k * 10);
        }
        let keys: Vec<usize> = m.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![2, 4, 7, 9]);
        let vals: Vec<usize> = m.values().copied().collect();
        assert_eq!(vals, vec![20, 40, 70, 90]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = SmallMap::new();
        for k in 0..16u32 {
            m.insert(k, k);
        }
        let cap = m.entries.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&3), None);
        assert_eq!(m.entries.capacity(), cap);
        // Reusable after a clear.
        m.insert(7, 70);
        assert_eq!(m.get(&7), Some(&70));
    }

    #[test]
    fn range_max_le_finds_floor_entry() {
        let mut m = SmallMap::new();
        m.insert(2usize, 20usize);
        m.insert(8, 80);
        assert_eq!(m.range_max_le(1), None);
        assert_eq!(m.range_max_le(2), Some((2, 20)));
        assert_eq!(m.range_max_le(7), Some((2, 20)));
        assert_eq!(m.range_max_le(8), Some((8, 80)));
        assert_eq!(m.range_max_le(100), Some((8, 80)));
    }
}
