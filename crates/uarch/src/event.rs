//! Micro-architectural trace events.
//!
//! The event log is the simulator's observable counterpart of the paper's
//! attack-graph nodes: transient accesses, covert sends (cache fills during
//! speculation), squashes, and predictor (mis)behaviour all appear here, so
//! tests can assert *why* an attack succeeded or was blocked — not just that
//! a secret did or did not arrive.

use crate::result::Fault;
use std::fmt;

/// Which micro-architectural structure supplied transiently-forwarded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TransientSource {
    /// Main memory (Meltdown baseline).
    Memory,
    /// The L1 data cache (Foreshadow / L1TF, TAA).
    Cache,
    /// The line fill buffer (RIDL, ZombieLoad).
    LineFillBuffer,
    /// The store buffer (Fallout).
    StoreBuffer,
    /// A load port (RIDL).
    LoadPort,
    /// A privileged special register (Spectre v3a).
    SpecialRegister,
    /// Stale FPU state (Lazy FP).
    Fpu,
}

impl fmt::Display for TransientSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransientSource::Memory => "memory",
            TransientSource::Cache => "cache",
            TransientSource::LineFillBuffer => "line fill buffer",
            TransientSource::StoreBuffer => "store buffer",
            TransientSource::LoadPort => "load port",
            TransientSource::SpecialRegister => "special register",
            TransientSource::Fpu => "FPU",
        };
        f.write_str(s)
    }
}

/// Why a squash occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SquashCause {
    /// A conditional branch direction was mispredicted.
    BranchMispredict,
    /// An indirect branch target was mispredicted.
    TargetMispredict,
    /// A return address was mispredicted.
    ReturnMispredict,
    /// A load aliased with an older store it had bypassed (Spectre v4's
    /// authorization resolving negatively).
    DisambiguationMispredict,
    /// An architectural fault reached retirement.
    Fault,
    /// A transaction aborted.
    TxAbort,
}

impl fmt::Display for SquashCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SquashCause::BranchMispredict => "branch mispredict",
            SquashCause::TargetMispredict => "indirect target mispredict",
            SquashCause::ReturnMispredict => "return mispredict",
            SquashCause::DisambiguationMispredict => "memory disambiguation mispredict",
            SquashCause::Fault => "fault",
            SquashCause::TxAbort => "transaction abort",
        };
        f.write_str(s)
    }
}

/// One trace event with its cycle stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// An instruction executed while speculative (under an unresolved older
    /// authorization): pc of the instruction.
    SpeculativeExecute {
        /// Cycle of occurrence.
        cycle: u64,
        /// Instruction index.
        pc: usize,
    },
    /// Data was transiently forwarded from a faulting or stale source —
    /// the paper's *illegal access* completing before authorization.
    TransientForward {
        /// Cycle of occurrence.
        cycle: u64,
        /// Instruction index of the access.
        pc: usize,
        /// Where the data came from.
        source: TransientSource,
        /// The forwarded value.
        value: u64,
    },
    /// A cache line was filled during speculation (the covert *send*).
    SpeculativeFill {
        /// Cycle of occurrence.
        cycle: u64,
        /// Line base physical address.
        line: u64,
    },
    /// Entries were squashed.
    Squash {
        /// Cycle of occurrence.
        cycle: u64,
        /// Why.
        cause: SquashCause,
        /// How many ROB entries were discarded.
        discarded: usize,
    },
    /// A fault was raised architecturally at retirement.
    FaultRaised {
        /// Cycle of occurrence.
        cycle: u64,
        /// Instruction index.
        pc: usize,
        /// The fault.
        fault: Fault,
    },
    /// A speculative load was blocked/delayed by a defense.
    DefenseBlocked {
        /// Cycle of first blockage.
        cycle: u64,
        /// Instruction index.
        pc: usize,
        /// Which defense knob blocked it (static name).
        defense: &'static str,
    },
    /// A load bypassed an older store with an unresolved address
    /// (the Spectre v4 speculation).
    DisambiguationBypass {
        /// Cycle of occurrence.
        cycle: u64,
        /// Load instruction index.
        pc: usize,
    },
    /// Store-to-load forwarding served a load from the store buffer.
    StoreToLoadForward {
        /// Cycle of occurrence.
        cycle: u64,
        /// Load instruction index.
        pc: usize,
        /// Physical address.
        paddr: u64,
    },
    /// Predictor state was flushed on a context switch (strategy ④).
    PredictorsFlushed {
        /// Cycle of occurrence.
        cycle: u64,
    },
    /// A transaction aborted, suppressing `pending` faults.
    TxAborted {
        /// Cycle of occurrence.
        cycle: u64,
        /// Faults suppressed by the abort.
        suppressed: usize,
    },
}

impl TraceEvent {
    /// The cycle at which the event occurred.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::SpeculativeExecute { cycle, .. }
            | TraceEvent::TransientForward { cycle, .. }
            | TraceEvent::SpeculativeFill { cycle, .. }
            | TraceEvent::Squash { cycle, .. }
            | TraceEvent::FaultRaised { cycle, .. }
            | TraceEvent::DefenseBlocked { cycle, .. }
            | TraceEvent::DisambiguationBypass { cycle, .. }
            | TraceEvent::StoreToLoadForward { cycle, .. }
            | TraceEvent::PredictorsFlushed { cycle }
            | TraceEvent::TxAborted { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::SpeculativeExecute { cycle, pc } => {
                write!(f, "[{cycle}] speculative execute @{pc}")
            }
            TraceEvent::TransientForward {
                cycle,
                pc,
                source,
                value,
            } => write!(
                f,
                "[{cycle}] transient forward @{pc} from {source}: {value:#x}"
            ),
            TraceEvent::SpeculativeFill { cycle, line } => {
                write!(f, "[{cycle}] speculative cache fill line {line:#x}")
            }
            TraceEvent::Squash {
                cycle,
                cause,
                discarded,
            } => write!(f, "[{cycle}] squash ({cause}): {discarded} discarded"),
            TraceEvent::FaultRaised { cycle, pc, fault } => {
                write!(f, "[{cycle}] fault @{pc}: {fault}")
            }
            TraceEvent::DefenseBlocked { cycle, pc, defense } => {
                write!(f, "[{cycle}] defense '{defense}' blocked @{pc}")
            }
            TraceEvent::DisambiguationBypass { cycle, pc } => {
                write!(f, "[{cycle}] disambiguation bypass @{pc}")
            }
            TraceEvent::StoreToLoadForward { cycle, pc, paddr } => {
                write!(f, "[{cycle}] store-to-load forward @{pc} {paddr:#x}")
            }
            TraceEvent::PredictorsFlushed { cycle } => {
                write!(f, "[{cycle}] predictors flushed")
            }
            TraceEvent::TxAborted { cycle, suppressed } => {
                write!(f, "[{cycle}] tx aborted ({suppressed} faults suppressed)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_extraction_and_display() {
        let events = [
            TraceEvent::SpeculativeExecute { cycle: 1, pc: 2 },
            TraceEvent::TransientForward {
                cycle: 2,
                pc: 3,
                source: TransientSource::LineFillBuffer,
                value: 0xff,
            },
            TraceEvent::SpeculativeFill {
                cycle: 3,
                line: 0x40,
            },
            TraceEvent::Squash {
                cycle: 4,
                cause: SquashCause::BranchMispredict,
                discarded: 5,
            },
            TraceEvent::FaultRaised {
                cycle: 5,
                pc: 0,
                fault: Fault::FpUnavailable,
            },
            TraceEvent::DefenseBlocked {
                cycle: 6,
                pc: 1,
                defense: "nda",
            },
            TraceEvent::DisambiguationBypass { cycle: 7, pc: 2 },
            TraceEvent::StoreToLoadForward {
                cycle: 8,
                pc: 3,
                paddr: 0x100,
            },
            TraceEvent::PredictorsFlushed { cycle: 9 },
            TraceEvent::TxAborted {
                cycle: 10,
                suppressed: 1,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), (i + 1) as u64);
            assert!(e.to_string().starts_with(&format!("[{}]", i + 1)));
        }
    }

    #[test]
    fn source_display() {
        assert_eq!(TransientSource::StoreBuffer.to_string(), "store buffer");
        assert_eq!(SquashCause::TxAbort.to_string(), "transaction abort");
    }
}
