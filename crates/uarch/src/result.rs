//! Run results, faults and statistics.

use std::fmt;

/// An architectural fault detected by an authorization check.
///
/// Each variant corresponds to an authorization node in Table III of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Fault {
    /// No page-table entry at all for the address (hard fault; also what a
    /// user access to a KPTI-unmapped kernel page sees).
    PageNotMapped {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Present bit clear — terminal fault (Foreshadow).
    PageNotPresent {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Reserved PTE bits set — terminal fault (Foreshadow-NG).
    ReservedBitSet {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// User access to a supervisor page (Meltdown's privilege check).
    PrivilegeViolation {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Store to a read-only page (Spectre v1.2's check).
    WriteToReadOnly {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Unprivileged MSR read (Spectre v3a's check).
    MsrPrivilege {
        /// The MSR number.
        msr: u32,
    },
    /// FP instruction while the FPU still belongs to another context
    /// (Lazy FP's "FPU owner check").
    FpUnavailable,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PageNotMapped { vaddr } => write!(f, "page not mapped at {vaddr:#x}"),
            Fault::PageNotPresent { vaddr } => write!(f, "page not present at {vaddr:#x}"),
            Fault::ReservedBitSet { vaddr } => write!(f, "reserved PTE bits at {vaddr:#x}"),
            Fault::PrivilegeViolation { vaddr } => {
                write!(f, "privilege violation at {vaddr:#x}")
            }
            Fault::WriteToReadOnly { vaddr } => write!(f, "write to read-only {vaddr:#x}"),
            Fault::MsrPrivilege { msr } => write!(f, "unprivileged read of msr {msr:#x}"),
            Fault::FpUnavailable => f.write_str("FPU owned by another context"),
        }
    }
}

/// Statistics and outcome of one [`Machine::run`](crate::Machine::run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles consumed by this run.
    pub cycles: u64,
    /// Instructions retired (committed).
    pub retired: u64,
    /// Instructions squashed (transient).
    pub squashed: u64,
    /// Conditional/indirect/return mispredictions observed.
    pub mispredictions: u64,
    /// Architectural faults raised (at retirement; suppressed TSX faults are
    /// counted in `tx_aborts` instead).
    pub faults: Vec<Fault>,
    /// Transactions aborted.
    pub tx_aborts: u64,
    /// Whether the run ended by retiring a `Halt` (vs. hitting the cycle
    /// limit with `ExceptionBehavior::Halt` on a fault).
    pub halted: bool,
}

impl RunResult {
    /// Instructions per cycle (retired only).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} retired ({:.2} IPC), {} squashed, {} mispredicts, {} faults, {} tx aborts",
            self.cycles,
            self.retired,
            self.ipc(),
            self.squashed,
            self.mispredictions,
            self.faults.len(),
            self.tx_aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display() {
        assert!(Fault::PrivilegeViolation { vaddr: 0x2000 }
            .to_string()
            .contains("0x2000"));
        assert!(Fault::MsrPrivilege { msr: 0x10 }
            .to_string()
            .contains("0x10"));
        assert!(!Fault::FpUnavailable.to_string().is_empty());
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        let r = RunResult::default();
        assert_eq!(r.ipc(), 0.0);
        let r = RunResult {
            cycles: 10,
            retired: 5,
            ..RunResult::default()
        };
        assert!((r.ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn result_display_mentions_key_stats() {
        let r = RunResult {
            cycles: 100,
            retired: 50,
            squashed: 7,
            mispredictions: 2,
            faults: vec![Fault::FpUnavailable],
            tx_aborts: 1,
            halted: true,
        };
        let s = r.to_string();
        assert!(s.contains("100 cycles"));
        assert!(s.contains("7 squashed"));
        assert!(s.contains("1 faults"));
    }
}
