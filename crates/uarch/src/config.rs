//! Machine configuration: sizes, latencies, vulnerability and defense knobs.

/// Complete configuration of a [`Machine`](crate::Machine).
///
/// The defaults model a *vulnerable* baseline processor: speculative loads
/// execute before authorization resolves, faulting loads transiently forward
/// data, the cache is not rolled back on squash, and predictors are shared
/// across contexts. Each defense strategy of the paper's Figure 8 maps to a
/// knob here (see the builder methods).
///
/// Construct via [`UarchConfig::builder`] or use `Default`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UarchConfig {
    // ---- capacity ----
    /// Re-order buffer capacity in instructions.
    pub rob_capacity: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions that may begin execution per cycle.
    pub issue_width: usize,
    /// Cache: number of sets.
    pub cache_sets: usize,
    /// Cache: associativity.
    pub cache_ways: usize,
    /// Line fill buffer entries.
    pub lfb_entries: usize,
    /// Store buffer entries.
    pub store_buffer_entries: usize,
    /// Load port stale-data entries.
    pub load_port_entries: usize,
    /// Return stack buffer depth.
    pub rsb_depth: usize,
    /// Trace-event log capacity. The log is preallocated once per machine
    /// (and kept across [`Machine::reset`](crate::Machine::reset)); events
    /// beyond the capacity are counted as dropped, never recorded.
    pub max_events: usize,
    /// Safety limit: a run aborts after this many cycles.
    pub max_cycles: u64,

    // ---- latencies (cycles) ----
    /// Simple ALU operation latency.
    pub alu_latency: u64,
    /// Multiply latency.
    pub mul_latency: u64,
    /// Branch resolution latency once operands are ready.
    pub branch_latency: u64,
    /// Address translation latency.
    pub translation_latency: u64,
    /// Privilege/permission check latency — the *delayed authorization* of
    /// Meltdown-type attacks. Larger than the data-access path on the
    /// vulnerable baseline.
    pub permission_check_latency: u64,
    /// L1 hit latency.
    pub cache_hit_latency: u64,
    /// Miss-to-memory latency.
    pub cache_miss_latency: u64,
    /// MSR read data latency (Spectre v3a: shorter than its privilege check).
    pub msr_read_latency: u64,
    /// FP register move latency.
    pub fp_latency: u64,
    /// Store-to-load forwarding latency.
    pub stl_forward_latency: u64,

    // ---- vulnerability knobs (true = vulnerable baseline) ----
    /// Faulting loads transiently forward their data to dependents before
    /// the fault is architecturally raised (Meltdown).
    pub transient_forwarding: bool,
    /// Faulting loads may forward stale data from the line fill buffer,
    /// store buffer or load ports (MDS family: RIDL/ZombieLoad/Fallout/LVI).
    pub mds_forwarding: bool,
    /// Loads whose translation terminally faults (present bit clear /
    /// reserved bits set) still read the L1 using the stale PTE frame bits
    /// (Foreshadow / L1TF).
    pub l1tf_forwarding: bool,
    /// FPU state is switched lazily on context switch (Lazy FP).
    pub lazy_fpu: bool,

    // ---- defense knobs (false = vulnerable baseline) ----
    /// Strategy ① (inter-instruction): loads may not execute until they are
    /// non-speculative, i.e. all older control flow has resolved. Models
    /// ubiquitous LFENCE / context-sensitive fencing in hardware.
    pub no_speculative_loads: bool,
    /// Strategy ① (intra-instruction): the permission check completes
    /// before any data is forwarded — faulting accesses never forward data.
    pub eager_permission_check: bool,
    /// Strategy ②: speculative load results are not forwarded to dependent
    /// instructions until the load becomes non-speculative
    /// (NDA / SpecShield / SpectreGuard / ConTExT).
    pub nda: bool,
    /// Strategy ② (relaxed): speculative taint tracking — tainted values
    /// may feed arithmetic, but *transmitters* (memory ops and indirect
    /// jumps) with tainted operands wait until non-speculative (STT).
    pub stt: bool,
    /// Strategy ③: speculative loads that miss in the cache are delayed
    /// until non-speculative (Conditional Speculation / Efficient Invisible
    /// Speculative Execution — "delay on miss").
    pub delay_on_miss: bool,
    /// Strategy ③: speculative loads do not modify the cache; the fill is
    /// performed at retirement (InvisiSpec / SafeSpec shadow structures).
    pub invisible_spec: bool,
    /// Strategy ③: speculative cache modifications are undone on squash
    /// (CleanupSpec).
    pub cleanup_spec: bool,
    /// Strategy ④: predictor state (PHT/BTB/RSB/disambiguation) is flushed
    /// on every context switch (IBPB / predictor invalidation).
    pub flush_predictors_on_switch: bool,
    /// Kernel pages are unmapped while running user contexts (KAISER/KPTI):
    /// a user access to kernel memory has no translation at all, so there is
    /// no PTE and no transient data path.
    pub kpti: bool,
    /// Loads never bypass older stores with unresolved addresses
    /// (SSBS / "speculative store bypass disable"), defeating Spectre v4.
    pub ssb_disable: bool,
    /// Indirect jumps are never predicted from the BTB; fetch stalls until
    /// the target resolves (the hardware effect of retpolines).
    pub no_indirect_prediction: bool,
    /// The RSB is refilled on context switches so underfilled returns stall
    /// instead of predicting from stale entries (RSB stuffing).
    pub rsb_stuffing: bool,
    /// DAWG-style cache way partitioning between protection domains
    /// (contexts): cross-domain cache hits and evictions are impossible, so
    /// the cache covert channel is closed *across* domains (strategy ③ for
    /// cross-context attacks; same-domain attacks are unaffected).
    pub dawg: bool,
    /// The paper's §V-B *insufficient defense* example: strategy ① applied
    /// only to the **memory** datapath of privilege-faulting loads. The
    /// baseline Meltdown (secret in DRAM) is blocked, but an attacker who
    /// arranges an L1 hit for the secret still leaks — a "false sense of
    /// security" unless the authorization→read-from-cache dependency is
    /// added as well.
    pub meltdown_fix_memory_path_only: bool,
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig {
            rob_capacity: 64,
            fetch_width: 4,
            issue_width: 4,
            cache_sets: 64,
            cache_ways: 8,
            lfb_entries: 8,
            store_buffer_entries: 16,
            load_port_entries: 4,
            rsb_depth: 16,
            max_events: 1 << 16,
            max_cycles: 2_000_000,
            alu_latency: 1,
            mul_latency: 3,
            branch_latency: 1,
            translation_latency: 2,
            permission_check_latency: 30,
            cache_hit_latency: 4,
            cache_miss_latency: 80,
            msr_read_latency: 2,
            fp_latency: 2,
            stl_forward_latency: 2,
            transient_forwarding: true,
            mds_forwarding: true,
            l1tf_forwarding: true,
            lazy_fpu: true,
            no_speculative_loads: false,
            eager_permission_check: false,
            nda: false,
            stt: false,
            delay_on_miss: false,
            invisible_spec: false,
            cleanup_spec: false,
            flush_predictors_on_switch: false,
            kpti: false,
            ssb_disable: false,
            no_indirect_prediction: false,
            rsb_stuffing: false,
            dawg: false,
            meltdown_fix_memory_path_only: false,
        }
    }
}

impl UarchConfig {
    /// Starts building a configuration from the vulnerable baseline.
    #[must_use]
    pub fn builder() -> UarchConfigBuilder {
        UarchConfigBuilder::default()
    }

    /// A fully *hardened* configuration: every in-silicon fix applied
    /// (transient forwarding disabled, eager permission checks, predictor
    /// flushing, SSB disable, eager FPU, KPTI) **plus** STT-style taint
    /// tracking — because the silicon fixes alone famously do *not* stop
    /// Spectre v1-family attacks; a strategy-②/③ defense is required for
    /// those. Useful as the "no variant leaks" reference point.
    #[must_use]
    pub fn hardened() -> Self {
        UarchConfig {
            transient_forwarding: false,
            mds_forwarding: false,
            l1tf_forwarding: false,
            lazy_fpu: false,
            eager_permission_check: true,
            flush_predictors_on_switch: true,
            kpti: true,
            ssb_disable: true,
            rsb_stuffing: true,
            stt: true,
            ..UarchConfig::default()
        }
    }
}

/// Builder for [`UarchConfig`]; starts from the vulnerable default baseline.
///
/// ```
/// use uarch::UarchConfig;
/// let cfg = UarchConfig::builder().nda(true).cache_miss_latency(120).build();
/// assert!(cfg.nda);
/// assert_eq!(cfg.cache_miss_latency, 120);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UarchConfigBuilder {
    cfg: UarchConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(mut self, value: $ty) -> Self {
            self.cfg.$name = value;
            self
        }
    };
}

impl UarchConfigBuilder {
    setter!(
        /// Sets the ROB capacity.
        rob_capacity: usize
    );
    setter!(
        /// Sets the fetch width.
        fetch_width: usize
    );
    setter!(
        /// Sets the issue width.
        issue_width: usize
    );
    setter!(
        /// Sets the number of cache sets.
        cache_sets: usize
    );
    setter!(
        /// Sets the cache associativity.
        cache_ways: usize
    );
    setter!(
        /// Sets line fill buffer entries.
        lfb_entries: usize
    );
    setter!(
        /// Sets store buffer entries.
        store_buffer_entries: usize
    );
    setter!(
        /// Sets load port entries.
        load_port_entries: usize
    );
    setter!(
        /// Sets RSB depth.
        rsb_depth: usize
    );
    setter!(
        /// Sets the trace-event log capacity.
        max_events: usize
    );
    setter!(
        /// Sets the run cycle limit.
        max_cycles: u64
    );
    setter!(
        /// Sets ALU latency.
        alu_latency: u64
    );
    setter!(
        /// Sets multiplier latency.
        mul_latency: u64
    );
    setter!(
        /// Sets branch resolution latency.
        branch_latency: u64
    );
    setter!(
        /// Sets translation latency.
        translation_latency: u64
    );
    setter!(
        /// Sets permission check latency.
        permission_check_latency: u64
    );
    setter!(
        /// Sets L1 hit latency.
        cache_hit_latency: u64
    );
    setter!(
        /// Sets miss latency.
        cache_miss_latency: u64
    );
    setter!(
        /// Sets MSR read latency.
        msr_read_latency: u64
    );
    setter!(
        /// Sets FP latency.
        fp_latency: u64
    );
    setter!(
        /// Sets store-to-load forward latency.
        stl_forward_latency: u64
    );
    setter!(
        /// Enables/disables transient fault forwarding.
        transient_forwarding: bool
    );
    setter!(
        /// Enables/disables MDS buffer forwarding.
        mds_forwarding: bool
    );
    setter!(
        /// Enables/disables L1TF forwarding.
        l1tf_forwarding: bool
    );
    setter!(
        /// Enables/disables lazy FPU switching.
        lazy_fpu: bool
    );
    setter!(
        /// Strategy ①: forbid speculative loads.
        no_speculative_loads: bool
    );
    setter!(
        /// Strategy ①: eager permission checks.
        eager_permission_check: bool
    );
    setter!(
        /// Strategy ②: NDA-style forwarding block.
        nda: bool
    );
    setter!(
        /// Strategy ② relaxed: STT taint tracking.
        stt: bool
    );
    setter!(
        /// Strategy ③: delay speculative misses.
        delay_on_miss: bool
    );
    setter!(
        /// Strategy ③: invisible speculation.
        invisible_spec: bool
    );
    setter!(
        /// Strategy ③: cleanup on squash.
        cleanup_spec: bool
    );
    setter!(
        /// Strategy ④: flush predictors on switch.
        flush_predictors_on_switch: bool
    );
    setter!(
        /// Unmap kernel pages in user mode (KPTI).
        kpti: bool
    );
    setter!(
        /// Disable speculative store bypass.
        ssb_disable: bool
    );
    setter!(
        /// Disable indirect-branch prediction (retpoline effect).
        no_indirect_prediction: bool
    );
    setter!(
        /// Enable RSB stuffing.
        rsb_stuffing: bool
    );
    setter!(
        /// Enable DAWG cache partitioning.
        dawg: bool
    );
    setter!(
        /// §V-B insufficiency example: fix only the memory datapath.
        meltdown_fix_memory_path_only: bool
    );

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> UarchConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_vulnerable_baseline() {
        let c = UarchConfig::default();
        assert!(c.transient_forwarding);
        assert!(c.mds_forwarding);
        assert!(c.l1tf_forwarding);
        assert!(c.lazy_fpu);
        assert!(!c.nda);
        assert!(!c.stt);
        assert!(!c.kpti);
        // The Meltdown race: permission check slower than a cache hit.
        assert!(c.permission_check_latency > c.cache_hit_latency);
    }

    #[test]
    fn builder_sets_fields() {
        let c = UarchConfig::builder()
            .nda(true)
            .delay_on_miss(true)
            .cache_sets(32)
            .permission_check_latency(99)
            .build();
        assert!(c.nda);
        assert!(c.delay_on_miss);
        assert_eq!(c.cache_sets, 32);
        assert_eq!(c.permission_check_latency, 99);
    }

    #[test]
    fn hardened_closes_all_holes() {
        let c = UarchConfig::hardened();
        assert!(!c.transient_forwarding);
        assert!(!c.mds_forwarding);
        assert!(!c.l1tf_forwarding);
        assert!(!c.lazy_fpu);
        assert!(c.eager_permission_check);
        assert!(c.flush_predictors_on_switch);
        assert!(c.kpti);
        assert!(c.ssb_disable);
        assert!(c.rsb_stuffing);
        assert!(c.stt, "silicon fixes alone do not stop Spectre v1");
    }
}
