//! A set-associative, physically-indexed data cache with LRU replacement.
//!
//! The cache is the covert-channel medium of most speculative attacks: its
//! state is *not* rolled back on a squash (unless the CleanupSpec defense is
//! active), so a transiently-executed "Load R" leaves an observable hit.
//!
//! The cache stores presence and data per 64-byte line; data is kept so the
//! Foreshadow model can read stale secrets *from the L1* after a terminal
//! fault.

use std::collections::HashMap;

/// Cache line size in bytes.
pub const LINE_SIZE: u64 = 64;

/// Words (u64) per line.
pub const WORDS_PER_LINE: usize = (LINE_SIZE / 8) as usize;

/// One resident cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Line {
    /// Line-aligned physical base address.
    base: u64,
    /// Data words.
    data: [u64; WORDS_PER_LINE],
    /// LRU stamp; larger = more recently used.
    lru: u64,
    /// Protection domain that owns the line (DAWG way-partitioning).
    domain: u32,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of fills.
    pub fills: u64,
    /// Number of flushes that found the line resident.
    pub flushes: u64,
}

/// A set-associative L1 data cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    tick: u64,
    stats: CacheStats,
    /// DAWG-style partitioning: when enabled, hits require the accessing
    /// domain to own the line, so one domain can neither observe nor evict
    /// another domain's cache state through timing.
    partitioned: bool,
    /// The protection domain performing accesses (the current context).
    active_domain: u32,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` lines each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache dimensions must be non-zero");
        Cache {
            sets: vec![Vec::new(); sets],
            ways,
            tick: 0,
            stats: CacheStats::default(),
            partitioned: false,
            active_domain: 0,
        }
    }

    /// Enables/disables DAWG-style domain partitioning.
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// Restores the cache to its pristine post-[`new`](Cache::new) state for
    /// a possibly different geometry, reusing the per-set allocations where
    /// the set count allows.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn reset(&mut self, sets: usize, ways: usize) {
        assert!(sets > 0 && ways > 0, "cache dimensions must be non-zero");
        for set in &mut self.sets {
            set.clear();
        }
        self.sets.resize_with(sets, Vec::new);
        self.ways = ways;
        self.tick = 0;
        self.stats = CacheStats::default();
        self.partitioned = false;
        self.active_domain = 0;
    }

    /// Sets the protection domain performing subsequent accesses.
    pub fn set_active_domain(&mut self, domain: u32) {
        self.active_domain = domain;
    }

    fn visible(&self, line_domain: u32) -> bool {
        !self.partitioned || line_domain == self.active_domain
    }

    fn set_index(&self, paddr: u64) -> usize {
        ((paddr / LINE_SIZE) % self.sets.len() as u64) as usize
    }

    fn line_base(paddr: u64) -> u64 {
        paddr & !(LINE_SIZE - 1)
    }

    /// Whether the line containing `paddr` is resident *and visible to the
    /// active domain*. Does not update LRU or statistics (an *oracle* probe
    /// for tests and channel math).
    #[must_use]
    pub fn contains(&self, paddr: u64) -> bool {
        let base = Self::line_base(paddr);
        self.sets[self.set_index(paddr)]
            .iter()
            .any(|l| l.base == base && self.visible(l.domain))
    }

    /// Looks up the word at `paddr`. On a hit returns the data and updates
    /// LRU; on a miss returns `None`. Statistics are updated.
    pub fn lookup(&mut self, paddr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let base = Self::line_base(paddr);
        let set = self.set_index(paddr);
        let word = ((paddr - base) / 8) as usize;
        let (partitioned, dom) = (self.partitioned, self.active_domain);
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.base == base && (!partitioned || l.domain == dom))
        {
            line.lru = tick;
            self.stats.hits += 1;
            Some(line.data[word])
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts (fills) the line containing `paddr` with `data` words.
    /// Returns the base address and data of an evicted line, if any.
    pub fn fill(
        &mut self,
        paddr: u64,
        data: [u64; WORDS_PER_LINE],
    ) -> Option<(u64, [u64; WORDS_PER_LINE])> {
        self.tick += 1;
        let tick = self.tick;
        self.stats.fills += 1;
        let base = Self::line_base(paddr);
        let set = self.set_index(paddr);
        let (partitioned, dom) = (self.partitioned, self.active_domain);
        let lines = &mut self.sets[set];
        if let Some(line) = lines
            .iter_mut()
            .find(|l| l.base == base && (!partitioned || l.domain == dom))
        {
            line.data = data;
            line.lru = tick;
            return None;
        }
        let new_line = Line {
            base,
            data,
            lru: tick,
            domain: dom,
        };
        if lines.len() < self.ways {
            lines.push(new_line);
            None
        } else {
            // Under partitioning, the eviction victim is chosen within the
            // accessing domain's own ways where possible — the DAWG
            // property that one domain cannot evict another's lines.
            let victim_idx = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| !partitioned || l.domain == dom)
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .or_else(|| {
                    lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .map(|(i, _)| i)
                })
                .expect("non-empty set");
            let victim = std::mem::replace(&mut lines[victim_idx], new_line);
            Some((victim.base, victim.data))
        }
    }

    /// Writes the word at `paddr` through to the resident line (no
    /// allocation on write miss). Returns whether the line was resident.
    pub fn write_through(&mut self, paddr: u64, value: u64) -> bool {
        let base = Self::line_base(paddr);
        let set = self.set_index(paddr);
        let word = ((paddr - base) / 8) as usize;
        // Writes update the line regardless of domain (coherence), without
        // changing timing-observable ownership.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.base == base) {
            line.data[word] = value;
            true
        } else {
            false
        }
    }

    /// Flushes (evicts) the line containing `paddr` (clflush). Returns the
    /// evicted data if the line was resident.
    pub fn flush(&mut self, paddr: u64) -> Option<[u64; WORDS_PER_LINE]> {
        let base = Self::line_base(paddr);
        let set = self.set_index(paddr);
        let (partitioned, dom) = (self.partitioned, self.active_domain);
        let lines = &mut self.sets[set];
        // Under partitioning a domain may only flush its own lines.
        if let Some(i) = lines
            .iter()
            .position(|l| l.base == base && (!partitioned || l.domain == dom))
        {
            self.stats.flushes += 1;
            Some(lines.swap_remove(i).data)
        } else {
            None
        }
    }

    /// Removes every line (full cache flush).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// All resident line base addresses, sorted.
    #[must_use]
    pub fn resident_lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .sets
            .iter()
            .flat_map(|s| s.iter().map(|l| l.base))
            .collect();
        v.sort_unstable();
        v
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn way_count(&self) -> usize {
        self.ways
    }

    /// Occupancy per set index (for Prime+Probe style reasoning).
    #[must_use]
    pub fn set_occupancy(&self) -> HashMap<usize, usize> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (i, s.len()))
            .collect()
    }
}

/// Builds a line's worth of data from a word-reader callback.
pub fn line_data(base: u64, mut read: impl FnMut(u64) -> u64) -> [u64; WORDS_PER_LINE] {
    let mut data = [0u64; WORDS_PER_LINE];
    for (i, w) in data.iter_mut().enumerate() {
        *w = read(base + (i as u64) * 8);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.lookup(0x100), None);
        c.fill(0x100, [7; WORDS_PER_LINE]);
        assert_eq!(c.lookup(0x100), Some(7));
        assert_eq!(c.lookup(0x108), Some(7)); // same line, next word
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.fills, 1);
    }

    #[test]
    fn line_granularity() {
        let mut c = Cache::new(4, 2);
        c.fill(0x1000, [1; WORDS_PER_LINE]);
        assert!(c.contains(0x1000));
        assert!(c.contains(0x103f));
        assert!(!c.contains(0x1040)); // next line
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.fill(0x000, [1; WORDS_PER_LINE]);
        c.fill(0x040, [2; WORDS_PER_LINE]);
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.lookup(0x000), Some(1));
        let evicted = c.fill(0x080, [3; WORDS_PER_LINE]);
        assert_eq!(evicted.map(|(b, _)| b), Some(0x040));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
        assert!(c.contains(0x080));
    }

    #[test]
    fn flush_evicts_line() {
        let mut c = Cache::new(4, 2);
        c.fill(0x200, [9; WORDS_PER_LINE]);
        assert!(c.contains(0x200));
        assert_eq!(c.flush(0x210).map(|d| d[0]), Some(9)); // any addr in line
        assert!(!c.contains(0x200));
        assert_eq!(c.flush(0x200), None); // already gone
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn write_through_updates_resident_only() {
        let mut c = Cache::new(4, 2);
        assert!(!c.write_through(0x300, 5));
        c.fill(0x300, [0; WORDS_PER_LINE]);
        assert!(c.write_through(0x308, 5));
        assert_eq!(c.lookup(0x308), Some(5));
        assert_eq!(c.lookup(0x300), Some(0));
    }

    #[test]
    fn refill_updates_data_without_eviction() {
        let mut c = Cache::new(2, 2);
        c.fill(0x40, [1; WORDS_PER_LINE]);
        let e = c.fill(0x40, [2; WORDS_PER_LINE]);
        assert!(e.is_none());
        assert_eq!(c.lookup(0x40), Some(2));
    }

    #[test]
    fn resident_lines_and_occupancy() {
        let mut c = Cache::new(2, 2);
        c.fill(0x00, [0; WORDS_PER_LINE]);
        c.fill(0x40, [0; WORDS_PER_LINE]);
        assert_eq!(c.resident_lines(), vec![0x00, 0x40]);
        let occ = c.set_occupancy();
        assert_eq!(occ.get(&0), Some(&1));
        assert_eq!(occ.get(&1), Some(&1));
        c.flush_all();
        assert!(c.resident_lines().is_empty());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.fill(0x00, [0; WORDS_PER_LINE]); // set 0
        c.fill(0x40, [0; WORDS_PER_LINE]); // set 1
        assert!(c.contains(0x00));
        assert!(c.contains(0x40));
        // Same set as 0x00 with 1 way: evicts.
        c.fill(0x80, [0; WORDS_PER_LINE]);
        assert!(!c.contains(0x00));
        assert!(c.contains(0x80));
    }

    #[test]
    fn line_data_reader() {
        let d = line_data(0x40, |a| a);
        assert_eq!(d[0], 0x40);
        assert_eq!(d[7], 0x78);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Cache::new(0, 1);
    }
}
