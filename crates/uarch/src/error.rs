//! Error type for machine operations.

use std::error::Error;
use std::fmt;

/// Errors from [`Machine`](crate::Machine) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UarchError {
    /// The run exceeded the configured cycle limit.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A virtual address used by a host-level accessor is not mapped.
    Unmapped {
        /// The offending virtual address.
        vaddr: u64,
    },
    /// Referenced an unknown context.
    UnknownContext(u32),
}

impl UarchError {
    /// Whether this error is the cycle-budget watchdog firing
    /// ([`UarchError::CycleLimitExceeded`]). Campaign engines use this to
    /// degrade a runaway cell to a timed-out verdict instead of aborting.
    #[must_use]
    pub fn is_cycle_limit(&self) -> bool {
        matches!(self, UarchError::CycleLimitExceeded { .. })
    }
}

impl fmt::Display for UarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UarchError::CycleLimitExceeded { limit } => {
                write!(f, "run exceeded cycle limit of {limit}")
            }
            UarchError::Unmapped { vaddr } => write!(f, "virtual address {vaddr:#x} not mapped"),
            UarchError::UnknownContext(id) => write!(f, "unknown context {id}"),
        }
    }
}

impl Error for UarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(UarchError::CycleLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(UarchError::Unmapped { vaddr: 0x40 }
            .to_string()
            .contains("0x40"));
        assert!(UarchError::UnknownContext(3).to_string().contains('3'));
    }
}
