//! FPU state with lazy context switching (the Lazy FP attack surface).

use crate::machine::ContextId;

/// Number of FP registers (matches [`isa::FReg::COUNT`]).
pub const FP_REG_COUNT: usize = 8;

/// The physical FPU register file plus ownership tracking.
///
/// Under *lazy* switching the register file is **not** saved/restored on a
/// context switch; the `owner` field keeps pointing at the old context and
/// the first FP instruction of the new context faults ("FPU owner check" in
/// Table III). On the vulnerable baseline that faulting instruction
/// transiently reads the *previous* context's values — the Lazy FP leak.
#[derive(Debug, Clone)]
pub struct FpuState {
    /// The physical register values currently in the FPU.
    regs: [u64; FP_REG_COUNT],
    /// The context whose values are physically loaded.
    owner: ContextId,
    /// Saved register files per context (filled on eager switch / on demand).
    saved: std::collections::HashMap<ContextId, [u64; FP_REG_COUNT]>,
}

impl FpuState {
    /// Creates an FPU owned by `owner` with zeroed registers.
    #[must_use]
    pub fn new(owner: ContextId) -> Self {
        FpuState {
            regs: [0; FP_REG_COUNT],
            owner,
            saved: std::collections::HashMap::new(),
        }
    }

    /// The context whose values are physically resident.
    #[must_use]
    pub fn owner(&self) -> ContextId {
        self.owner
    }

    /// Restores the FPU to its pristine post-[`new`](FpuState::new) state:
    /// zeroed registers owned by `owner`, no saved register files.
    pub fn reset(&mut self, owner: ContextId) {
        self.regs = [0; FP_REG_COUNT];
        self.owner = owner;
        self.saved.clear();
    }

    /// Reads the *physical* register — regardless of owner. This is the
    /// transient datapath of Lazy FP.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= FP_REG_COUNT`.
    #[must_use]
    pub fn read_physical(&self, idx: usize) -> u64 {
        self.regs[idx]
    }

    /// Writes a register on behalf of `ctx`, switching ownership eagerly if
    /// needed (used by the test/setup API).
    pub fn write(&mut self, ctx: ContextId, idx: usize, value: u64) {
        self.switch_to(ctx);
        self.regs[idx] = value;
    }

    /// Whether an FP access by `ctx` is authorized without a switch.
    #[must_use]
    pub fn owned_by(&self, ctx: ContextId) -> bool {
        self.owner == ctx
    }

    /// Performs the (expensive) FPU switch to `ctx`: saves the current
    /// owner's registers and restores `ctx`'s.
    pub fn switch_to(&mut self, ctx: ContextId) {
        if self.owner == ctx {
            return;
        }
        self.saved.insert(self.owner, self.regs);
        self.regs = self.saved.get(&ctx).copied().unwrap_or([0; FP_REG_COUNT]);
        self.owner = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_leak_window() {
        let victim = ContextId(0);
        let attacker = ContextId(1);
        let mut fpu = FpuState::new(victim);
        fpu.write(victim, 0, 0x5ec2e7);
        assert!(fpu.owned_by(victim));
        // Lazy switch: attacker context starts running but FPU still holds
        // the victim's values.
        assert!(!fpu.owned_by(attacker));
        assert_eq!(fpu.read_physical(0), 0x5ec2e7); // the transient read
                                                    // Eager switch clears the window.
        fpu.switch_to(attacker);
        assert_eq!(fpu.read_physical(0), 0);
        assert!(fpu.owned_by(attacker));
    }

    #[test]
    fn switch_roundtrip_preserves_values() {
        let a = ContextId(0);
        let b = ContextId(1);
        let mut fpu = FpuState::new(a);
        fpu.write(a, 1, 111);
        fpu.switch_to(b);
        fpu.write(b, 1, 222);
        fpu.switch_to(a);
        assert_eq!(fpu.read_physical(1), 111);
        fpu.switch_to(b);
        assert_eq!(fpu.read_physical(1), 222);
    }

    #[test]
    fn switch_to_self_is_noop() {
        let a = ContextId(0);
        let mut fpu = FpuState::new(a);
        fpu.write(a, 2, 9);
        fpu.switch_to(a);
        assert_eq!(fpu.read_physical(2), 9);
        assert_eq!(fpu.owner(), a);
    }
}
