//! Hardware predictors — the mis-trainable state that opens Spectre-type
//! speculation windows.
//!
//! * [`PatternHistoryTable`] — 2-bit-counter conditional branch predictor
//!   (Spectre v1/v1.1/v1.2 mis-train "not taken" or "taken").
//! * [`BranchTargetBuffer`] — indirect-branch target predictor, indexed by
//!   pc with no context tag (the sharing that Spectre v2 exploits and that
//!   IBPB-style flushing removes).
//! * [`ReturnStackBuffer`] — return-address predictor (Spectre-RSB).
//! * [`DisambiguationPredictor`] — store-load alias predictor; the
//!   optimistic "no alias" default is the Spectre v4 authorization bypass.

use std::collections::HashMap;

/// Saturating 2-bit counter states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(clippy::enum_variant_names)] // the textbook state names end in Taken
enum Counter2 {
    StrongNotTaken = 0,
    WeakNotTaken = 1,
    WeakTaken = 2,
    StrongTaken = 3,
}

impl Counter2 {
    fn predict_taken(self) -> bool {
        self >= Counter2::WeakTaken
    }

    fn update(self, taken: bool) -> Self {
        use Counter2::{StrongNotTaken, StrongTaken, WeakNotTaken, WeakTaken};
        match (self, taken) {
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, true) | (StrongTaken, true) => StrongTaken,
            (StrongTaken, false) => WeakTaken,
            (WeakTaken, false) => WeakNotTaken,
            (WeakNotTaken, false) | (StrongNotTaken, false) => StrongNotTaken,
        }
    }
}

/// Per-pc 2-bit-counter conditional branch direction predictor.
#[derive(Debug, Clone, Default)]
pub struct PatternHistoryTable {
    counters: HashMap<usize, Counter2>,
}

impl PatternHistoryTable {
    /// Creates an empty (weakly-not-taken) table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicts whether the branch at `pc` is taken.
    #[must_use]
    pub fn predict(&self, pc: usize) -> bool {
        self.counters
            .get(&pc)
            .copied()
            .unwrap_or(Counter2::WeakNotTaken)
            .predict_taken()
    }

    /// Trains the predictor with the actual outcome.
    pub fn update(&mut self, pc: usize, taken: bool) {
        let c = self.counters.entry(pc).or_insert(Counter2::WeakNotTaken);
        *c = c.update(taken);
    }

    /// Clears all state (predictor flush, defense strategy ④).
    pub fn clear(&mut self) {
        self.counters.clear();
    }

    /// Number of tracked branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// Indirect-branch target predictor shared across contexts (no ASID tag).
#[derive(Debug, Clone, Default)]
pub struct BranchTargetBuffer {
    targets: HashMap<usize, usize>,
}

impl BranchTargetBuffer {
    /// Creates an empty BTB.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted target for the indirect branch at `pc`, if trained.
    #[must_use]
    pub fn predict(&self, pc: usize) -> Option<usize> {
        self.targets.get(&pc).copied()
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: usize, target: usize) {
        self.targets.insert(pc, target);
    }

    /// Clears all state (IBPB / predictor invalidation on context switch).
    pub fn clear(&mut self) {
        self.targets.clear();
    }

    /// Number of trained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the BTB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Return stack buffer of bounded depth.
///
/// Pushes beyond capacity discard the *oldest* entry; pops from an empty RSB
/// return `None` (underfill — the Spectre-RSB trigger).
#[derive(Debug, Clone)]
pub struct ReturnStackBuffer {
    stack: Vec<usize>,
    depth: usize,
}

impl ReturnStackBuffer {
    /// Creates an RSB with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RSB depth must be non-zero");
        ReturnStackBuffer {
            stack: Vec::new(),
            depth,
        }
    }

    /// Pushes a return address (on `call`).
    pub fn push(&mut self, addr: usize) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (on `ret`).
    pub fn pop(&mut self) -> Option<usize> {
        self.stack.pop()
    }

    /// Current fill level.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the RSB has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.stack.clear();
    }

    /// Refills the RSB with `depth` copies of a benign address
    /// (RSB *stuffing*, the Spectre-RSB industry defense).
    pub fn stuff(&mut self, benign: usize) {
        self.stack.clear();
        self.stack.resize(self.depth, benign);
    }

    /// Empties the RSB and adopts a (possibly different) depth, keeping the
    /// heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn reset(&mut self, depth: usize) {
        assert!(depth > 0, "RSB depth must be non-zero");
        self.stack.clear();
        self.depth = depth;
    }
}

/// Store-load memory disambiguation predictor.
///
/// Predicts, per load pc, whether the load may *bypass* older stores with
/// unresolved addresses. The optimistic default (bypass) is the performance
/// feature Spectre v4 abuses; after an observed alias misprediction the
/// entry flips to conservative.
#[derive(Debug, Clone, Default)]
pub struct DisambiguationPredictor {
    /// pcs that have mispredicted and must not bypass.
    conservative: HashMap<usize, bool>,
}

impl DisambiguationPredictor {
    /// Creates an optimistic predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the load at `pc` may bypass unresolved older stores.
    #[must_use]
    pub fn may_bypass(&self, pc: usize) -> bool {
        !self.conservative.get(&pc).copied().unwrap_or(false)
    }

    /// Records an alias misprediction at `pc` (flips to conservative).
    pub fn record_alias(&mut self, pc: usize) {
        self.conservative.insert(pc, true);
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.conservative.clear();
    }
}

/// All predictor state of the machine.
#[derive(Debug, Clone)]
pub struct Predictors {
    /// Conditional direction predictor.
    pub pht: PatternHistoryTable,
    /// Indirect target predictor.
    pub btb: BranchTargetBuffer,
    /// Return address predictor.
    pub rsb: ReturnStackBuffer,
    /// Store-load alias predictor.
    pub disambiguation: DisambiguationPredictor,
}

impl Predictors {
    /// Creates fresh predictors with the given RSB depth.
    #[must_use]
    pub fn new(rsb_depth: usize) -> Self {
        Predictors {
            pht: PatternHistoryTable::new(),
            btb: BranchTargetBuffer::new(),
            rsb: ReturnStackBuffer::new(rsb_depth),
            disambiguation: DisambiguationPredictor::new(),
        }
    }

    /// Flushes everything (defense strategy ④).
    pub fn flush(&mut self) {
        self.pht.clear();
        self.btb.clear();
        self.rsb.clear();
        self.disambiguation.clear();
    }

    /// Restores all predictors to their pristine post-[`new`](Predictors::new)
    /// state for a (possibly different) RSB depth, keeping heap capacity.
    pub fn reset(&mut self, rsb_depth: usize) {
        self.pht.clear();
        self.btb.clear();
        self.rsb.reset(rsb_depth);
        self.disambiguation.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pht_default_not_taken_and_trains() {
        let mut p = PatternHistoryTable::new();
        assert!(!p.predict(5));
        p.update(5, true);
        assert!(p.predict(5)); // weak-nt -> weak-taken
        p.update(5, true);
        p.update(5, false);
        assert!(p.predict(5)); // strong-taken -> weak-taken
        p.update(5, false);
        assert!(!p.predict(5));
        assert_eq!(p.len(), 1);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn pht_saturates() {
        let mut p = PatternHistoryTable::new();
        for _ in 0..10 {
            p.update(1, false);
        }
        // One taken observation cannot flip a strongly-not-taken branch.
        p.update(1, true);
        assert!(!p.predict(1));
    }

    #[test]
    fn btb_trains_and_flushes() {
        let mut b = BranchTargetBuffer::new();
        assert_eq!(b.predict(3), None);
        b.update(3, 42);
        assert_eq!(b.predict(3), Some(42));
        b.update(3, 7);
        assert_eq!(b.predict(3), Some(7));
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn rsb_lifo_and_underfill() {
        let mut r = ReturnStackBuffer::new(2);
        assert_eq!(r.pop(), None); // underfill
        r.push(10);
        r.push(20);
        r.push(30); // evicts oldest (10)
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(30));
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn rsb_stuffing_fills_with_benign() {
        let mut r = ReturnStackBuffer::new(4);
        r.push(99);
        r.stuff(0);
        assert_eq!(r.len(), 4);
        assert_eq!(r.pop(), Some(0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rsb_zero_depth_panics() {
        let _ = ReturnStackBuffer::new(0);
    }

    #[test]
    fn disambiguation_optimistic_until_alias() {
        let mut d = DisambiguationPredictor::new();
        assert!(d.may_bypass(7));
        d.record_alias(7);
        assert!(!d.may_bypass(7));
        assert!(d.may_bypass(8));
        d.clear();
        assert!(d.may_bypass(7));
    }

    #[test]
    fn predictors_flush_clears_all() {
        let mut p = Predictors::new(8);
        p.pht.update(1, true);
        p.btb.update(1, 2);
        p.rsb.push(3);
        p.disambiguation.record_alias(4);
        p.flush();
        assert!(p.pht.is_empty());
        assert!(p.btb.is_empty());
        assert!(p.rsb.is_empty());
        assert!(p.disambiguation.may_bypass(4));
    }
}
