//! The speculative out-of-order machine.
//!
//! One [`Machine`] holds persistent micro-architectural state (cache,
//! predictors, leaky buffers, FPU, MSRs, memory, page table) and executes
//! [`isa::Program`]s on it with an in-order-retire / out-of-order-execute
//! pipeline. Micro-architectural state deliberately survives across runs and
//! across squashes — that persistence *is* the covert channel the paper
//! models.

use crate::buffers::{LineFillBuffer, LoadPorts, StoreBuffer};
use crate::cache::{line_data, Cache, LINE_SIZE, WORDS_PER_LINE};
use crate::config::UarchConfig;
use crate::error::UarchError;
use crate::event::{SquashCause, TraceEvent, TransientSource};
use crate::fpu::FpuState;
use crate::mem::Memory;
use crate::mmu::{PageEntry, PageTable, PrivilegeLevel, PAGE_SIZE};
use crate::predictor::Predictors;
use crate::result::{Fault, RunResult};
use crate::smallmap::SmallMap;
use isa::{Cond, FenceKind, Instruction, Operand, Program, Reg};
use std::collections::VecDeque;

/// Privilege level of a context (re-exported from the MMU).
pub type Privilege = PrivilegeLevel;

/// Identifier of an execution context (process/thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId(pub u32);

/// What happens when a fault reaches retirement outside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionBehavior {
    /// Stop the run (the default; `RunResult::halted` will be `false`).
    Halt,
    /// Squash and continue fetching at a handler pc — how attack programs
    /// survive the Meltdown fault and proceed to the reload phase.
    Handler(usize),
}

#[derive(Debug, Clone)]
struct Context {
    privilege: Privilege,
    exception: ExceptionBehavior,
    regs: [u64; Reg::COUNT],
}

/// Maximum number of source registers any instruction reads
/// (see [`Instruction::sources_fixed`]).
const MAX_SRCS: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Ready { value: u64, tainted: bool },
    Pending { producer: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Executing { done_at: u64 },
    Done,
}

/// A victim line displaced by a speculative fill: its base address and
/// data, or `None` when the fill landed in an empty way.
type EvictedLine = Option<(u64, [u64; WORDS_PER_LINE])>;

#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    pc: usize,
    inst: Instruction,
    /// Source operands, inline (no instruction reads more than
    /// [`MAX_SRCS`] registers). Unused slots hold a benign `Ready` value so
    /// whole-array scans are safe.
    srcs: [Src; MAX_SRCS],
    /// Number of valid leading slots in `srcs`.
    nsrcs: u8,
    state: EntryState,
    /// Result value (for register-writing instructions).
    result: u64,
    /// STT taint: result derives from a speculatively-loaded value.
    tainted: bool,
    /// The entry is a load that executed while speculative (NDA gate).
    spec_load: bool,
    /// Result has been broadcast to consumers.
    broadcast: bool,
    fault: Option<Fault>,
    /// For control flow: predicted next pc recorded at fetch (None = fetch
    /// stalled waiting for this instruction).
    predicted_next: Option<usize>,
    /// For conditional branches: predicted direction.
    predicted_taken: bool,
    /// Loads/stores: resolved physical address of the access.
    paddr: Option<u64>,
    /// Stores: value to write.
    store_value: u64,
    /// Loads: bypassed at least one older unresolved store (Spectre v4).
    bypassed: bool,
    /// CleanupSpec undo record: (filled line base, evicted victim).
    filled_line: Option<(u64, EvictedLine)>,
    /// InvisiSpec: fill deferred to retirement for this paddr.
    deferred_fill: Option<u64>,
    /// Fetched inside a transactional region.
    in_tx: bool,
    /// A defense-blocked event was already recorded for this entry.
    blocked_reported: bool,
    /// Earliest cycle at which this entry may retire. Faulting instructions
    /// set this to the completion time of their *authorization check*
    /// (permission/privilege/owner check): the data may arrive earlier and
    /// feed dependents — that gap is the paper's transient window.
    retire_not_before: u64,
}

impl Entry {
    fn is_store(&self) -> bool {
        matches!(self.inst, Instruction::Store { .. })
    }

    fn is_control(&self) -> bool {
        self.inst.is_control_flow()
    }

    fn done(&self) -> bool {
        self.state == EntryState::Done
    }
}

/// The speculative out-of-order CPU.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct Machine {
    cfg: UarchConfig,
    memory: Memory,
    page_table: PageTable,
    /// Kernel-visible mappings. Under KPTI, kernel pages live *only* here:
    /// the user-visible `page_table` has no PTE for them (no transient data
    /// path), while kernel-privilege execution and host-level setup still
    /// reach them — the split KAISER/KPTI actually implements.
    kernel_table: PageTable,
    cache: Cache,
    lfb: LineFillBuffer,
    store_buffer: StoreBuffer,
    load_ports: LoadPorts,
    predictors: Predictors,
    fpu: FpuState,
    msrs: SmallMap<u32, u64>,
    contexts: Vec<Context>,
    current: ContextId,
    cycle: u64,
    events: Vec<TraceEvent>,
    events_dropped: u64,
    // ---- per-run pipeline state ----
    rob: VecDeque<Entry>,
    next_seq: u64,
    rename: [Option<u64>; Reg::COUNT],
    fetch_pc: Option<usize>,
    /// Fetch is stalled waiting for this control instruction to resolve.
    stalled_on: Option<u64>,
    /// Fetch-time transaction nesting depth.
    tx_depth: usize,
    /// Architectural (in-order) call stack; updated at retirement.
    arch_stack: Vec<usize>,
    /// Per-TxBegin pc: the pc to resume at on abort.
    tx_fallback: SmallMap<usize, usize>,
    /// Reused scratch for [`Machine::complete`] (kept to avoid a per-cycle
    /// allocation).
    scratch_completing: Vec<usize>,
    /// Reused scratch for the tx-fallback scan at the start of each run.
    scratch_tx_stack: Vec<usize>,
}

impl Machine {
    /// Creates a machine with one kernel-privileged context (`ContextId(0)`),
    /// which is also the current context.
    #[must_use]
    pub fn new(cfg: UarchConfig) -> Self {
        let ctx0 = Context {
            privilege: Privilege::Kernel,
            exception: ExceptionBehavior::Halt,
            regs: [0; Reg::COUNT],
        };
        let mut cache = Cache::new(cfg.cache_sets, cfg.cache_ways);
        cache.set_partitioned(cfg.dawg);
        Machine {
            cache,
            lfb: LineFillBuffer::new(cfg.lfb_entries),
            store_buffer: StoreBuffer::new(cfg.store_buffer_entries),
            load_ports: LoadPorts::new(cfg.load_port_entries),
            predictors: Predictors::new(cfg.rsb_depth),
            fpu: FpuState::new(ContextId(0)),
            msrs: SmallMap::new(),
            contexts: vec![ctx0],
            current: ContextId(0),
            cycle: 0,
            events: Vec::with_capacity(cfg.max_events),
            events_dropped: 0,
            rob: VecDeque::new(),
            next_seq: 0,
            rename: [None; Reg::COUNT],
            fetch_pc: None,
            stalled_on: None,
            tx_depth: 0,
            arch_stack: Vec::new(),
            tx_fallback: SmallMap::new(),
            scratch_completing: Vec::new(),
            scratch_tx_stack: Vec::new(),
            memory: Memory::new(),
            page_table: PageTable::new(),
            kernel_table: PageTable::new(),
            cfg,
        }
    }

    /// Restores the machine to its pristine post-[`new`](Machine::new) state
    /// for `cfg` — observationally identical to `Machine::new(cfg.clone())`
    /// (same events, cycles, faults and leak verdicts for any subsequent
    /// program) — but *without* releasing heap allocations: cache sets,
    /// event log, ROB, leaky buffers, predictor tables, page tables and
    /// memory all keep their capacity. This is the warm-machine fast path
    /// for batched campaigns, where rebuilding per cell dominates setup.
    pub fn reset(&mut self, cfg: &UarchConfig) {
        self.cfg.clone_from(cfg);
        self.memory.clear();
        self.page_table.clear();
        self.kernel_table.clear();
        self.cache.reset(cfg.cache_sets, cfg.cache_ways);
        self.cache.set_partitioned(cfg.dawg);
        self.lfb.reset(cfg.lfb_entries);
        self.store_buffer.reset(cfg.store_buffer_entries);
        self.load_ports.reset(cfg.load_port_entries);
        self.predictors.reset(cfg.rsb_depth);
        self.fpu.reset(ContextId(0));
        self.msrs.clear();
        self.contexts.truncate(1);
        self.contexts[0] = Context {
            privilege: Privilege::Kernel,
            exception: ExceptionBehavior::Halt,
            regs: [0; Reg::COUNT],
        };
        self.current = ContextId(0);
        self.cycle = 0;
        self.events.clear();
        if self.events.capacity() < cfg.max_events {
            self.events.reserve(cfg.max_events);
        }
        self.events_dropped = 0;
        self.rob.clear();
        self.next_seq = 0;
        self.rename = [None; Reg::COUNT];
        self.fetch_pc = None;
        self.stalled_on = None;
        self.tx_depth = 0;
        self.arch_stack.clear();
        self.tx_fallback.clear();
    }

    // ------------------------------------------------------------------
    // Host-level setup and inspection API
    // ------------------------------------------------------------------

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// The global cycle counter (monotonic across runs).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Adds a context; returns its id.
    pub fn add_context(&mut self, privilege: Privilege, exception: ExceptionBehavior) -> ContextId {
        let id = ContextId(self.contexts.len() as u32);
        self.contexts.push(Context {
            privilege,
            exception,
            regs: [0; Reg::COUNT],
        });
        id
    }

    /// Switches to another context — the boundary at which strategy-④
    /// defenses (predictor flushing, RSB stuffing, eager FPU switch) act.
    ///
    /// # Errors
    ///
    /// [`UarchError::UnknownContext`] for an id not created by
    /// [`Machine::add_context`].
    pub fn switch_context(&mut self, id: ContextId) -> Result<(), UarchError> {
        if id.0 as usize >= self.contexts.len() {
            return Err(UarchError::UnknownContext(id.0));
        }
        self.current = id;
        self.cache.set_active_domain(id.0);
        if self.cfg.flush_predictors_on_switch {
            self.predictors.flush();
            self.record(TraceEvent::PredictorsFlushed { cycle: self.cycle });
        }
        if self.cfg.rsb_stuffing {
            self.predictors.rsb.stuff(0);
        }
        if !self.cfg.lazy_fpu {
            self.fpu.switch_to(id);
        }
        Ok(())
    }

    /// The current context id.
    #[must_use]
    pub fn current_context(&self) -> ContextId {
        self.current
    }

    /// Sets the exception behavior of the current context.
    pub fn set_exception_behavior(&mut self, behavior: ExceptionBehavior) {
        self.contexts[self.current.0 as usize].exception = behavior;
    }

    /// Sets the privilege of the current context.
    pub fn set_privilege(&mut self, privilege: Privilege) {
        self.contexts[self.current.0 as usize].privilege = privilege;
    }

    /// The privilege of the current context.
    #[must_use]
    pub fn privilege(&self) -> Privilege {
        self.contexts[self.current.0 as usize].privilege
    }

    /// Reads a committed register of the current context.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.contexts[self.current.0 as usize].regs[r.index()]
        }
    }

    /// Writes a committed register of the current context.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.contexts[self.current.0 as usize].regs[r.index()] = value;
        }
    }

    /// Maps a page-table entry for the page containing `vaddr` (1:1
    /// frame = vpn) with full user permissions.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn map_user_page(&mut self, vaddr: u64) -> Result<(), UarchError> {
        let vpn = vaddr / PAGE_SIZE;
        self.page_table.map(vpn, PageEntry::user_rw(vpn));
        Ok(())
    }

    /// Maps the page containing `vaddr` as kernel-only (1:1).
    ///
    /// Under KPTI ([`UarchConfig::kpti`]) the page is *not inserted* into
    /// the user-visible table at all — user accesses see a hard
    /// [`Fault::PageNotMapped`] with no transient data path.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn map_kernel_page(&mut self, vaddr: u64) -> Result<(), UarchError> {
        let vpn = vaddr / PAGE_SIZE;
        self.kernel_table.map(vpn, PageEntry::kernel_rw(vpn));
        if self.cfg.kpti {
            // KPTI: no PTE in the user-visible table at all.
            self.page_table.unmap(vpn);
        } else {
            self.page_table.map(vpn, PageEntry::kernel_rw(vpn));
        }
        Ok(())
    }

    /// Translation as seen by the pipeline: the user-visible table first;
    /// kernel-privilege execution falls back to the kernel-only mappings
    /// (the KPTI split).
    fn translate(&self, vaddr: u64, write: bool, priv_level: Privilege) -> crate::mmu::Translation {
        let tr = self.page_table.translate(vaddr, write, priv_level);
        if tr.paddr.is_none() && priv_level == Privilege::Kernel {
            return self.kernel_table.translate(vaddr, write, priv_level);
        }
        tr
    }

    /// Maps an arbitrary entry for the page containing `vaddr`.
    pub fn map_page(&mut self, vaddr: u64, entry: PageEntry) {
        self.page_table.map(vaddr / PAGE_SIZE, entry);
    }

    /// Direct physical-memory write keyed by virtual address (host/setup
    /// path: ignores permission faults, requires only that a PTE exists so
    /// the frame is known; identity-mapped pages therefore just work).
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn write_u64(&mut self, vaddr: u64, value: u64) -> Result<(), UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        self.memory.write_u64(paddr, value);
        self.cache.write_through(paddr, value);
        Ok(())
    }

    /// Direct physical-memory read keyed by virtual address (host path).
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn read_u64(&self, vaddr: u64) -> Result<u64, UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        Ok(self.memory.read_u64(paddr))
    }

    fn setup_paddr(&self, vaddr: u64) -> Result<u64, UarchError> {
        let tr = self.translate(vaddr, false, Privilege::Kernel);
        tr.paddr.ok_or(UarchError::Unmapped { vaddr })
    }

    /// Brings the line containing `vaddr` into the cache (host path; models
    /// the victim having touched the data — e.g. the Foreshadow requirement
    /// that the secret be resident in L1).
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn touch(&mut self, vaddr: u64) -> Result<(), UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        self.fill_line(paddr);
        Ok(())
    }

    /// Flushes the line containing `vaddr` from the cache (host-level
    /// clflush).
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn flush_line(&mut self, vaddr: u64) -> Result<(), UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        self.cache.flush(paddr);
        Ok(())
    }

    /// Whether the line containing `vaddr` is resident in the cache
    /// (an oracle probe: does not perturb cache state or statistics).
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn cache_contains(&self, vaddr: u64) -> Result<bool, UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        Ok(self.cache.contains(paddr))
    }

    /// Performs a *timed*, non-speculative, architectural read of `vaddr` —
    /// the covert-channel receiver primitive, equivalent to the
    /// `rdtsc; load; rdtsc` sequence of Flush+Reload receivers. Returns the
    /// measured latency in cycles. The access updates cache, LFB and load
    /// ports exactly as a committed load would.
    ///
    /// # Errors
    ///
    /// [`UarchError::Unmapped`] if no PTE exists for the page.
    pub fn timed_read(&mut self, vaddr: u64) -> Result<u64, UarchError> {
        let paddr = self.setup_paddr(vaddr)?;
        let latency = if self.cache.lookup(paddr).is_some() {
            self.cfg.cache_hit_latency
        } else {
            self.fill_line(paddr);
            self.cfg.cache_miss_latency
        };
        self.load_ports.record(self.memory.read_u64(paddr));
        self.cycle += latency;
        Ok(latency)
    }

    /// Reads an MSR (host path).
    #[must_use]
    pub fn msr(&self, msr: u32) -> u64 {
        self.msrs.get(&msr).copied().unwrap_or(0)
    }

    /// Writes an MSR (host path).
    pub fn set_msr(&mut self, msr: u32, value: u64) {
        self.msrs.insert(msr, value);
    }

    /// Writes an FP register on behalf of a context (eagerly switching the
    /// FPU to that context, as real FP computation would).
    pub fn set_fpu_reg(&mut self, ctx: ContextId, idx: usize, value: u64) {
        self.fpu.write(ctx, idx, value);
    }

    /// The FPU state (owner + physical values).
    #[must_use]
    pub fn fpu(&self) -> &FpuState {
        &self.fpu
    }

    /// The predictor state.
    #[must_use]
    pub fn predictors(&self) -> &Predictors {
        &self.predictors
    }

    /// Mutable predictor state (for targeted mis-training in tests).
    pub fn predictors_mut(&mut self) -> &mut Predictors {
        &mut self.predictors
    }

    /// The cache (read-only oracle access).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The line fill buffer (oracle access).
    #[must_use]
    pub fn lfb(&self) -> &LineFillBuffer {
        &self.lfb
    }

    /// The store buffer (oracle access).
    #[must_use]
    pub fn store_buffer(&self) -> &StoreBuffer {
        &self.store_buffer
    }

    /// Clears the leaky buffers (models VERW-style buffer overwriting).
    pub fn clear_leaky_buffers(&mut self) {
        self.lfb.clear();
        self.store_buffer.clear();
        self.load_ports.clear();
    }

    /// The recorded trace events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Clears the trace event log, keeping its preallocated capacity.
    pub fn clear_events(&mut self) {
        self.events.clear();
        self.events_dropped = 0;
    }

    /// Number of events discarded because the log was full
    /// (see [`UarchConfig::max_events`]).
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Debug snapshot of the in-flight pipeline state (entry per line).
    /// Intended for tests and debugging, not a stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_rob(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle={} fetch_pc={:?} stalled_on={:?} tx_depth={}",
            self.cycle, self.fetch_pc, self.stalled_on, self.tx_depth
        );
        for (i, e) in self.rob.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{i}] seq={} pc={} {:?} srcs={:?} fault={:?} {}",
                e.seq,
                e.pc,
                e.state,
                &e.srcs[..e.nsrcs as usize],
                e.fault,
                e.inst
            );
        }
        out
    }

    fn record(&mut self, e: TraceEvent) {
        if self.events.len() < self.cfg.max_events {
            self.events.push(e);
        } else {
            self.events_dropped += 1;
        }
    }

    fn fill_line(&mut self, paddr: u64) -> u64 {
        let base = paddr & !(LINE_SIZE - 1);
        let mem = &self.memory;
        let data = line_data(base, |a| mem.read_u64(a));
        self.lfb.record(base, data);
        self.cache.fill(base, data);
        base
    }

    // ------------------------------------------------------------------
    // The pipeline
    // ------------------------------------------------------------------

    /// Runs `program` from instruction 0 until a `Halt` retires, the program
    /// runs off its end, or a fault stops it (per the context's
    /// [`ExceptionBehavior`]).
    ///
    /// Micro-architectural state persists across calls; architectural
    /// registers are the current context's.
    ///
    /// # Errors
    ///
    /// [`UarchError::CycleLimitExceeded`] if the configured `max_cycles` is
    /// exhausted (e.g. a program that never halts).
    pub fn run(&mut self, program: &Program) -> Result<RunResult, UarchError> {
        self.rob.clear();
        self.rename = [None; Reg::COUNT];
        self.fetch_pc = Some(0);
        self.stalled_on = None;
        self.tx_depth = 0;
        self.arch_stack.clear();
        let mut stack = std::mem::take(&mut self.scratch_tx_stack);
        compute_tx_fallbacks_into(program, &mut self.tx_fallback, &mut stack);
        self.scratch_tx_stack = stack;

        let mut res = RunResult::default();
        let start_cycle = self.cycle;
        loop {
            if self.cycle - start_cycle >= self.cfg.max_cycles {
                return Err(UarchError::CycleLimitExceeded {
                    limit: self.cfg.max_cycles,
                });
            }
            self.cycle += 1;

            let stop = self.retire(&mut res);
            if stop {
                break;
            }
            self.complete(&mut res);
            self.broadcast_ready();
            self.issue(&mut res);
            self.fetch(program);

            if self.rob.is_empty() && self.fetch_pc.is_none() && self.stalled_on.is_none() {
                // Ran off the end of the program: treat as an implicit halt.
                res.halted = true;
                break;
            }
        }
        res.cycles = self.cycle - start_cycle;
        Ok(res)
    }

    /// Index of the ROB entry with the given sequence number. Sequence
    /// numbers are strictly increasing but *not* contiguous (squashes leave
    /// gaps), so this is a binary search, not an offset computation.
    fn entry_index(&self, seq: u64) -> Option<usize> {
        self.rob.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Whether the entry at ROB position `idx` is *speculative*: some older
    /// in-flight operation could still invalidate it — an unresolved
    /// control-flow instruction, a faulting older instruction, an older
    /// store with an unresolved address, or an enclosing transaction.
    fn is_speculative(&self, idx: usize) -> bool {
        // The oldest in-flight instruction always proceeds: everything
        // older has retired, so nothing can invalidate it except its own
        // fault/abort (handled at retirement). Without this, an in-
        // transaction load under a blocking defense would deadlock.
        if idx == 0 {
            return false;
        }
        if self.rob[idx].in_tx {
            return true;
        }
        self.rob.iter().take(idx).any(|e| {
            (e.is_control() && !e.done())
                || e.fault.is_some()
                || (e.is_store() && e.paddr.is_none())
        })
    }

    /// Whether any older entry is an un-completed LFENCE (blocks all) or the
    /// entry is a memory op behind an un-completed MFENCE / store behind
    /// SSBB handling is done in the load path.
    fn fence_blocked(&self, idx: usize) -> bool {
        let me_mem = self.rob[idx].inst.is_memory();
        self.rob.iter().take(idx).any(|e| match e.inst {
            Instruction::Fence(FenceKind::LFence) => !e.done(),
            Instruction::Fence(FenceKind::MFence) => me_mem && !e.done(),
            _ => false,
        })
    }

    /// Whether an un-retired SSBB exists older than `idx`.
    fn ssbb_pending(&self, idx: usize) -> bool {
        self.rob
            .iter()
            .take(idx)
            .any(|e| matches!(e.inst, Instruction::Fence(FenceKind::Ssbb)))
    }

    // ---------------- retire ----------------

    /// Retires completed instructions in order. Returns `true` when the run
    /// must stop.
    fn retire(&mut self, res: &mut RunResult) -> bool {
        for _ in 0..self.cfg.issue_width {
            let Some(head) = self.rob.front() else {
                return false;
            };
            if !head.done() || self.cycle < head.retire_not_before {
                return false;
            }
            let entry = self.rob.pop_front().expect("head exists");

            // Faults surface architecturally at retirement.
            if let Some(fault) = entry.fault {
                return self.raise_fault(&entry, fault, res);
            }

            match entry.inst {
                Instruction::Halt => {
                    // Discard wrong-path younger entries silently.
                    self.rob.clear();
                    self.fetch_pc = None;
                    self.stalled_on = None;
                    res.retired += 1;
                    res.halted = true;
                    return true;
                }
                Instruction::Store { .. } => {
                    let paddr = entry.paddr.expect("store completed");
                    self.memory.write_u64(paddr, entry.store_value);
                    self.cache.write_through(paddr, entry.store_value);
                    self.store_buffer.record(paddr, entry.store_value);
                }
                Instruction::Call { .. } => {
                    self.arch_stack.push(entry.pc + 1);
                }
                Instruction::Ret => {
                    // The architectural pop happened at resolution.
                }
                Instruction::Load { .. } => {
                    if let Some(paddr) = entry.deferred_fill {
                        // InvisiSpec: the fill becomes visible only now that
                        // the load is committed.
                        self.fill_line(paddr);
                    }
                }
                _ => {}
            }

            if let Some(dst) = entry.inst.destination() {
                if !dst.is_zero() {
                    self.contexts[self.current.0 as usize].regs[dst.index()] = entry.result;
                }
            }
            if let Some(dst) = entry.inst.destination() {
                if self.rename[dst.index()] == Some(entry.seq) {
                    self.rename[dst.index()] = None;
                }
            }
            res.retired += 1;
        }
        false
    }

    /// Handles a fault reaching retirement. Returns `true` if the run stops.
    fn raise_fault(&mut self, entry: &Entry, fault: Fault, res: &mut RunResult) -> bool {
        let discarded = self.rob.len();
        if entry.in_tx {
            // TSX: abort the transaction, suppress the exception, resume at
            // the fallback pc.
            let fallback = self
                .tx_fallback
                .values()
                .copied()
                .next()
                .unwrap_or(usize::MAX);
            let fallback = self.find_tx_fallback(entry.pc).unwrap_or(fallback);
            self.squash_all(SquashCause::TxAbort, res);
            self.record(TraceEvent::TxAborted {
                cycle: self.cycle,
                suppressed: 1,
            });
            res.tx_aborts += 1;
            self.tx_depth = 0;
            self.redirect_fetch(fallback);
            return false;
        }
        self.record(TraceEvent::FaultRaised {
            cycle: self.cycle,
            pc: entry.pc,
            fault,
        });
        self.squash_all(SquashCause::Fault, res);
        let _ = discarded;

        if fault == Fault::FpUnavailable {
            // The #NM handler switches the FPU eagerly and re-executes the
            // faulting instruction.
            self.fpu.switch_to(self.current);
            self.redirect_fetch(entry.pc);
            res.faults.push(fault);
            return false;
        }
        res.faults.push(fault);
        match self.contexts[self.current.0 as usize].exception {
            ExceptionBehavior::Handler(pc) => {
                self.redirect_fetch(pc);
                false
            }
            ExceptionBehavior::Halt => {
                self.fetch_pc = None;
                self.stalled_on = None;
                true
            }
        }
    }

    fn find_tx_fallback(&self, fault_pc: usize) -> Option<usize> {
        // The fallback of the innermost TxBegin whose region covers the
        // faulting pc. With the fetch-time flagging used here, the most
        // recent TxBegin at or before fault_pc is the right one.
        self.tx_fallback.range_max_le(fault_pc).map(|(_, fb)| fb)
    }

    fn redirect_fetch(&mut self, pc: usize) {
        self.fetch_pc = Some(pc);
        self.stalled_on = None;
    }

    fn squash_all(&mut self, cause: SquashCause, res: &mut RunResult) {
        let n = self.rob.len();
        for i in 0..n {
            let filled = self.rob[i].filled_line;
            self.undo_speculative_fill(filled);
        }
        self.rob.clear();
        res.squashed += n as u64;
        self.rename = [None; Reg::COUNT];
        self.record(TraceEvent::Squash {
            cycle: self.cycle,
            cause,
            discarded: n,
        });
        self.tx_depth = 0;
    }

    /// Squashes every entry *younger than* `seq` (exclusive).
    fn squash_after(&mut self, seq: u64, cause: SquashCause, res: &mut RunResult) {
        let keep = self
            .rob
            .iter()
            .position(|e| e.seq > seq)
            .unwrap_or(self.rob.len());
        let discarded = self.rob.len() - keep;
        for i in keep..self.rob.len() {
            let filled = self.rob[i].filled_line;
            self.undo_speculative_fill(filled);
        }
        self.rob.truncate(keep);
        res.squashed += discarded as u64;
        self.record(TraceEvent::Squash {
            cycle: self.cycle,
            cause,
            discarded,
        });
        self.rebuild_rename();
        // Restore fetch-time tx depth to the surviving prefix.
        self.tx_depth = self
            .rob
            .iter()
            .map(|e| match e.inst {
                Instruction::TxBegin => 1i64,
                Instruction::TxEnd => -1i64,
                _ => 0,
            })
            .sum::<i64>()
            .max(0) as usize;
    }

    fn undo_speculative_fill(&mut self, filled_line: Option<(u64, EvictedLine)>) {
        if !self.cfg.cleanup_spec {
            return;
        }
        if let Some((line, victim)) = filled_line {
            self.cache.flush(line);
            if let Some((vbase, vdata)) = victim {
                self.cache.fill(vbase, vdata);
            }
        }
    }

    fn rebuild_rename(&mut self) {
        let Machine { rob, rename, .. } = self;
        *rename = [None; Reg::COUNT];
        for e in rob.iter() {
            if let Some(d) = e.inst.destination() {
                if !d.is_zero() {
                    rename[d.index()] = Some(e.seq);
                }
            }
        }
        // Clear any fetch stall pointing at a squashed instruction.
        if let Some(s) = self.stalled_on {
            if self.entry_index(s).is_none() {
                self.stalled_on = None;
            }
        }
    }

    // ---------------- completion & resolution ----------------

    fn complete(&mut self, res: &mut RunResult) {
        let now = self.cycle;
        // Collect indices completing this cycle (oldest first) into reused
        // scratch storage — this runs every cycle and must not allocate.
        let mut completing = std::mem::take(&mut self.scratch_completing);
        completing.clear();
        completing.extend(
            self.rob
                .iter()
                .enumerate()
                .filter(
                    |(_, e)| matches!(e.state, EntryState::Executing { done_at } if done_at <= now),
                )
                .map(|(i, _)| i),
        );
        for idx in completing.drain(..) {
            // A squash triggered by an older completion may have removed
            // this entry; re-validate.
            if idx >= self.rob.len() {
                continue;
            }
            if !matches!(self.rob[idx].state, EntryState::Executing { done_at } if done_at <= now) {
                continue;
            }
            self.rob[idx].state = EntryState::Done;
            let inst = self.rob[idx].inst;
            match inst {
                Instruction::BranchIf { cond, target, .. } => {
                    self.resolve_branch(idx, cond, target, res);
                }
                Instruction::JumpIndirect { .. } => {
                    self.resolve_indirect(idx, res);
                }
                Instruction::Ret => {
                    self.resolve_ret(idx, res);
                }
                Instruction::Store { .. } => {
                    self.resolve_store(idx, res);
                }
                _ => {}
            }
        }
        self.scratch_completing = completing;
    }

    /// All source values of the entry at `idx`, or `None` while any source
    /// is still pending. Slots beyond the instruction's source count hold
    /// `(0, false)`.
    fn src_values(&self, idx: usize) -> Option<[(u64, bool); MAX_SRCS]> {
        let mut out = [(0u64, false); MAX_SRCS];
        for (slot, s) in out.iter_mut().zip(self.rob[idx].srcs.iter()) {
            match *s {
                Src::Ready { value, tainted } => *slot = (value, tainted),
                Src::Pending { .. } => return None,
            }
        }
        Some(out)
    }

    fn resolve_branch(&mut self, idx: usize, cond: Cond, target: usize, res: &mut RunResult) {
        let vals = self
            .src_values(idx)
            .expect("branch executed with ready sources");
        let taken = cond.eval(vals[0].0, vals[1].0);
        let e = &self.rob[idx];
        let pc = e.pc;
        let seq = e.seq;
        let predicted_taken = e.predicted_taken;
        self.predictors.pht.update(pc, taken);
        if taken != predicted_taken {
            res.mispredictions += 1;
            let actual_next = if taken { target } else { pc + 1 };
            self.squash_after(seq, SquashCause::BranchMispredict, res);
            self.redirect_fetch(actual_next);
        }
    }

    fn resolve_indirect(&mut self, idx: usize, res: &mut RunResult) {
        let vals = self
            .src_values(idx)
            .expect("jmpi executed with ready sources");
        let actual = vals[0].0 as usize;
        let e = &self.rob[idx];
        let pc = e.pc;
        let seq = e.seq;
        let predicted = e.predicted_next;
        self.predictors.btb.update(pc, actual);
        match predicted {
            Some(p) if p == actual => {}
            Some(_) => {
                res.mispredictions += 1;
                self.squash_after(seq, SquashCause::TargetMispredict, res);
                self.redirect_fetch(actual);
            }
            None => {
                // Fetch was stalled on this instruction: resume.
                if self.stalled_on == Some(seq) {
                    self.redirect_fetch(actual);
                }
            }
        }
    }

    fn resolve_ret(&mut self, idx: usize, res: &mut RunResult) {
        let e = &self.rob[idx];
        let seq = e.seq;
        let predicted = e.predicted_next;
        // Rets only begin execution at the head (see `issue`), so the
        // architectural stack is up to date here.
        let actual = self.arch_stack.pop();
        match (predicted, actual) {
            (Some(p), Some(a)) if p == a => {}
            (Some(_), Some(a)) => {
                res.mispredictions += 1;
                self.squash_after(seq, SquashCause::ReturnMispredict, res);
                self.redirect_fetch(a);
            }
            (Some(_), None) => {
                // Return with empty architectural stack: treat as program
                // end — squash younger and stop fetching.
                res.mispredictions += 1;
                self.squash_after(seq, SquashCause::ReturnMispredict, res);
                self.fetch_pc = None;
            }
            (None, Some(a)) => {
                if self.stalled_on == Some(seq) {
                    self.redirect_fetch(a);
                }
            }
            (None, None) => {
                self.fetch_pc = None;
                self.stalled_on = None;
            }
        }
    }

    /// When a store's address resolves, check for younger loads that
    /// bypassed it and alias — the Spectre v4 authorization resolving
    /// negatively.
    fn resolve_store(&mut self, idx: usize, res: &mut RunResult) {
        let store_paddr = match self.rob[idx].paddr {
            Some(p) => p & !7,
            None => return,
        };
        let store_seq = self.rob[idx].seq;
        let aliased: Option<(u64, usize)> = self
            .rob
            .iter()
            .skip(idx + 1)
            .find(|e| {
                e.bypassed
                    && matches!(e.inst, Instruction::Load { .. })
                    && e.paddr.map(|p| p & !7) == Some(store_paddr)
            })
            .map(|e| (e.seq, e.pc));
        if let Some((load_seq, load_pc)) = aliased {
            res.mispredictions += 1;
            self.predictors.disambiguation.record_alias(load_pc);
            // Squash the load and everything younger; refetch from the load.
            self.squash_after(load_seq - 1, SquashCause::DisambiguationMispredict, res);
            self.redirect_fetch(load_pc);
            let _ = store_seq;
        }
    }

    /// Broadcasts completed results to consumers, honoring the NDA gate.
    fn broadcast_ready(&mut self) {
        let n = self.rob.len();
        for i in 0..n {
            if !self.rob[i].done() || self.rob[i].broadcast {
                continue;
            }
            if self.rob[i].inst.destination().is_none() {
                self.rob[i].broadcast = true;
                continue;
            }
            // NDA (strategy ②): results of speculatively-executed loads are
            // withheld from consumers until the load is non-speculative.
            if self.cfg.nda
                && self.rob[i].spec_load
                && (self.rob[i].fault.is_some() || self.is_speculative(i))
            {
                if !self.rob[i].blocked_reported {
                    self.rob[i].blocked_reported = true;
                    let (cycle, pc) = (self.cycle, self.rob[i].pc);
                    self.record(TraceEvent::DefenseBlocked {
                        cycle,
                        pc,
                        defense: "nda",
                    });
                }
                continue;
            }
            let seq = self.rob[i].seq;
            let value = self.rob[i].result;
            let tainted = self.rob[i].tainted;
            for j in (i + 1)..n {
                for s in &mut self.rob[j].srcs {
                    if let Src::Pending { producer } = *s {
                        if producer == seq {
                            *s = Src::Ready { value, tainted };
                        }
                    }
                }
            }
            self.rob[i].broadcast = true;
        }
    }

    // ---------------- issue (begin execution) ----------------

    fn issue(&mut self, res: &mut RunResult) {
        let mut started = 0usize;
        let mut idx = 0usize;
        while idx < self.rob.len() && started < self.cfg.issue_width {
            if self.rob[idx].state != EntryState::Waiting {
                idx += 1;
                continue;
            }
            if self.fence_blocked(idx) {
                idx += 1;
                continue;
            }
            if self.try_start(idx, res) {
                started += 1;
            }
            idx += 1;
        }
    }

    /// Attempts to begin execution of the entry at `idx`. Returns whether it
    /// started.
    #[allow(clippy::too_many_lines)]
    fn try_start(&mut self, idx: usize, res: &mut RunResult) -> bool {
        let inst = self.rob[idx].inst;
        let Some(vals) = self.src_values(idx) else {
            return false;
        };
        let any_tainted = vals.iter().any(|&(_, t)| t);
        let now = self.cycle;

        // STT (strategy ②, relaxed): *transmitters* with tainted operands
        // wait until they are non-speculative. Arithmetic on tainted data is
        // allowed — that is STT's performance advantage over NDA.
        let is_transmitter = matches!(
            inst,
            Instruction::Load { .. } | Instruction::Store { .. } | Instruction::JumpIndirect { .. }
        );
        if self.cfg.stt && is_transmitter && any_tainted && self.is_speculative(idx) {
            self.report_blocked(idx, "stt");
            return false;
        }

        match inst {
            Instruction::Imm { value, .. } => {
                self.start(idx, self.cfg.alu_latency, value, false);
                true
            }
            Instruction::Alu { op, b, .. } => {
                let a = vals[0].0;
                let bv = match b {
                    Operand::Reg(_) => vals[1].0,
                    Operand::Imm(v) => v,
                };
                let lat = if op == isa::AluOp::Mul {
                    self.cfg.mul_latency
                } else {
                    self.cfg.alu_latency
                };
                self.start(idx, lat, op.apply(a, bv), any_tainted);
                true
            }
            Instruction::Nop | Instruction::TxBegin | Instruction::TxEnd => {
                self.start(idx, 1, 0, false);
                true
            }
            Instruction::Halt | Instruction::Jump { .. } | Instruction::Call { .. } => {
                self.start(idx, 1, 0, false);
                true
            }
            Instruction::Fence(kind) => {
                // LFENCE completes when all older instructions are done;
                // MFENCE when all older memory ops are done; SSBB completes
                // immediately (its effect is a standing order on loads).
                let ready = match kind {
                    FenceKind::LFence => self.rob.iter().take(idx).all(Entry::done),
                    FenceKind::MFence => self
                        .rob
                        .iter()
                        .take(idx)
                        .all(|e| !e.inst.is_memory() || e.done()),
                    FenceKind::Ssbb => true,
                };
                if ready {
                    self.start(idx, 1, 0, false);
                    true
                } else {
                    false
                }
            }
            Instruction::BranchIf { .. } => {
                self.start(idx, self.cfg.branch_latency, 0, false);
                true
            }
            Instruction::JumpIndirect { .. } => {
                self.start(idx, self.cfg.branch_latency, 0, false);
                true
            }
            Instruction::Ret => {
                // Returns resolve against the architectural stack, so they
                // execute only once they are the oldest in-flight
                // instruction.
                if idx == 0 {
                    self.start(idx, self.cfg.branch_latency, 0, false);
                    true
                } else {
                    false
                }
            }
            Instruction::ReadTime { .. } => {
                // rdtsc is serializing: executes at the head only.
                if idx == 0 {
                    let cyc = self.cycle;
                    self.start(idx, 1, cyc, false);
                    true
                } else {
                    false
                }
            }
            Instruction::CacheFlush { offset, .. } => {
                // clflush is ordered: performed when all older instructions
                // have completed (it is never executed transiently here).
                if !self.rob.iter().take(idx).all(Entry::done) {
                    return false;
                }
                let vaddr = vals[0].0.wrapping_add(offset as u64);
                let tr = self.translate(vaddr, false, self.privilege());
                if let Some(paddr) = tr.paddr {
                    self.cache.flush(paddr);
                }
                self.rob[idx].fault = tr.fault;
                self.start(idx, 1, 0, false);
                true
            }
            Instruction::ReadMsr { msr, .. } => {
                self.start_msr_read(idx, msr.0);
                true
            }
            Instruction::FpMove { fsrc, .. } => {
                self.start_fp_move(idx, fsrc.index());
                true
            }
            Instruction::Store { offset, .. } => {
                let value = vals[0].0;
                let base = vals[1].0;
                let vaddr = base.wrapping_add(offset as u64);
                let tr = self.translate(vaddr, true, self.privilege());
                self.rob[idx].paddr = tr.paddr.or(Some(0));
                self.rob[idx].store_value = value;
                self.rob[idx].fault = tr.fault;
                self.rob[idx].tainted = any_tainted;
                let lat = self.cfg.alu_latency + self.cfg.translation_latency;
                self.rob[idx].state = EntryState::Executing { done_at: now + lat };
                // The store's address is now known: check immediately for
                // younger loads that bypassed it and alias (the Spectre v4
                // authorization resolving negatively). Real pipelines run
                // this check at store-address generation, not completion.
                self.resolve_store(idx, res);
                true
            }
            Instruction::Load { offset, .. } => self.start_load(idx, vals[0], offset),
        }
    }

    fn report_blocked(&mut self, idx: usize, defense: &'static str) {
        if !self.rob[idx].blocked_reported {
            self.rob[idx].blocked_reported = true;
            let (cycle, pc) = (self.cycle, self.rob[idx].pc);
            self.record(TraceEvent::DefenseBlocked { cycle, pc, defense });
        }
    }

    fn start(&mut self, idx: usize, latency: u64, result: u64, tainted: bool) {
        let now = self.cycle;
        let e = &mut self.rob[idx];
        e.result = result;
        e.tainted = tainted;
        e.state = EntryState::Executing {
            done_at: now + latency.max(1),
        };
    }

    fn start_msr_read(&mut self, idx: usize, msr: u32) {
        let privileged = self.privilege() == Privilege::Kernel;
        let value = self.msr(msr);
        let lat = self.cfg.msr_read_latency;
        if privileged {
            self.start(idx, lat, value, false);
            return;
        }
        // Spectre v3a: the privilege check (authorization) is slower than
        // the register read (access); on the vulnerable baseline the value
        // is transiently forwarded.
        self.rob[idx].fault = Some(Fault::MsrPrivilege { msr });
        let forward = self.cfg.transient_forwarding && !self.cfg.eager_permission_check;
        let (v, lat) = if forward {
            (value, lat)
        } else {
            (0, lat + self.cfg.permission_check_latency)
        };
        if forward {
            let (cycle, pc) = (self.cycle, self.rob[idx].pc);
            self.record(TraceEvent::TransientForward {
                cycle,
                pc,
                source: TransientSource::SpecialRegister,
                value: v,
            });
        }
        self.start(idx, lat, v, true);
        self.rob[idx].fault = Some(Fault::MsrPrivilege { msr });
        self.rob[idx].spec_load = true;
        self.rob[idx].retire_not_before = self.cycle + self.cfg.permission_check_latency;
    }

    fn start_fp_move(&mut self, idx: usize, fidx: usize) {
        let lat = self.cfg.fp_latency;
        if self.fpu.owned_by(self.current) {
            let v = self.fpu.read_physical(fidx);
            self.start(idx, lat, v, false);
            return;
        }
        // Lazy FP: the FPU-owner check (authorization) races with the
        // physical register read (access).
        self.rob[idx].fault = Some(Fault::FpUnavailable);
        let forward =
            self.cfg.lazy_fpu && self.cfg.transient_forwarding && !self.cfg.eager_permission_check;
        let v = if forward {
            self.fpu.read_physical(fidx)
        } else {
            0
        };
        if forward {
            let (cycle, pc) = (self.cycle, self.rob[idx].pc);
            self.record(TraceEvent::TransientForward {
                cycle,
                pc,
                source: TransientSource::Fpu,
                value: v,
            });
        }
        self.start(idx, lat, v, true);
        self.rob[idx].fault = Some(Fault::FpUnavailable);
        self.rob[idx].spec_load = true;
        self.rob[idx].retire_not_before = self.cycle + self.cfg.permission_check_latency;
    }

    /// The load path: translation, authorization, store-buffer search,
    /// disambiguation, cache access, transient forwarding. Returns whether
    /// execution began.
    #[allow(clippy::too_many_lines)]
    fn start_load(&mut self, idx: usize, base: (u64, bool), offset: i64) -> bool {
        let speculative = self.is_speculative(idx);
        let pc = self.rob[idx].pc;
        let tainted_addr = base.1;

        // Strategy ① (inter-instruction): no load issues while speculative.
        if self.cfg.no_speculative_loads && speculative {
            self.report_blocked(idx, "no-speculative-loads");
            return false;
        }

        let vaddr = base.0.wrapping_add(offset as u64);
        let tr = self.translate(vaddr, false, self.privilege());

        // ---- Faulting access: the Meltdown-type intra-instruction race ----
        if let Some(fault) = tr.fault {
            self.rob[idx].fault = Some(fault);
            self.rob[idx].paddr = tr.paddr;
            let base_lat = self.cfg.translation_latency + self.cfg.cache_hit_latency;
            if self.cfg.eager_permission_check {
                // Strategy ① (intra-instruction): authorization completes
                // before any data moves — nothing is forwarded.
                let lat = base_lat + self.cfg.permission_check_latency;
                self.report_blocked(idx, "eager-permission-check");
                self.start(idx, lat, 0, false);
                self.rob[idx].fault = Some(fault);
                self.rob[idx].retire_not_before = self.cycle + lat;
                return true;
            }
            let (value, source) = self.transient_value(fault, tr.paddr, vaddr);
            if let Some(src) = source {
                self.record(TraceEvent::TransientForward {
                    cycle: self.cycle,
                    pc,
                    source: src,
                    value,
                });
            }
            self.start(idx, base_lat, value, true);
            self.rob[idx].fault = Some(fault);
            self.rob[idx].spec_load = true;
            self.rob[idx].paddr = tr.paddr;
            self.rob[idx].retire_not_before =
                self.cycle + self.cfg.translation_latency + self.cfg.permission_check_latency;
            return true;
        }

        let paddr = tr.paddr.expect("no fault implies a physical address");
        self.rob[idx].paddr = Some(paddr);

        // ---- Store-buffer search among older in-flight stores ----
        let mut forward_from: Option<u64> = None;
        let mut unresolved_older_store = false;
        for e in self.rob.iter().take(idx) {
            if !e.is_store() {
                continue;
            }
            match e.paddr {
                Some(sp) if sp & !7 == paddr & !7 => forward_from = Some(e.store_value),
                Some(_) => {}
                None => unresolved_older_store = true,
            }
        }
        if let Some(v) = forward_from {
            // Most-recent matching store wins (we scanned oldest→youngest,
            // overwriting). Store-to-load forwarding.
            self.record(TraceEvent::StoreToLoadForward {
                cycle: self.cycle,
                pc,
                paddr,
            });
            let lat = self.cfg.translation_latency + self.cfg.stl_forward_latency;
            self.start(idx, lat, v, tainted_addr || speculative);
            self.rob[idx].spec_load = speculative;
            if speculative {
                self.record(TraceEvent::SpeculativeExecute {
                    cycle: self.cycle,
                    pc,
                });
            }
            return true;
        }
        if unresolved_older_store {
            // Memory disambiguation: may the load bypass?
            let barrier = self.cfg.ssb_disable || self.ssbb_pending(idx);
            if barrier || !self.predictors.disambiguation.may_bypass(pc) {
                if barrier {
                    self.report_blocked(idx, "ssb-disable");
                }
                return false; // wait for the store address to resolve
            }
            self.rob[idx].bypassed = true;
            self.record(TraceEvent::DisambiguationBypass {
                cycle: self.cycle,
                pc,
            });
        }

        // ---- Cache / memory access ----
        let hit = self.cache.contains(paddr);
        if !hit && self.cfg.delay_on_miss && speculative {
            // Strategy ③ (Conditional Speculation / DoM): speculative
            // misses wait; speculative hits proceed (no state change).
            self.report_blocked(idx, "delay-on-miss");
            return false;
        }

        let value;
        let lat;
        if hit {
            value = self.cache.lookup(paddr).expect("hit");
            lat = self.cfg.translation_latency + self.cfg.cache_hit_latency;
        } else {
            value = self.memory.read_u64(paddr);
            lat = self.cfg.translation_latency + self.cfg.cache_miss_latency;
            if self.cfg.invisible_spec && speculative {
                // Strategy ③ (InvisiSpec/SafeSpec): data returns but the
                // fill is deferred to commit.
                self.rob[idx].deferred_fill = Some(paddr);
                self.report_blocked(idx, "invisible-spec");
            } else {
                let line = paddr & !(LINE_SIZE - 1);
                let was_present = self.cache.contains(line);
                let mem = &self.memory;
                let data = line_data(line, |a| mem.read_u64(a));
                self.lfb.record(line, data);
                let evicted = self.cache.fill(line, data);
                if speculative {
                    self.record(TraceEvent::SpeculativeFill {
                        cycle: self.cycle,
                        line,
                    });
                    if self.cfg.cleanup_spec && !was_present {
                        self.rob[idx].filled_line = Some((line, evicted));
                    }
                }
            }
        }
        self.load_ports.record(value);
        if speculative {
            self.record(TraceEvent::SpeculativeExecute {
                cycle: self.cycle,
                pc,
            });
        }
        self.start(idx, lat, value, tainted_addr || speculative);
        self.rob[idx].spec_load = speculative;
        true
    }

    /// What a *faulting* load transiently forwards on the vulnerable
    /// baseline, per Figure 4 of the paper: L1 for terminal faults
    /// (Foreshadow), memory for privilege faults (Meltdown), and the leaky
    /// buffers for hard faults (MDS: Fallout → store buffer, ZombieLoad /
    /// RIDL → line fill buffer, RIDL → load port).
    fn transient_value(
        &mut self,
        fault: Fault,
        paddr: Option<u64>,
        vaddr: u64,
    ) -> (u64, Option<TransientSource>) {
        match fault {
            Fault::PageNotPresent { .. } | Fault::ReservedBitSet { .. } => {
                // Terminal fault: the stale frame bits address the L1.
                if let (true, Some(p)) = (self.cfg.l1tf_forwarding, paddr) {
                    if self.cache.contains(p) {
                        let v = self.cache.lookup(p).expect("contains");
                        return (v, Some(TransientSource::Cache));
                    }
                }
                self.mds_sample(vaddr)
            }
            Fault::PrivilegeViolation { .. } | Fault::WriteToReadOnly { .. } => {
                if self.cfg.transient_forwarding {
                    if let Some(p) = paddr {
                        // Meltdown: the data path completes from cache or
                        // memory while the privilege check is still pending.
                        if self.cache.contains(p) {
                            let v = self.cache.lookup(p).expect("contains");
                            return (v, Some(TransientSource::Cache));
                        }
                        // §V-B insufficiency example: a defense that added
                        // the security dependency only on the memory
                        // datapath blocks this branch — but not the cache
                        // branch above.
                        if !self.cfg.meltdown_fix_memory_path_only {
                            let v = self.memory.read_u64(p);
                            // The transient access itself fills the cache.
                            self.fill_line(p);
                            return (v, Some(TransientSource::Memory));
                        }
                        return (0, None);
                    }
                }
                self.mds_sample(vaddr)
            }
            _ => self.mds_sample(vaddr),
        }
    }

    fn mds_sample(&self, vaddr: u64) -> (u64, Option<TransientSource>) {
        if !self.cfg.mds_forwarding {
            return (0, None);
        }
        if let Some(v) = self.store_buffer.sample_by_offset(vaddr % PAGE_SIZE) {
            return (v, Some(TransientSource::StoreBuffer));
        }
        if let Some(v) = self.lfb.sample(vaddr % LINE_SIZE) {
            return (v, Some(TransientSource::LineFillBuffer));
        }
        if let Some(v) = self.load_ports.sample() {
            return (v, Some(TransientSource::LoadPort));
        }
        (0, None)
    }

    // ---------------- fetch ----------------

    /// Resolves one source register against the rename table / committed
    /// register file at fetch time.
    fn resolve_src(&self, r: Reg) -> Src {
        if r.is_zero() {
            return Src::Ready {
                value: 0,
                tainted: false,
            };
        }
        match self.rename[r.index()] {
            Some(producer) => {
                // If the producer has already broadcast, read its value
                // directly.
                if let Some(pi) = self.entry_index(producer) {
                    let p = &self.rob[pi];
                    if p.done() && p.broadcast {
                        return Src::Ready {
                            value: p.result,
                            tainted: p.tainted,
                        };
                    }
                } else {
                    // The rename table never outlives its producer
                    // (retire/squash both clear it), so a missing producer
                    // is unreachable; fall back to the committed value
                    // defensively.
                    debug_assert!(false, "rename outlived producer {producer}");
                    return Src::Ready {
                        value: self.reg(r),
                        tainted: false,
                    };
                }
                Src::Pending { producer }
            }
            None => Src::Ready {
                value: self.reg(r),
                tainted: false,
            },
        }
    }

    fn fetch(&mut self, program: &Program) {
        for _ in 0..self.cfg.fetch_width {
            if self.stalled_on.is_some() {
                return;
            }
            let Some(pc) = self.fetch_pc else { return };
            if self.rob.len() >= self.cfg.rob_capacity {
                return;
            }
            let Some(&inst) = program.get(pc) else {
                // Ran off the program end.
                self.fetch_pc = None;
                return;
            };
            let seq = self.next_seq;
            self.next_seq += 1;

            // Resolve sources against the rename table / committed regfile,
            // into the entry's inline slots (no allocation).
            let (src_regs, nsrcs) = inst.sources_fixed();
            let mut srcs = [Src::Ready {
                value: 0,
                tainted: false,
            }; MAX_SRCS];
            for (slot, &r) in srcs.iter_mut().zip(src_regs.iter()).take(nsrcs) {
                *slot = self.resolve_src(r);
            }

            let mut entry = Entry {
                seq,
                pc,
                inst,
                srcs,
                nsrcs: nsrcs as u8,
                state: EntryState::Waiting,
                result: 0,
                tainted: false,
                spec_load: false,
                broadcast: false,
                fault: None,
                predicted_next: None,
                predicted_taken: false,
                paddr: None,
                store_value: 0,
                bypassed: false,
                filled_line: None,
                deferred_fill: None,
                in_tx: self.tx_depth > 0,
                blocked_reported: false,
                retire_not_before: 0,
            };

            // Fetch-direction decisions.
            match inst {
                Instruction::BranchIf { target, .. } => {
                    let taken = self.predictors.pht.predict(pc);
                    entry.predicted_taken = taken;
                    let next = if taken { target } else { pc + 1 };
                    entry.predicted_next = Some(next);
                    self.fetch_pc = Some(next);
                }
                Instruction::Jump { target } => {
                    entry.predicted_next = Some(target);
                    self.fetch_pc = Some(target);
                }
                Instruction::JumpIndirect { .. } => {
                    let predicted = if self.cfg.no_indirect_prediction {
                        None
                    } else {
                        self.predictors.btb.predict(pc)
                    };
                    entry.predicted_next = predicted;
                    match predicted {
                        Some(t) => self.fetch_pc = Some(t),
                        None => {
                            self.fetch_pc = None;
                            self.stalled_on = Some(seq);
                        }
                    }
                }
                Instruction::Call { target } => {
                    self.predictors.rsb.push(pc + 1);
                    entry.predicted_next = Some(target);
                    self.fetch_pc = Some(target);
                }
                Instruction::Ret => {
                    // On RSB underflow real front-ends fall back to the
                    // indirect-branch predictor — the Retbleed/BHI root
                    // cause: the *untagged, shared* BTB then supplies the
                    // return target, so cross-context training reaches
                    // returns too. Retpoline-style `no_indirect_prediction`
                    // also disables this fallback.
                    let predicted = self.predictors.rsb.pop().or_else(|| {
                        if self.cfg.no_indirect_prediction {
                            None
                        } else {
                            self.predictors.btb.predict(pc)
                        }
                    });
                    entry.predicted_next = predicted;
                    match predicted {
                        Some(t) => self.fetch_pc = Some(t),
                        None => {
                            self.fetch_pc = None;
                            self.stalled_on = Some(seq);
                        }
                    }
                }
                Instruction::Halt => {
                    self.fetch_pc = None;
                }
                Instruction::TxBegin => {
                    self.tx_depth += 1;
                    entry.in_tx = true;
                    self.fetch_pc = Some(pc + 1);
                }
                Instruction::TxEnd => {
                    self.tx_depth = self.tx_depth.saturating_sub(1);
                    self.fetch_pc = Some(pc + 1);
                }
                _ => {
                    self.fetch_pc = Some(pc + 1);
                }
            }

            if let Some(dst) = inst.destination() {
                if !dst.is_zero() {
                    self.rename[dst.index()] = Some(seq);
                }
            }
            self.rob.push_back(entry);
        }
    }
}

/// Computes, for each `TxBegin` pc, the pc to resume at after an abort
/// (the instruction following the matching `TxEnd`; program end if
/// unmatched). Fills caller-provided storage so per-run invocations reuse
/// capacity instead of allocating.
fn compute_tx_fallbacks_into(
    program: &Program,
    out: &mut SmallMap<usize, usize>,
    stack: &mut Vec<usize>,
) {
    out.clear();
    stack.clear();
    for (pc, inst) in program.iter() {
        match inst {
            Instruction::TxBegin => stack.push(pc),
            Instruction::TxEnd => {
                if let Some(begin) = stack.pop() {
                    out.insert(begin, pc + 1);
                }
            }
            _ => {}
        }
    }
    for begin in stack.drain(..) {
        out.insert(begin, program.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{AluOp, ProgramBuilder};

    fn machine() -> Machine {
        Machine::new(UarchConfig::default())
    }

    #[test]
    fn straightline_arithmetic() {
        let mut m = machine();
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 6)
            .imm(Reg::R1, 7)
            .alu(AluOp::Mul, Reg::R2, Reg::R0, Reg::R1)
            .alu_imm(AluOp::Add, Reg::R2, Reg::R2, 100)
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(r.retired, 5);
        assert_eq!(m.reg(Reg::R2), 142);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = machine();
        m.map_user_page(0x1000).unwrap();
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x1000)
            .imm(Reg::R1, 0xabcd)
            .store(Reg::R1, Reg::R0, 8)
            .load(Reg::R2, Reg::R0, 8)
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R2), 0xabcd);
        assert_eq!(m.read_u64(0x1008).unwrap(), 0xabcd);
    }

    #[test]
    fn loop_executes_correct_count() {
        let mut m = machine();
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 5)
            .imm(Reg::R1, 0)
            .label("loop")
            .unwrap()
            .alu_imm(AluOp::Add, Reg::R1, Reg::R1, 3)
            .alu_imm(AluOp::Sub, Reg::R0, Reg::R0, 1)
            .branch_if(Cond::Ne, Reg::R0, Reg::ZERO, "loop")
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R1), 15);
        // The backward branch mispredicts at least once (predicted
        // not-taken initially), producing squashes.
        assert!(r.mispredictions >= 1);
    }

    #[test]
    fn kernel_load_faults_in_user_mode() {
        let mut m = machine();
        m.map_kernel_page(0x2000).unwrap();
        m.write_u64(0x2000, 0x5ec).unwrap();
        m.set_privilege(Privilege::User);
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x2000)
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(!r.halted);
        assert_eq!(r.faults.len(), 1);
        assert!(matches!(r.faults[0], Fault::PrivilegeViolation { .. }));
        // The architectural register was never written.
        assert_eq!(m.reg(Reg::R1), 0);
        // But the transient forward happened (vulnerable baseline).
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::TransientForward { value: 0x5ec, .. })));
    }

    #[test]
    fn fault_handler_resumes() {
        let mut m = machine();
        m.map_kernel_page(0x2000).unwrap();
        m.set_privilege(Privilege::User);
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x2000)
            .load(Reg::R1, Reg::R0, 0)
            .halt() // skipped by handler
            .label("handler")
            .unwrap()
            .imm(Reg::R2, 99)
            .halt()
            .build()
            .unwrap();
        m.set_exception_behavior(ExceptionBehavior::Handler(p.label("handler").unwrap()));
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R2), 99);
        assert_eq!(r.faults.len(), 1);
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut m = Machine::new(UarchConfig::builder().max_cycles(100).build());
        let p = ProgramBuilder::new()
            .label("spin")
            .unwrap()
            .jump("spin")
            .halt()
            .build()
            .unwrap();
        assert_eq!(
            m.run(&p).unwrap_err(),
            UarchError::CycleLimitExceeded { limit: 100 }
        );
    }

    #[test]
    fn lfence_orders_execution() {
        // Without the fence, the load executes under the unresolved branch;
        // with it, it waits (we observe via SpeculativeExecute events).
        let mk = |fenced: bool| {
            let mut m = machine();
            m.map_user_page(0x1000).unwrap();
            m.map_user_page(0x8000).unwrap();
            // Slow source for the branch condition: an uncached load.
            m.write_u64(0x1000, 1).unwrap();
            let mut b = ProgramBuilder::new()
                .imm(Reg::R0, 0x1000)
                .load(Reg::R1, Reg::R0, 0) // slow (miss)
                .branch_if(Cond::Eq, Reg::R1, Reg::ZERO, "out");
            if fenced {
                b = b.fence(FenceKind::LFence);
            }
            let p = b
                .imm(Reg::R2, 0x8000)
                .load(Reg::R3, Reg::R2, 0)
                .label("out")
                .unwrap()
                .halt()
                .build()
                .unwrap();
            m.run(&p).unwrap();
            m.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::SpeculativeExecute { .. }))
        };
        assert!(mk(false), "baseline: load executes speculatively");
        assert!(!mk(true), "lfence: no speculative execution");
    }

    #[test]
    fn timed_read_distinguishes_hit_from_miss() {
        let mut m = machine();
        m.map_user_page(0x3000).unwrap();
        let miss = m.timed_read(0x3000).unwrap();
        let hit = m.timed_read(0x3000).unwrap();
        assert_eq!(miss, m.config().cache_miss_latency);
        assert_eq!(hit, m.config().cache_hit_latency);
    }

    #[test]
    fn context_switch_flushes_predictors_when_configured() {
        let mut m = Machine::new(
            UarchConfig::builder()
                .flush_predictors_on_switch(true)
                .build(),
        );
        let other = m.add_context(Privilege::User, ExceptionBehavior::Halt);
        m.predictors_mut().btb.update(3, 7);
        m.switch_context(other).unwrap();
        assert!(m.predictors().btb.is_empty());
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::PredictorsFlushed { .. })));
    }

    #[test]
    fn unknown_context_rejected() {
        let mut m = machine();
        assert_eq!(
            m.switch_context(ContextId(9)).unwrap_err(),
            UarchError::UnknownContext(9)
        );
    }

    #[test]
    fn tx_abort_suppresses_fault_and_resumes_after_txend() {
        let mut m = machine();
        m.map_kernel_page(0x2000).unwrap();
        m.set_privilege(Privilege::User);
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x2000)
            .tx_begin()
            .load(Reg::R1, Reg::R0, 0) // faults inside the transaction
            .tx_end()
            .imm(Reg::R2, 7) // resumed here after abort
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(r.tx_aborts, 1);
        assert!(r.faults.is_empty(), "fault suppressed by TSX abort");
        assert_eq!(m.reg(Reg::R2), 7);
    }

    #[test]
    fn call_ret_roundtrip() {
        let mut m = machine();
        let p = ProgramBuilder::new()
            .call("fn")
            .imm(Reg::R1, 2)
            .halt()
            .label("fn")
            .unwrap()
            .imm(Reg::R0, 1)
            .ret()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R0), 1);
        assert_eq!(m.reg(Reg::R1), 2);
    }

    #[test]
    fn rdtsc_monotonic() {
        let mut m = machine();
        let p = ProgramBuilder::new()
            .rdtsc(Reg::R0)
            .rdtsc(Reg::R1)
            .halt()
            .build()
            .unwrap();
        m.run(&p).unwrap();
        assert!(m.reg(Reg::R1) > m.reg(Reg::R0));
    }

    #[test]
    fn clflush_evicts() {
        let mut m = machine();
        m.map_user_page(0x4000).unwrap();
        m.touch(0x4000).unwrap();
        assert!(m.cache_contains(0x4000).unwrap());
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x4000)
            .clflush(Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        m.run(&p).unwrap();
        assert!(!m.cache_contains(0x4000).unwrap());
    }

    #[test]
    fn msr_read_privileged_ok_unprivileged_faults() {
        let mut m = machine();
        m.set_msr(0x10, 0x1234);
        let p = ProgramBuilder::new()
            .rdmsr(Reg::R0, isa::Msr(0x10))
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R0), 0x1234);

        m.set_privilege(Privilege::User);
        m.set_reg(Reg::R0, 0);
        let r = m.run(&p).unwrap();
        assert!(!r.halted);
        assert!(matches!(r.faults[0], Fault::MsrPrivilege { .. }));
        assert_eq!(m.reg(Reg::R0), 0, "architectural value never written");
    }

    #[test]
    fn store_to_load_forwarding_in_flight() {
        let mut m = machine();
        m.map_user_page(0x5000).unwrap();
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x5000)
            .imm(Reg::R1, 77)
            .store(Reg::R1, Reg::R0, 0)
            .load(Reg::R2, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.reg(Reg::R2), 77);
    }

    #[test]
    fn fp_move_lazy_fault_then_switch() {
        let mut m = machine();
        let victim = m.current_context();
        let attacker = m.add_context(Privilege::User, ExceptionBehavior::Halt);
        m.set_fpu_reg(victim, 0, 0xfeed);
        m.switch_context(attacker).unwrap();
        let p = ProgramBuilder::new()
            .fpmov(Reg::R0, isa::FReg::new(0))
            .halt()
            .build()
            .unwrap();
        let r = m.run(&p).unwrap();
        // Transient forward of the victim's value happened…
        assert!(m.events().iter().any(|e| matches!(
            e,
            TraceEvent::TransientForward {
                source: TransientSource::Fpu,
                value: 0xfeed,
                ..
            }
        )));
        // …the fault triggered the eager switch, and re-execution read 0.
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R0), 0);
        assert!(r.faults.contains(&Fault::FpUnavailable));
    }

    #[test]
    fn implicit_halt_at_program_end() {
        let mut m = machine();
        let p = ProgramBuilder::new().imm(Reg::R0, 5).build().unwrap();
        let r = m.run(&p).unwrap();
        assert!(r.halted);
        assert_eq!(m.reg(Reg::R0), 5);
    }

    #[test]
    fn tx_fallback_computation() {
        let p = ProgramBuilder::new()
            .tx_begin() // 0
            .nop() // 1
            .tx_end() // 2
            .tx_begin() // 3 (unmatched)
            .nop() // 4
            .build()
            .unwrap();
        let mut f = SmallMap::new();
        let mut stack = Vec::new();
        compute_tx_fallbacks_into(&p, &mut f, &mut stack);
        assert_eq!(f.get(&0), Some(&3));
        assert_eq!(f.get(&3), Some(&5)); // program end
    }

    #[test]
    fn reset_equals_new_observationally() {
        let run_attack_shape = |m: &mut Machine| {
            m.map_user_page(0x1000).unwrap();
            m.map_kernel_page(0x2000).unwrap();
            m.write_u64(0x2000, 0xa7).unwrap();
            m.set_privilege(Privilege::User);
            let p = ProgramBuilder::new()
                .imm(Reg::R0, 0x2000)
                .load(Reg::R1, Reg::R0, 0)
                .halt()
                .build()
                .unwrap();
            let r = m.run(&p).unwrap();
            (
                r,
                m.events().to_vec(),
                m.cycle(),
                m.cache().resident_lines(),
            )
        };
        let mut fresh = Machine::new(UarchConfig::default());
        let baseline = run_attack_shape(&mut fresh);

        // Dirty a machine with a different config and program, then reset.
        let mut warm = Machine::new(UarchConfig::builder().cache_sets(8).nda(true).build());
        let _ = run_attack_shape(&mut warm);
        warm.reset(&UarchConfig::default());
        assert_eq!(warm.cycle(), 0);
        assert_eq!(warm.events().len(), 0);
        let again = run_attack_shape(&mut warm);
        assert_eq!(again, baseline);
    }

    #[test]
    fn reset_adopts_new_geometry() {
        let mut m = Machine::new(UarchConfig::default());
        m.map_user_page(0x1000).unwrap();
        m.touch(0x1000).unwrap();
        let cfg = UarchConfig::builder().cache_sets(4).cache_ways(2).build();
        m.reset(&cfg);
        assert_eq!(m.cache().set_count(), 4);
        assert_eq!(m.cache().way_count(), 2);
        assert!(m.cache().resident_lines().is_empty());
        assert_eq!(m.config(), &cfg);
        // The old mapping is gone.
        assert!(m.read_u64(0x1000).is_err());
    }

    #[test]
    fn event_log_capacity_from_config_and_reset_safe_drop_count() {
        let mut m = Machine::new(UarchConfig::builder().max_events(2).build());
        m.map_kernel_page(0x2000).unwrap();
        m.set_privilege(Privilege::User);
        let p = ProgramBuilder::new()
            .imm(Reg::R0, 0x2000)
            .load(Reg::R1, Reg::R0, 0)
            .halt()
            .build()
            .unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.events().len(), 2);
        assert!(m.events_dropped() > 0);
        m.clear_events();
        assert_eq!(m.events_dropped(), 0);
        m.reset(&UarchConfig::builder().max_events(2).build());
        assert_eq!(m.events_dropped(), 0);
        assert!(m.events().is_empty());
    }
}
