//! Paging, permissions, and translation — the hardware *authorization* of
//! Meltdown-type attacks.
//!
//! Translation of a virtual address consults a page-table entry carrying the
//! permission bits of the paper's Table III authorization column:
//!
//! * **user bit** — kernel pages fault in user mode (Meltdown),
//! * **present bit / reserved bits** — terminal faults (Foreshadow), which
//!   abort the walk *but still expose the stale frame bits*, the basis of
//!   reading from L1,
//! * **writable bit** — write faults (Spectre v1.2 writes read-only memory
//!   transiently).

use crate::result::Fault;
use std::collections::HashMap;

/// Page size: 4 KiB.
pub const PAGE_SIZE: u64 = 4096;

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Physical frame number (`paddr >> 12`).
    pub frame: u64,
    /// Present bit; clear ⇒ terminal fault (Foreshadow-style).
    pub present: bool,
    /// User-accessible bit; clear ⇒ kernel-only (Meltdown's check).
    pub user: bool,
    /// Writable bit; clear ⇒ stores fault (Spectre v1.2's check).
    pub writable: bool,
    /// Reserved bits set ⇒ terminal fault even when present (Foreshadow-NG).
    pub reserved: bool,
}

impl PageEntry {
    /// A normal user page mapped 1:1 (frame = vpn).
    #[must_use]
    pub fn user_rw(frame: u64) -> Self {
        PageEntry {
            frame,
            present: true,
            user: true,
            writable: true,
            reserved: false,
        }
    }

    /// A kernel-only page mapped 1:1.
    #[must_use]
    pub fn kernel_rw(frame: u64) -> Self {
        PageEntry {
            user: false,
            ..Self::user_rw(frame)
        }
    }
}

/// Outcome of a translation: the physical address the hardware would use,
/// plus the authorization verdict.
///
/// Crucially for Foreshadow, a *terminal* fault still yields a physical
/// address (`paddr` is `Some`): the vulnerable machine forwards L1 data for
/// that address while the fault is in flight. A missing translation
/// (`paddr == None`) has no data path at all — which is exactly why KPTI
/// (unmapping, not just protecting, kernel pages) defeats Meltdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address from the (possibly faulting) PTE, if any PTE
    /// exists.
    pub paddr: Option<u64>,
    /// The authorization verdict: `None` means access allowed.
    pub fault: Option<Fault>,
}

/// Privilege level of the executing context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegeLevel {
    /// Unprivileged user mode.
    User,
    /// Supervisor mode.
    Kernel,
}

/// A single-level page table over 4 KiB pages.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, PageEntry>,
}

impl PageTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps virtual page number `vpn` to `entry`.
    pub fn map(&mut self, vpn: u64, entry: PageEntry) {
        self.entries.insert(vpn, entry);
    }

    /// Removes the mapping for `vpn` (KPTI unmaps kernel pages this way).
    pub fn unmap(&mut self, vpn: u64) -> Option<PageEntry> {
        self.entries.remove(&vpn)
    }

    /// Removes every mapping, keeping the table's heap capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The entry for `vpn`, if mapped.
    #[must_use]
    pub fn entry(&self, vpn: u64) -> Option<&PageEntry> {
        self.entries.get(&vpn)
    }

    /// Iterates over all `(vpn, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &PageEntry)> + '_ {
        self.entries.iter()
    }

    /// Translates `vaddr` for an access of the given kind at the given
    /// privilege.
    ///
    /// Returns the physical address the hardware datapath would use together
    /// with the authorization verdict — the two race in a vulnerable
    /// pipeline.
    #[must_use]
    pub fn translate(&self, vaddr: u64, write: bool, priv_level: PrivilegeLevel) -> Translation {
        let vpn = vaddr / PAGE_SIZE;
        let offset = vaddr % PAGE_SIZE;
        let Some(e) = self.entries.get(&vpn) else {
            return Translation {
                paddr: None,
                fault: Some(Fault::PageNotMapped { vaddr }),
            };
        };
        let paddr = Some(e.frame * PAGE_SIZE + offset);
        // Terminal faults: present bit clear or reserved bits set. The walk
        // aborts, but the stale frame bits remain on the datapath.
        if !e.present {
            return Translation {
                paddr,
                fault: Some(Fault::PageNotPresent { vaddr }),
            };
        }
        if e.reserved {
            return Translation {
                paddr,
                fault: Some(Fault::ReservedBitSet { vaddr }),
            };
        }
        if priv_level == PrivilegeLevel::User && !e.user {
            return Translation {
                paddr,
                fault: Some(Fault::PrivilegeViolation { vaddr }),
            };
        }
        if write && !e.writable {
            return Translation {
                paddr,
                fault: Some(Fault::WriteToReadOnly { vaddr }),
            };
        }
        Translation { paddr, fault: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let mut t = PageTable::new();
        t.map(1, PageEntry::user_rw(1)); // 0x1000 user rw
        t.map(2, PageEntry::kernel_rw(2)); // 0x2000 kernel
        t.map(
            3,
            PageEntry {
                present: false,
                ..PageEntry::user_rw(3)
            },
        ); // 0x3000 not present
        t.map(
            4,
            PageEntry {
                writable: false,
                ..PageEntry::user_rw(4)
            },
        ); // 0x4000 read-only
        t.map(
            5,
            PageEntry {
                reserved: true,
                ..PageEntry::user_rw(5)
            },
        ); // 0x5000 reserved bits
        t
    }

    #[test]
    fn user_page_translates_cleanly() {
        let t = table();
        let tr = t.translate(0x1008, false, PrivilegeLevel::User);
        assert_eq!(tr.paddr, Some(0x1008));
        assert_eq!(tr.fault, None);
    }

    #[test]
    fn kernel_page_faults_in_user_mode_but_keeps_paddr() {
        let t = table();
        let tr = t.translate(0x2010, false, PrivilegeLevel::User);
        assert_eq!(tr.paddr, Some(0x2010));
        assert!(matches!(tr.fault, Some(Fault::PrivilegeViolation { .. })));
        // In kernel mode the same access is fine.
        let tr = t.translate(0x2010, false, PrivilegeLevel::Kernel);
        assert_eq!(tr.fault, None);
    }

    #[test]
    fn unmapped_page_has_no_paddr() {
        let t = table();
        let tr = t.translate(0x9000, false, PrivilegeLevel::Kernel);
        assert_eq!(tr.paddr, None);
        assert!(matches!(tr.fault, Some(Fault::PageNotMapped { .. })));
    }

    #[test]
    fn terminal_faults_keep_frame_bits() {
        let t = table();
        let np = t.translate(0x3000, false, PrivilegeLevel::User);
        assert_eq!(np.paddr, Some(0x3000));
        assert!(matches!(np.fault, Some(Fault::PageNotPresent { .. })));
        let rsvd = t.translate(0x5000, false, PrivilegeLevel::Kernel);
        assert_eq!(rsvd.paddr, Some(0x5000));
        assert!(matches!(rsvd.fault, Some(Fault::ReservedBitSet { .. })));
    }

    #[test]
    fn readonly_page_faults_only_on_write() {
        let t = table();
        assert_eq!(t.translate(0x4000, false, PrivilegeLevel::User).fault, None);
        assert!(matches!(
            t.translate(0x4000, true, PrivilegeLevel::User).fault,
            Some(Fault::WriteToReadOnly { .. })
        ));
    }

    #[test]
    fn unmap_removes_datapath() {
        let mut t = table();
        assert!(t.unmap(2).is_some());
        let tr = t.translate(0x2000, false, PrivilegeLevel::User);
        assert_eq!(tr.paddr, None);
        assert!(t.unmap(2).is_none());
    }

    #[test]
    fn nonidentity_frame_translation() {
        let mut t = PageTable::new();
        t.map(0x10, PageEntry::user_rw(0x99));
        let tr = t.translate(0x10_123, false, PrivilegeLevel::User);
        assert_eq!(tr.paddr, Some(0x99 * PAGE_SIZE + 0x123));
    }
}
