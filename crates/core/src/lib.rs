//! # `specgraph` — reasoning about speculative execution attacks
//!
//! A full reproduction of **"New Models for Understanding and Reasoning
//! about Speculative Execution Attacks"** (He, Hu, Lee — HPCA 2021), as a
//! Rust workspace:
//!
//! | crate | paper content |
//! |---|---|
//! | [`tsg`] | attack graphs as Topological Sort Graphs, valid orderings, race conditions, **Theorem 1**, security dependencies (§IV) |
//! | [`isa`] | the architectural substrate: a small ISA with branches, faulting loads, fences, `clflush`/`rdtsc`, MSRs, FP and TSX |
//! | [`uarch`] | a speculative out-of-order machine with trainable predictors, delayed authorization checks, leaky buffers and every defense knob of Figure 8 |
//! | [`channels`] | the four cache-timing channel classes of §II-C |
//! | [`attacks`] | the Table-III catalog and its descendants (22 registry rows): executable PoC + attack graph + catalog row each |
//! | [`defenses`] | the four defense strategies of Figure 8 and the full Table-II/§V-B defense catalog, verified by execution |
//! | [`analyzer`] | the Figure-9 tool: graph construction, race finding, fence/mask patching |
//!
//! This crate re-exports everything and adds the paper's §V-A **discovery**
//! framework ([`discovery`]) — new attacks as points in the
//! (secret source × delay mechanism × covert channel) design space — and
//! the §V-B **insufficient defense** demonstration ([`insufficiency`]).
//!
//! ```
//! use specgraph::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Theorem 1 in two lines:
//! let mut g = Tsg::new();
//! let auth = g.add_node("authorization", NodeKind::Authorization);
//! let acc = g.add_node("access", NodeKind::SecretAccess(SecretSource::Memory));
//! assert!(g.has_race(auth, acc)?); // no path ⇒ race ⇒ exploitable
//!
//! // …and the corresponding executable attack:
//! let out = attacks::meltdown::Meltdown.run(&UarchConfig::default())?;
//! assert!(out.leaked);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod discovery;
pub mod fault;
pub mod insufficiency;
pub mod jsonio;
pub mod scenario;
pub mod serve;

pub use analyzer;
pub use attacks;
pub use channels;
pub use defenses;
pub use isa;
pub use tsg;
pub use uarch;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::campaign::{
        self, CampaignIoError, CampaignMatrix, CampaignPart, CampaignShard, CampaignSpec,
        CellOutcome, Hardening, IncrementalReport, Knob, KnobValue, MatrixDiff, MergeError,
        NamedConfig, PredictorFlavor, Resilience, TaskEvent,
    };
    pub use crate::discovery::fuzz::{
        self, Agreement, Combo, Corpus, DualOracle, FuzzConfig, FuzzError, FuzzReport, Scenario,
        SynthesizedRegistry,
    };
    pub use crate::discovery::{self, AttackPoint, Channel, DelayMechanism, SecretSourceDim};
    pub use crate::fault::{self, ArmedFault, FaultKind, FaultPlan, PanickingAttack, SweepReport};
    pub use crate::scenario::{self, Evaluation};
    pub use crate::serve::{
        self, Answer, AnswerSource, ChunkEvent, ChunkRepair, ScheduleReport, Scheduler, ServeError,
        StoredVerdict, VerdictStore,
    };
    pub use analyzer::{AnalysisConfig, Analyzer};
    pub use attacks::{self, Attack, AttackClass, AttackOutcome};
    pub use channels::flush_reload::FlushReload;
    pub use defenses::{self, Defense, DefenseStack, StackError, Strategy, Verdict};
    pub use isa::{self, Program, ProgramBuilder, Reg};
    pub use tsg::{
        EdgeKind, NodeKind, SecretSource, SecurityAnalysis, SecurityDependency, Tsg, TsgError,
    };
    pub use uarch::{self, Machine, UarchConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_reexports() {
        let g = Tsg::new();
        assert_eq!(g.node_count(), 0);
        let cfg = UarchConfig::default();
        assert!(cfg.transient_forwarding);
        assert_eq!(Strategy::all().len(), 4);
    }
}
