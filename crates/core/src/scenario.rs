//! High-level scenario API: evaluate attack × defense-stack combinations
//! with both the graph-level and machine-level verdicts side by side — the
//! paper's methodology ("show *why* a defense works") as a library call.
//!
//! The unit of evaluation is a [`DefenseStack`] — an ordered bundle of
//! catalog defenses. A single defense is just a singleton stack
//! ([`evaluate`] wraps one for you), and a singleton evaluation is
//! byte-identical to the historical single-defense output; a real bundle
//! (`"KAISER/KPTI+Retpoline+IBPB"`) is patched into the graph with *all*
//! its member strategies and deployed onto the machine as one folded,
//! conflict-checked configuration.

use attacks::{Attack, AttackError};
use defenses::{Defense, DefenseStack, Strategy, Verdict};
use std::fmt;
use uarch::UarchConfig;

/// The two verdicts for one (attack, defense stack) pair.
///
/// `strategy_sufficient` answers the *graph-level* question: "if this
/// stack's strategy edges were enforced on this attack's graph, would the
/// leak path close?" — an idealized claim about the strategies, proved by
/// Theorem 1. `mechanism` answers the *machine-level* question: "does this
/// concrete bundle actually stop this attack?". When the strategies would
/// suffice but the mechanisms leak, the stack is a **false sense of
/// security** for this attack (the paper's §V-B warning): the bundle
/// inserts its ordering somewhere other than this attack's missing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// Attack name.
    pub attack: &'static str,
    /// The evaluated defense stack (a singleton for classic single-defense
    /// cells).
    pub stack: DefenseStack,
    /// Graph verdict: would the stack's strategies, enforced on this
    /// graph, close the leak path? `None` when no member strategy has an
    /// insertion point in this graph.
    pub strategy_sufficient: Option<bool>,
    /// Machine verdict from actually running the attack under the
    /// deployed stack.
    pub mechanism: Verdict,
}

impl Evaluation {
    /// The stack's canonical display name (`"NDA"`,
    /// `"KAISER/KPTI+Retpoline"`): the `defense` column of every table.
    #[must_use]
    pub fn defense(&self) -> &str {
        self.stack.name()
    }

    /// The distinct strategies the stack exercises, in member order.
    #[must_use]
    pub fn strategies(&self) -> Vec<Strategy> {
        self.stack.strategies()
    }

    /// The §V-B "false sense of security" pattern: the strategies would
    /// work here, but this bundle does not implement them *for this
    /// attack* (e.g. KPTI is strategy ① for kernel pages — useless against
    /// the user-space Spectre v1 access; stacking retpoline next to it
    /// does not change that).
    #[must_use]
    pub fn false_sense_of_security(&self) -> bool {
        self.strategy_sufficient == Some(true) && self.mechanism == Verdict::Leaked
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: strategy-sufficient={} mechanism={}{}",
            self.defense(),
            self.attack,
            self.strategy_sufficient
                .map_or_else(|| "n/a".to_owned(), |b| b.to_string()),
            self.mechanism,
            if self.false_sense_of_security() {
                "  <-- false sense of security"
            } else {
                ""
            }
        )
    }
}

/// Evaluates one (attack, defense stack) pair at both levels.
///
/// The *graph* level inserts every distinct member strategy's edges into
/// the attack's graph and asks Theorem 1 whether the leak path closes
/// ([`DefenseStack::graph_sufficient`]). The *machine* level folds the
/// stack's overlays onto the simulator configuration and re-runs the
/// attack ([`defenses::verify_stack`]).
///
/// A strategy-② or -③ graph patch leaves the access race by design (the
/// paper's relaxed security model), so graph sufficiency for those is
/// defined as "no race on the *send* node" — the exfiltration is what they
/// promise to stop. A stack containing a ① member must close every race.
///
/// # Errors
///
/// Propagates [`AttackError`] from the simulation.
pub fn evaluate_stack(
    attack: &dyn Attack,
    stack: &DefenseStack,
    base: &UarchConfig,
) -> Result<Evaluation, AttackError> {
    let strategy_sufficient = stack.graph_sufficient(attack)?;
    let mechanism = defenses::verify_stack(stack, attack, base)?;
    Ok(Evaluation {
        attack: attack.info().name,
        stack: stack.clone(),
        strategy_sufficient,
        mechanism,
    })
}

/// Evaluates one (attack, single defense) pair: a singleton-stack
/// [`evaluate_stack`], bit-identical to the historical per-defense path.
///
/// # Errors
///
/// Propagates [`AttackError`] from the simulation.
pub fn evaluate(
    attack: &dyn Attack,
    defense: &Defense,
    base: &UarchConfig,
) -> Result<Evaluation, AttackError> {
    evaluate_stack(attack, &DefenseStack::single(*defense), base)
}

/// Evaluates every (attack, defense) pair of the registries; returns the
/// evaluations plus the count of §V-B "false sense of security" pairs
/// (strategy would work, mechanism does not — expected to be plentiful:
/// that is the paper's warning).
///
/// This is a thin consumer of the [`campaign`](crate::campaign) engine:
/// one parallel matrix run over the registries, flattened back to the
/// historical `(evaluations, false_sense_count)` shape in the same
/// attack-major order the per-pair loop produced.
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
pub fn evaluate_all(base: &UarchConfig) -> Result<(Vec<Evaluation>, usize), AttackError> {
    let spec = crate::campaign::CampaignSpec::builder(base.clone()).build();
    let matrix = crate::campaign::CampaignMatrix::run(&spec)?;
    let false_sense = matrix.false_senses().len();
    let out = matrix
        .cells()
        .iter()
        .map(|cell| cell.evaluation.clone())
        .collect();
    Ok((out, false_sense))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defense(name: &str) -> Defense {
        defenses::catalog()
            .into_iter()
            .find(|d| d.name == name)
            .expect("defense exists")
    }

    #[test]
    fn nda_vs_spectre_v1_agrees_at_both_levels() {
        let e = evaluate(
            &attacks::spectre_v1::SpectreV1,
            &defense("NDA"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert_eq!(e.strategy_sufficient, Some(true));
        assert_eq!(e.mechanism, Verdict::Blocked);
        assert!(!e.false_sense_of_security());
        assert!(e.to_string().contains("NDA"));
        assert_eq!(e.defense(), "NDA");
        assert_eq!(e.strategies(), vec![Strategy::PreventUse]);
    }

    #[test]
    fn eager_check_vs_meltdown_graph_predicts_machine() {
        let e = evaluate(
            &attacks::meltdown::Meltdown,
            &defense("Eager permission check"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert_eq!(e.strategy_sufficient, Some(true));
        assert_eq!(e.mechanism, Verdict::Blocked);
    }

    #[test]
    fn kpti_vs_spectre_v1_is_the_canonical_false_sense() {
        // Strategy ① *would* secure Spectre v1's graph; KPTI's mechanism
        // inserts that ordering only for kernel pages — useless here.
        let e = evaluate(
            &attacks::spectre_v1::SpectreV1,
            &defense("KAISER/KPTI"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert!(e.false_sense_of_security());
        assert!(e.to_string().contains("false sense"));
    }

    #[test]
    fn singleton_stack_evaluation_is_identical_to_single_defense() {
        let base = UarchConfig::default();
        for d in defenses::registry().iter().take(6) {
            let single = evaluate(&attacks::spectre_v2::SpectreV2, d, &base).unwrap();
            let stacked = evaluate_stack(
                &attacks::spectre_v2::SpectreV2,
                &DefenseStack::single(*d),
                &base,
            )
            .unwrap();
            assert_eq!(single, stacked, "{}", d.name);
            assert_eq!(single.defense(), d.name);
        }
    }

    #[test]
    fn bundle_evaluation_is_a_first_class_citizen() {
        let base = UarchConfig::default();
        let linux = defenses::presets::linux_default();
        // Blocked by the bundle even though KPTI alone leaks it: the
        // retpoline member closes Spectre v2's edge.
        let v2 = evaluate_stack(&attacks::spectre_v2::SpectreV2, &linux, &base).unwrap();
        assert_eq!(v2.mechanism, Verdict::Blocked);
        assert_eq!(v2.defense(), "KAISER/KPTI+Retpoline+IBPB+RSB stuffing");
        assert!(!v2.false_sense_of_security());
        // Stack-level false sense: the bundle's ① member would close
        // Spectre v1's graph, but none of the mechanisms does.
        let v1 = evaluate_stack(&attacks::spectre_v1::SpectreV1, &linux, &base).unwrap();
        assert_eq!(v1.mechanism, Verdict::Leaked);
        assert!(v1.false_sense_of_security());
        assert!(v1.to_string().contains("false sense"));
    }

    #[test]
    fn whole_matrix_evaluates_and_flags_mismatched_mechanisms() {
        let (evals, false_sense) = evaluate_all(&UarchConfig::default()).unwrap();
        assert_eq!(
            evals.len(),
            attacks::catalog().len() * defenses::catalog().len()
        );
        // The paper's warning is not hypothetical: many (attack, defense)
        // pairs share a strategy but not a missing edge.
        assert!(false_sense > 0);
        // And the converse sanity: every blocked pair with a sufficient
        // strategy is *not* flagged.
        for e in &evals {
            if e.mechanism == Verdict::Blocked {
                assert!(!e.false_sense_of_security());
            }
        }
    }
}
