//! High-level scenario API: evaluate attack × defense combinations with
//! both the graph-level and machine-level verdicts side by side — the
//! paper's methodology ("show *why* a defense works") as a library call.

use attacks::{Attack, AttackError};
use defenses::{patch_strategy, Defense, PatchError, Strategy, Verdict};
use std::fmt;
use uarch::UarchConfig;

/// The two verdicts for one (attack, defense) pair.
///
/// `strategy_sufficient` answers the *graph-level* question: "if this
/// defense's strategy edges were enforced on this attack's graph, would
/// the leak path close?" — an idealized claim about the strategy.
/// `mechanism` answers the *machine-level* question: "does this concrete
/// mechanism actually stop this attack?". When the strategy would suffice
/// but the mechanism leaks, the defense is a **false sense of security**
/// for this attack (the paper's §V-B warning): the mechanism inserts its
/// ordering somewhere other than this attack's missing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// Attack name.
    pub attack: &'static str,
    /// Defense name.
    pub defense: &'static str,
    /// The strategy the defense implements.
    pub strategy: Strategy,
    /// Graph verdict: would the strategy, enforced on this graph, close
    /// the leak path? `None` when the strategy has no insertion point in
    /// this graph.
    pub strategy_sufficient: Option<bool>,
    /// Machine verdict from actually running the attack under the defense.
    pub mechanism: Verdict,
}

impl Evaluation {
    /// The §V-B "false sense of security" pattern: the strategy would work
    /// here, but this mechanism does not implement it *for this attack*
    /// (e.g. KPTI is strategy ① for kernel pages — useless against the
    /// user-space Spectre v1 access).
    #[must_use]
    pub fn false_sense_of_security(&self) -> bool {
        self.strategy_sufficient == Some(true) && self.mechanism == Verdict::Leaked
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: strategy-sufficient={} mechanism={}{}",
            self.defense,
            self.attack,
            self.strategy_sufficient
                .map_or_else(|| "n/a".to_owned(), |b| b.to_string()),
            self.mechanism,
            if self.false_sense_of_security() {
                "  <-- false sense of security"
            } else {
                ""
            }
        )
    }
}

/// Evaluates one (attack, defense) pair at both levels.
///
/// The *graph* level inserts the defense's strategy edges into the attack's
/// graph and asks Theorem 1 whether the leak path closes. The *machine*
/// level configures the simulator with the defense and re-runs the attack.
///
/// A strategy-② or -③ graph patch leaves the access race by design (the
/// paper's relaxed security model), so graph sufficiency for those is
/// defined as "no race on the *send* node" — the exfiltration is what they
/// promise to stop.
///
/// # Errors
///
/// Propagates [`AttackError`] from the simulation.
pub fn evaluate(
    attack: &dyn Attack,
    defense: &Defense,
    base: &UarchConfig,
) -> Result<Evaluation, AttackError> {
    let mut sa = attack.graph();
    let strategy_sufficient = match patch_strategy(&mut sa, defense.strategy) {
        Ok(_) => {
            let vulns = sa.vulnerabilities()?;
            let secure = match defense.strategy {
                Strategy::PreventAccess => vulns.is_empty(),
                Strategy::PreventUse | Strategy::PreventSend => !vulns
                    .iter()
                    .any(|v| matches!(v.protected_kind, tsg::NodeKind::Send)),
                // ④ acts on the mis-training channel, which the static
                // graph only represents as setup ordering: treat insertion
                // success as the graph-level claim.
                Strategy::ClearPredictions => true,
            };
            Some(secure)
        }
        Err(PatchError::Graph(e)) => return Err(AttackError::Tsg(e)),
        // No insertion point for this strategy in this graph.
        Err(_) => None,
    };
    let mechanism = defenses::verify(defense, attack, base)?;
    Ok(Evaluation {
        attack: attack.info().name,
        defense: defense.name,
        strategy: defense.strategy,
        strategy_sufficient,
        mechanism,
    })
}

/// Evaluates every (attack, defense) pair; returns the evaluations plus
/// the count of §V-B "false sense of security" pairs (strategy would work,
/// mechanism does not — expected to be plentiful: that is the paper's
/// warning).
///
/// This is a thin consumer of the [`campaign`](crate::campaign) engine:
/// one parallel matrix run over the registries, flattened back to the
/// historical `(evaluations, false_sense_count)` shape in the same
/// attack-major order the per-pair loop produced.
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
pub fn evaluate_all(base: &UarchConfig) -> Result<(Vec<Evaluation>, usize), AttackError> {
    let spec = crate::campaign::CampaignSpec::builder(base.clone()).build();
    let matrix = crate::campaign::CampaignMatrix::run(&spec)?;
    let false_sense = matrix.false_senses().len();
    let out = matrix
        .cells()
        .iter()
        .map(|cell| cell.evaluation.clone())
        .collect();
    Ok((out, false_sense))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defense(name: &str) -> Defense {
        defenses::catalog()
            .into_iter()
            .find(|d| d.name == name)
            .expect("defense exists")
    }

    #[test]
    fn nda_vs_spectre_v1_agrees_at_both_levels() {
        let e = evaluate(
            &attacks::spectre_v1::SpectreV1,
            &defense("NDA"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert_eq!(e.strategy_sufficient, Some(true));
        assert_eq!(e.mechanism, Verdict::Blocked);
        assert!(!e.false_sense_of_security());
        assert!(e.to_string().contains("NDA"));
    }

    #[test]
    fn eager_check_vs_meltdown_graph_predicts_machine() {
        let e = evaluate(
            &attacks::meltdown::Meltdown,
            &defense("Eager permission check"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert_eq!(e.strategy_sufficient, Some(true));
        assert_eq!(e.mechanism, Verdict::Blocked);
    }

    #[test]
    fn kpti_vs_spectre_v1_is_the_canonical_false_sense() {
        // Strategy ① *would* secure Spectre v1's graph; KPTI's mechanism
        // inserts that ordering only for kernel pages — useless here.
        let e = evaluate(
            &attacks::spectre_v1::SpectreV1,
            &defense("KAISER/KPTI"),
            &UarchConfig::default(),
        )
        .unwrap();
        assert!(e.false_sense_of_security());
        assert!(e.to_string().contains("false sense"));
    }

    #[test]
    fn whole_matrix_evaluates_and_flags_mismatched_mechanisms() {
        let (evals, false_sense) = evaluate_all(&UarchConfig::default()).unwrap();
        assert_eq!(
            evals.len(),
            attacks::catalog().len() * defenses::catalog().len()
        );
        // The paper's warning is not hypothetical: many (attack, defense)
        // pairs share a strategy but not a missing edge.
        assert!(false_sense > 0);
        // And the converse sanity: every blocked pair with a sufficient
        // strategy is *not* flagged.
        for e in &evals {
            if e.mechanism == Verdict::Blocked {
                assert!(!e.false_sense_of_security());
            }
        }
    }
}
