//! §V-B: the **insufficient defense** demonstration.
//!
//! The paper's cautionary example: a defense that adds the security
//! dependency ① ("authorization → read from memory") stops the baseline
//! Meltdown, but an attacker who arranges an L1 hit for the secret (the
//! L1-terminal-fault trick) bypasses it — the secret now flows through the
//! *cache* datapath that the defense never ordered. Only adding dependency
//! ④ ("authorization → read from cache") as well yields a valid defense.
//! Misplaced security dependencies give a false sense of security.
//!
//! Both the graph-level argument and the executable demonstration live
//! here.

use attacks::common::{finish, machine_with_channel, KERNEL_SECRET, PROBE_BASE, SECRET};
use attacks::{Attack, AttackError, AttackOutcome};
use isa::Reg;
use tsg::{EdgeKind, NodeKind, SecretSource, SecurityAnalysis};
use uarch::{ExceptionBehavior, Machine, Privilege, UarchConfig};

/// Result of the three-configuration experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficiencyResult {
    /// Baseline (no defense), secret uncached: leaks.
    pub baseline: AttackOutcome,
    /// Partial defense (memory path only), secret uncached: blocked.
    pub partial_blocks_baseline: AttackOutcome,
    /// Partial defense, secret **cached** by the attacker-induced hit:
    /// leaks again — the false sense of security.
    pub partial_bypassed_via_cache: AttackOutcome,
    /// Full defense (both datapaths): blocked even with the cache hit.
    pub full_blocks_everything: AttackOutcome,
}

/// Runs Meltdown with the secret optionally pre-loaded into the L1.
fn run_meltdown_with_residency(
    cfg: &UarchConfig,
    secret_in_l1: bool,
) -> Result<AttackOutcome, AttackError> {
    let mut m = machine_with_channel(cfg)?;
    run_meltdown_with_residency_in(&mut m, secret_in_l1)
}

/// [`run_meltdown_with_residency`] on an already-prepared machine.
fn run_meltdown_with_residency_in(
    m: &mut Machine,
    secret_in_l1: bool,
) -> Result<AttackOutcome, AttackError> {
    m.map_kernel_page(KERNEL_SECRET)?;
    m.write_u64(KERNEL_SECRET, SECRET)?;
    if secret_in_l1 {
        m.touch(KERNEL_SECRET)?;
    }
    m.set_privilege(Privilege::User);
    // Reuse the canonical Meltdown gadget via its public program shape.
    let program = {
        use isa::{AluOp, Cond, ProgramBuilder};
        ProgramBuilder::new()
            .load(Reg::R6, Reg::R5, 0)
            .branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "done")
            .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, attacks::common::PROBE_STRIDE)
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0)
            .label("done")
            .map_err(AttackError::Isa)?
            .halt()
            .build()
            .map_err(AttackError::Isa)?
    };
    m.set_exception_behavior(ExceptionBehavior::Handler(
        program.label("done").expect("label exists"),
    ));
    m.set_reg(Reg::R5, KERNEL_SECRET);
    m.set_reg(Reg::R3, PROBE_BASE);
    m.clear_events();
    let start = m.cycle();
    m.run(&program)?;
    finish(m, SECRET, start)
}

/// Runs the full four-configuration §V-B experiment.
///
/// # Errors
///
/// Propagates [`AttackError`] from the simulations.
pub fn run_experiment() -> Result<InsufficiencyResult, AttackError> {
    let baseline_cfg = UarchConfig::default();
    let partial_cfg = UarchConfig::builder()
        .meltdown_fix_memory_path_only(true)
        .build();
    let full_cfg = UarchConfig::builder()
        .transient_forwarding(false)
        .mds_forwarding(false)
        .l1tf_forwarding(false)
        .build();
    Ok(InsufficiencyResult {
        baseline: run_meltdown_with_residency(&baseline_cfg, false)?,
        partial_blocks_baseline: run_meltdown_with_residency(&partial_cfg, false)?,
        partial_bypassed_via_cache: run_meltdown_with_residency(&partial_cfg, true)?,
        full_blocks_everything: run_meltdown_with_residency(&full_cfg, true)?,
    })
}

/// The graph-level version of the same argument: a Figure-4 graph with
/// *both* "Read from Memory" and "Read from Cache" access nodes. Patching
/// only the memory edge leaves the cache race; patching both secures it.
#[must_use]
pub fn graph_argument() -> (SecurityAnalysis, usize, usize) {
    let mut sa = SecurityAnalysis::new();
    let g = sa.graph_mut();
    let load = g.add_node("Load instruction", NodeKind::Compute);
    let check = g.add_node("Load Permission Check", NodeKind::Authorization);
    let mem = g.add_node(
        "Read from Memory",
        NodeKind::SecretAccess(SecretSource::Memory),
    );
    let cache = g.add_node(
        "Read from Cache",
        NodeKind::SecretAccess(SecretSource::Cache),
    );
    let send = g.add_node("Load R to Cache", NodeKind::Send);
    for (u, v) in [(load, check), (load, mem), (load, cache)] {
        g.add_edge(u, v, EdgeKind::Data).expect("acyclic");
    }
    for (u, v) in [(mem, send), (cache, send)] {
        g.add_edge(u, v, EdgeKind::Data).expect("acyclic");
    }
    sa.require(check, mem).expect("nodes exist");
    sa.require(check, cache).expect("nodes exist");
    let before = sa.vulnerabilities().expect("analyzable").len();
    // The "insufficient" patch: only the memory edge (the paper's ①).
    sa.graph_mut()
        .add_edge(check, mem, EdgeKind::Security)
        .expect("acyclic");
    let after_partial = sa.vulnerabilities().expect("analyzable").len();
    (sa, before, after_partial)
}

/// Demonstration attack wrapper so the experiment appears in catalogs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeltdownL1Hit;

impl Attack for MeltdownL1Hit {
    fn info(&self) -> attacks::AttackInfo {
        attacks::AttackInfo {
            name: "Meltdown + attacker-induced L1 hit",
            cve: None,
            impact: "Bypasses memory-path-only Meltdown defenses (§V-B)",
            authorization: "Kernel privilege check",
            illegal_access: "Read from cache",
            class: attacks::AttackClass::Meltdown,
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        graph_argument().0
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        run_meltdown_with_residency_in(m, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_s_insufficiency_story_holds() {
        let r = run_experiment().unwrap();
        assert!(r.baseline.leaked, "baseline Meltdown leaks");
        assert!(
            !r.partial_blocks_baseline.leaked,
            "partial fix blocks DRAM-resident secrets"
        );
        assert!(
            r.partial_bypassed_via_cache.leaked,
            "partial fix is bypassed when the secret hits in L1"
        );
        assert!(
            !r.full_blocks_everything.leaked,
            "ordering *every* datapath closes the hole"
        );
    }

    #[test]
    fn graph_argument_matches() {
        let (mut sa, before, after_partial) = graph_argument();
        assert_eq!(before, 2, "both datapaths race initially");
        assert_eq!(after_partial, 1, "the cache datapath still races");
        // Adding the second edge (the paper's ④) secures it.
        let check = sa.graph().find_by_label("Load Permission Check").unwrap();
        let cache = sa.graph().find_by_label("Read from Cache").unwrap();
        sa.graph_mut()
            .add_edge(check, cache, tsg::EdgeKind::Security)
            .unwrap();
        assert!(sa.is_secure().unwrap());
    }

    #[test]
    fn wrapper_attack_runs() {
        let out = MeltdownL1Hit.run(&UarchConfig::default()).unwrap();
        assert!(out.leaked);
        assert!(MeltdownL1Hit.info().name.contains("L1"));
        assert!(!MeltdownL1Hit.graph().is_secure().unwrap());
    }
}
