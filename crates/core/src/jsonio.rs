//! A minimal, dependency-free JSON reader for campaign persistence.
//!
//! The workspace builds fully offline (no `serde`), so the subset of JSON
//! that the campaign writers emit
//! ([`CampaignMatrix::to_json`](crate::campaign::CampaignMatrix::to_json),
//! [`CampaignPart::to_json`](crate::campaign::CampaignPart::to_json)) —
//! objects, arrays, strings, unsigned integers, booleans, `null` — is
//! parsed by hand here. This is a *reader for our own writers*: signed
//! numbers, floats and surrogate-pair escapes are rejected rather than
//! supported.
//!
//! Robustness guarantees, because matrix/part files cross process and
//! machine boundaries and may arrive truncated or hand-edited:
//!
//! * every malformed input returns a typed [`JsonError`] carrying the byte
//!   offset of the problem — parsing never panics;
//! * input that simply *ends early* — the signature of a checkpoint or
//!   part file a killed worker left half-written — is distinguished from
//!   malformed bytes by [`JsonErrorKind::Truncated`]
//!   ([`JsonError::is_truncated`]), so resume logic can safely redo a
//!   partially written range without masking real corruption;
//! * nesting depth is capped at [`MAX_DEPTH`], so a pathological
//!   `[[[[…` document errors out instead of overflowing the stack;
//! * numbers that do not fit `u64` are an error, not a wrap-around.
//!
//! ```
//! use specgraph::jsonio::{parse, Json};
//!
//! let doc = parse(r#"{"version": 3, "cells": [1, 2], "ok": true}"#)?;
//! assert_eq!(doc.get("version").and_then(Json::as_u64), Some(3));
//! assert_eq!(doc.get("cells").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
//! assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
//!
//! // Truncated or malformed input is a typed error, never a panic:
//! let err = parse(r#"{"version": 3, "cells": [1,"#).unwrap_err();
//! assert!(err.to_string().contains("byte"));
//! # Ok::<(), specgraph::jsonio::JsonError>(())
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Maximum nesting depth [`parse`] accepts before reporting an error.
///
/// The campaign writers emit at most three levels; the cap only exists so
/// adversarial input cannot overflow the parser's recursion.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value (the subset the campaign writers emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the writers emit).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted for deterministic lookups).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if `self` is an object that has one.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if `self` is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if `self` is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// What class of problem a [`JsonError`] reports.
///
/// The distinction matters operationally: a checkpoint or part file that a
/// killed worker left half-written parses to [`Truncated`](Self::Truncated)
/// — the document was well-formed up to the point where the input simply
/// stopped — and resume logic can safely re-run that range, while
/// [`Syntax`](Self::Syntax) means the bytes themselves are wrong (corrupt
/// or hand-edited) and should be surfaced, not silently redone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JsonErrorKind {
    /// The input contains bytes that can never start/continue valid JSON.
    Syntax,
    /// The input ended while a value, string, container, or literal was
    /// still open — the signature of a partially written file.
    Truncated,
}

/// A JSON syntax error: what went wrong, the byte offset where, and
/// whether the input was malformed or merely cut short
/// ([`JsonErrorKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    offset: usize,
    message: String,
    kind: JsonErrorKind,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
            kind: JsonErrorKind::Syntax,
        }
    }

    fn truncated(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
            kind: JsonErrorKind::Truncated,
        }
    }

    /// Byte offset into the input where the problem was detected.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether the input was malformed or merely ended early.
    #[must_use]
    pub fn kind(&self) -> JsonErrorKind {
        self.kind
    }

    /// `true` when the input ended mid-document (a partially written
    /// file), as opposed to containing malformed bytes.
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.kind == JsonErrorKind::Truncated
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JsonErrorKind::Syntax => write!(f, "{} at byte {}", self.message, self.offset),
            JsonErrorKind::Truncated => {
                write!(
                    f,
                    "truncated input at byte {}: {}",
                    self.offset, self.message
                )
            }
        }
    }
}

impl Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] (with byte offset) on any syntax problem, unsupported
/// construct (floats, signed numbers, surrogate escapes), number overflow,
/// or nesting deeper than [`MAX_DEPTH`]. Never panics.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(pos, "trailing data"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    match b.get(*pos) {
        Some(&c) if c == ch => {
            *pos += 1;
            Ok(())
        }
        Some(_) => Err(JsonError::new(
            *pos,
            format!("expected '{}'", char::from(ch)),
        )),
        None => Err(JsonError::truncated(
            *pos,
            format!("expected '{}'", char::from(ch)),
        )),
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::new(
            *pos,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError::truncated(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'0'..=b'9') => parse_number(b, pos),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(&c) => Err(JsonError::new(
            *pos,
            format!("unexpected '{}'", char::from(c)),
        )),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    let rest = &b[*pos..];
    if rest.starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else if lit.as_bytes().starts_with(rest) {
        // A proper prefix of the literal, cut off by end of input.
        Err(JsonError::truncated(*pos, "bad literal"))
    } else {
        Err(JsonError::new(*pos, "bad literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
        return Err(JsonError::new(
            start,
            "only unsigned integers are supported",
        ));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| JsonError::new(start, e.to_string()))?
        .parse::<u64>()
        .map(Json::Num)
        .map_err(|e| JsonError::new(start, format!("bad number: {e}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err(JsonError::truncated(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| JsonError::new(*pos, e.to_string()));
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b
                    .get(*pos)
                    .ok_or_else(|| JsonError::truncated(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| JsonError::truncated(*pos, "truncated \\u escape"))?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|e| JsonError::new(*pos, e.to_string()))?,
                            16,
                        )
                        .map_err(|e| JsonError::new(*pos, e.to_string()))?;
                        let ch = char::from_u32(code).ok_or_else(|| {
                            JsonError::new(*pos, "surrogate \\u escapes not supported")
                        })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => {
                        return Err(JsonError::new(
                            *pos,
                            format!("bad escape '\\{}'", char::from(other)),
                        ));
                    }
                }
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            Some(_) => return Err(JsonError::new(*pos, "expected ',' or ']'")),
            None => return Err(JsonError::truncated(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            Some(_) => return Err(JsonError::new(*pos, "expected ',' or '}'")),
            None => return Err(JsonError::truncated(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_subset() {
        let doc = r#"{"a": [1, 2, 3], "s": "x\"y\\z\n", "t": true, "n": null, "o": {"k": 7}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::Num(1), Json::Num(2), Json::Num(3)]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap(), &Json::Null);
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn empty_containers_and_unicode_escapes() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse(r#""\u0007""#).unwrap(), Json::Str("\u{7}".to_owned()));
        assert_eq!(parse("  42  ").unwrap(), Json::Num(42));
    }

    #[test]
    fn rejects_what_the_writer_never_emits() {
        assert!(parse("-1").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
        assert!(parse("[1] tail").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.message().contains("unexpected 'x'"));
        assert_eq!(err.to_string(), "unexpected 'x' at byte 4");
    }

    #[test]
    fn truncated_documents_are_errors_not_panics() {
        for doc in [
            "",
            "{",
            "[",
            "[1",
            "[1,",
            "{\"a\"",
            "{\"a\":",
            "{\"a\": 1",
            "\"abc",
            "\"abc\\",
            "\"abc\\u00",
            "tru",
        ] {
            let err = parse(doc).unwrap_err();
            assert!(
                err.is_truncated(),
                "truncated {doc:?} must report Truncated, got {err}"
            );
            assert_eq!(err.kind(), JsonErrorKind::Truncated);
            assert!(err.offset() <= doc.len());
            assert!(err.to_string().starts_with("truncated input at byte"));
        }
    }

    #[test]
    fn every_prefix_of_a_document_reports_truncated() {
        // The resume path's contract: however far into a document the
        // write got before the worker died, the reader answers Truncated
        // (never Syntax, never success — except prefixes that happen to
        // close the top-level object, which only full length does).
        let doc = r#"{"version": 5, "cells": [{"a": "x,\"yA"}, null, true], "n": 12}"#;
        for cut in 0..doc.len() {
            let err = parse(&doc[..cut]).unwrap_err();
            assert!(
                err.is_truncated(),
                "prefix of {cut} bytes gave {err} (kind {:?})",
                err.kind()
            );
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn malformed_bytes_are_syntax_not_truncated() {
        for doc in ["[1, x]", "{\"a\"}", "[1,]", "1.5", "-1", r#""\q""#, "nope"] {
            let err = parse(doc).unwrap_err();
            assert_eq!(err.kind(), JsonErrorKind::Syntax, "{doc:?} gave {err}");
            assert!(!err.is_truncated());
        }
    }

    #[test]
    fn number_overflow_is_an_error() {
        // u64::MAX is 18446744073709551615; one more digit must not wrap.
        assert_eq!(parse("18446744073709551615").unwrap(), Json::Num(u64::MAX));
        assert!(parse("184467440737095516150").is_err());
    }

    #[test]
    fn nesting_depth_is_capped() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).unwrap_err();
        assert!(err.message().contains("nesting"));
        // A pathological unclosed prefix must also error, not overflow.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"k\":".repeat(100_000)).is_err());
    }
}
