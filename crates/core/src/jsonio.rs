//! A minimal JSON reader for campaign-matrix persistence.
//!
//! The workspace builds fully offline (no `serde`), so the subset of JSON
//! that [`CampaignMatrix::to_json`](crate::campaign::CampaignMatrix::to_json)
//! emits — objects, arrays, strings, unsigned integers, booleans, `null` —
//! is parsed by hand here. This is a *reader for our own writer*: signed
//! numbers, floats and surrogate-pair escapes are rejected rather than
//! supported.

use std::collections::BTreeMap;

/// A parsed JSON value (the subset the campaign writer emits).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the writer emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted for deterministic lookups).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}",
            char::from(ch),
            pos = *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'0'..=b'9') => parse_number(b, pos),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(&c) => Err(format!(
            "unexpected '{}' at byte {pos}",
            char::from(c),
            pos = *pos
        )),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
        return Err(format!("only unsigned integers supported (byte {start})"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<u64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        let ch =
                            char::from_u32(code).ok_or("surrogate \\u escapes not supported")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => {
                        return Err(format!("bad escape '\\{}'", char::from(other)));
                    }
                }
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_subset() {
        let doc = r#"{"a": [1, 2, 3], "s": "x\"y\\z\n", "t": true, "n": null, "o": {"k": 7}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::Num(1), Json::Num(2), Json::Num(3)]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap(), &Json::Null);
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn empty_containers_and_unicode_escapes() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse(r#""\u0007""#).unwrap(), Json::Str("\u{7}".to_owned()));
        assert_eq!(parse("  42  ").unwrap(), Json::Num(42));
    }

    #[test]
    fn rejects_what_the_writer_never_emits() {
        assert!(parse("-1").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
        assert!(parse("[1] tail").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse(r#""\ud800""#).is_err());
    }
}
