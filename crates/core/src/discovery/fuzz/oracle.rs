//! The differential oracle: every candidate is judged twice — by
//! Theorem 1 over its lifted graph (via a warm
//! [`defenses::PatchSession`]) and by end-to-end simulation (via a warm
//! [`attacks::common::BatchRunner`]) — and the two verdicts are compared.
//!
//! Agreement in either direction is evidence the models line up;
//! divergence is a first-class finding. Each divergence is *classified*:
//! the fuzzer knows which mutations are expected to fool which oracle
//! (a dead value or fence silences the simulation but not the graph; a
//! launder or implicit flow evades register dataflow but still leaks on
//! hardware), and anything it cannot explain is reported as
//! [`MissedLeakCause::Unexplained`]/[`FalseSenseCause::Unexplained`] —
//! which the test suite asserts never happens.

use super::gen::{layout, ChannelDim, DelayDim, Mutation, Scenario, SourceDim};
use super::FuzzError;
use attacks::common::{self, BatchRunner};
use attacks::{Attack, AttackClass, AttackError, AttackInfo, AttackOutcome};
use channels::prime_probe::PrimeProbe;
use defenses::PatchSession;
use isa::{Program, ProgramBuilder, Reg};
use tsg::SecurityAnalysis;
use uarch::{ExceptionBehavior, Machine, Privilege, TraceEvent, UarchConfig};

/// Why the graph predicts a leak the simulation does not reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissedLeakCause {
    /// A [`Mutation::DeadValue`] zeroed the secret before the send:
    /// taint tracking keeps the dependence, the value is gone.
    DeadValue,
    /// A [`Mutation::FencedSend`] stalls the send past resolution: the
    /// graph race (authorization vs. *access*) is untouched.
    FencedSend,
    /// No mutation explains it — a genuine model gap. Tests fail on it.
    Unexplained,
}

/// Why the simulation leaks where the graph predicts safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FalseSenseCause {
    /// A [`Mutation::Launder`] broke register-level taint through
    /// memory; the hardware value survives the round-trip.
    Launder,
    /// A [`Mutation::ImplicitFlow`] carries the secret on control flow;
    /// there is no address-dependent send for the analyzer to find.
    ImplicitFlow,
    /// No mutation explains it — a genuine model gap. Tests fail on it.
    Unexplained,
}

/// The comparison of the two oracles' verdicts on one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agreement {
    /// Both predict a leak.
    AgreeLeak,
    /// Both predict safety.
    AgreeSafe,
    /// Theorem 1 races, the simulation stays clean: the *simulation*
    /// missed the predicted leak.
    MissedLeak(MissedLeakCause),
    /// Theorem 1 sees no race, the simulation leaks: the *graph* gives a
    /// false sense of security.
    FalseSense(FalseSenseCause),
}

impl Agreement {
    /// Stable corpus tag for the bucket.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Agreement::AgreeLeak => "agree-leak",
            Agreement::AgreeSafe => "agree-safe",
            Agreement::MissedLeak(MissedLeakCause::DeadValue) => "missed-leak/dead-value",
            Agreement::MissedLeak(MissedLeakCause::FencedSend) => "missed-leak/fenced-send",
            Agreement::MissedLeak(MissedLeakCause::Unexplained) => "missed-leak/unexplained",
            Agreement::FalseSense(FalseSenseCause::Launder) => "false-sense/launder",
            Agreement::FalseSense(FalseSenseCause::ImplicitFlow) => "false-sense/implicit-flow",
            Agreement::FalseSense(FalseSenseCause::Unexplained) => "false-sense/unexplained",
        }
    }

    /// Parses an [`Agreement::tag`] back.
    #[must_use]
    pub fn from_tag(t: &str) -> Option<Agreement> {
        Some(match t {
            "agree-leak" => Agreement::AgreeLeak,
            "agree-safe" => Agreement::AgreeSafe,
            "missed-leak/dead-value" => Agreement::MissedLeak(MissedLeakCause::DeadValue),
            "missed-leak/fenced-send" => Agreement::MissedLeak(MissedLeakCause::FencedSend),
            "missed-leak/unexplained" => Agreement::MissedLeak(MissedLeakCause::Unexplained),
            "false-sense/launder" => Agreement::FalseSense(FalseSenseCause::Launder),
            "false-sense/implicit-flow" => Agreement::FalseSense(FalseSenseCause::ImplicitFlow),
            "false-sense/unexplained" => Agreement::FalseSense(FalseSenseCause::Unexplained),
            _ => return None,
        })
    }

    /// Whether this is a divergence the classifier could not explain.
    #[must_use]
    pub fn is_unexplained(&self) -> bool {
        matches!(
            self,
            Agreement::MissedLeak(MissedLeakCause::Unexplained)
                | Agreement::FalseSense(FalseSenseCause::Unexplained)
        )
    }
}

/// Both oracles' verdicts on one scenario, plus the lifted shape.
#[derive(Debug, Clone)]
pub struct Verdicts {
    /// Canonical fingerprint of the lifted graph (pre-minimization).
    pub raw_fingerprint: u64,
    /// Theorem 1 on the lifted graph: authorization races secret access.
    pub graph_leak: bool,
    /// The simulation leaked *transiently* (recovered the secret with at
    /// least one squash, i.e. not through an architectural path).
    pub sim_leak: bool,
    /// The raw simulation outcome.
    pub outcome: AttackOutcome,
}

impl Verdicts {
    /// Classifies the verdict pair against the scenario's mutation list.
    #[must_use]
    pub fn agreement(&self, scenario: &Scenario) -> Agreement {
        classify_agreement(self.graph_leak, self.sim_leak, &scenario.mutations)
    }
}

/// The pure classification rule: verdict pair × mutation tags → bucket.
/// Mutations are checked in priority order — the strongest suppressor of
/// each oracle wins (a dead value silences the simulation even when a
/// launder is also present).
#[must_use]
pub fn classify_agreement(graph_leak: bool, sim_leak: bool, mutations: &[Mutation]) -> Agreement {
    match (graph_leak, sim_leak) {
        (true, true) => Agreement::AgreeLeak,
        (false, false) => Agreement::AgreeSafe,
        (true, false) => Agreement::MissedLeak(if mutations.contains(&Mutation::DeadValue) {
            MissedLeakCause::DeadValue
        } else if mutations.contains(&Mutation::FencedSend) {
            MissedLeakCause::FencedSend
        } else {
            MissedLeakCause::Unexplained
        }),
        (false, true) => Agreement::FalseSense(if mutations.contains(&Mutation::ImplicitFlow) {
            FalseSenseCause::ImplicitFlow
        } else if mutations.contains(&Mutation::Launder) {
            FalseSenseCause::Launder
        } else {
            FalseSenseCause::Unexplained
        }),
    }
}

/// The dual classifier: one warm pooled machine for the simulation side,
/// one lift-and-index per candidate for the graph side.
#[derive(Debug, Default)]
pub struct DualOracle {
    runner: BatchRunner,
    cfg: UarchConfig,
}

impl DualOracle {
    /// An oracle over the default micro-architecture.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs both oracles on `scenario`.
    ///
    /// # Errors
    ///
    /// [`FuzzError`] if the lift or the simulation rejects the program —
    /// generated candidates never do; shrink candidates may, and the
    /// shrinker treats an error as "mutation rejected".
    pub fn classify(&mut self, scenario: &Scenario) -> Result<Verdicts, FuzzError> {
        let analysis = analyzer::lift(&scenario.program, &scenario.lift_config())?;
        let raw_fingerprint = analysis.graph().shape_fingerprint();
        let graph_leak = PatchSession::from_analysis(analysis).graph_race();
        let outcome = self.runner.run(scenario, &self.cfg)?;
        let sim_leak = outcome.leaked && outcome.squashes > 0;
        Ok(Verdicts {
            raw_fingerprint,
            graph_leak,
            sim_leak,
            outcome,
        })
    }
}

impl Attack for Scenario {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: "Synthesized scenario",
            cve: None,
            impact: "Fuzzer-composed transient leak candidate",
            authorization: match self.combo.delay {
                DelayDim::ConditionalBranch => "Conditional branch resolution",
                DelayDim::IndirectBranch => "Indirect branch target resolution",
                DelayDim::ReturnAddress => "Return target resolution",
                DelayDim::DelayedException => "Access permission check",
            },
            illegal_access: match self.combo.source {
                SourceDim::ArchitecturalMemory => "Read out-of-reach architectural memory",
                SourceDim::KernelMemory => "Read from kernel memory",
                SourceDim::SpecialRegister => "Read system register",
            },
            class: if self.combo.source == SourceDim::ArchitecturalMemory {
                AttackClass::Spectre
            } else {
                AttackClass::Meltdown
            },
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        analyzer::lift(&self.program, &self.lift_config()).expect("valid programs always lift")
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        drive(self, m)
    }
}

/// The covert-channel half of the driver, dispatching on dimension 3.
struct ChannelDriver {
    channel: ChannelDim,
}

impl ChannelDriver {
    fn new(channel: ChannelDim) -> Self {
        ChannelDriver { channel }
    }

    /// The base address the gadget's `r3` must hold.
    fn base(&self) -> u64 {
        match self.channel {
            ChannelDim::FlushReload => layout::PROBE_BASE,
            ChannelDim::PrimeProbe => layout::SENDER_BASE,
        }
    }

    fn receiver(&self) -> PrimeProbe {
        PrimeProbe::with_base_set(layout::PRIME_BASE, layout::PP_SYMBOLS, layout::PP_BASE_SET)
    }

    /// Maps whatever sender-side memory the channel needs.
    fn map(&self, m: &mut Machine) -> Result<(), AttackError> {
        if self.channel == ChannelDim::PrimeProbe {
            m.map_user_page(layout::SENDER_BASE)?;
        }
        Ok(())
    }

    /// (Re-)establishes the receiver right before the attack run —
    /// training runs execute the send architecturally and would otherwise
    /// pollute the measurement.
    fn pre_attack(&self, m: &mut Machine) -> Result<(), AttackError> {
        match self.channel {
            ChannelDim::FlushReload => common::prepare_channel(m),
            ChannelDim::PrimeProbe => {
                self.receiver().prime(m)?;
                Ok(())
            }
        }
    }

    /// Receives and builds the outcome.
    fn finish(
        &self,
        m: &mut Machine,
        secret: u64,
        start_cycle: u64,
    ) -> Result<AttackOutcome, AttackError> {
        match self.channel {
            ChannelDim::FlushReload => common::finish(m, secret, start_cycle),
            ChannelDim::PrimeProbe => {
                let reading = self.receiver().probe(m)?;
                let recovered = reading.recovered.map(|s| s as u64);
                let mut transient_forwards = 0;
                let mut squashes = 0;
                let mut defense_blocks = 0;
                for e in m.events() {
                    match e {
                        TraceEvent::TransientForward { .. } => transient_forwards += 1,
                        TraceEvent::Squash { .. } => squashes += 1,
                        TraceEvent::DefenseBlocked { .. } => defense_blocks += 1,
                        _ => {}
                    }
                }
                Ok(AttackOutcome {
                    secret,
                    recovered,
                    leaked: recovered == Some(secret),
                    transient_forwards,
                    squashes,
                    defense_blocks,
                    cycles: m.cycle() - start_cycle,
                })
            }
        }
    }
}

/// Where the secret was planted and what `r5` must hold in each phase.
struct SourcePlan {
    /// `r5` during training runs (a legal address / unused).
    train_r5: u64,
    /// `r5` during the attack run (the out-of-reach address / unused).
    attack_r5: u64,
    /// Whether the victim runs unprivileged with an exception handler.
    privileged: bool,
}

/// Maps and plants the secret for dimension 1. Must run while the machine
/// is still privileged (the kernel plant needs it).
fn plant_source(s: &Scenario, m: &mut Machine) -> Result<SourcePlan, AttackError> {
    let secret = s.secret_value();
    match s.combo.source {
        SourceDim::ArchitecturalMemory if s.combo.delay == DelayDim::ConditionalBranch => {
            // The indexed (bounds-check bypass) shape: secret out of
            // bounds, in-bounds words non-zero for training.
            m.map_user_page(layout::VICTIM_ARRAY)?;
            m.write_u64(layout::VICTIM_ARRAY + layout::OOB_INDEX * 8, secret)?;
            for i in 0..layout::BOUND {
                m.write_u64(layout::VICTIM_ARRAY + i * 8, 1)?;
            }
            Ok(SourcePlan {
                train_r5: 0,
                attack_r5: 0,
                privileged: false,
            })
        }
        SourceDim::ArchitecturalMemory => {
            // Direct load of a victim-private cell.
            m.map_user_page(layout::VICTIM_SECRET)?;
            m.write_u64(layout::VICTIM_SECRET, secret)?;
            Ok(SourcePlan {
                train_r5: layout::VICTIM_SECRET,
                attack_r5: layout::VICTIM_SECRET,
                privileged: false,
            })
        }
        SourceDim::KernelMemory => {
            m.map_kernel_page(layout::KERNEL_SECRET)?;
            m.write_u64(layout::KERNEL_SECRET, secret)?;
            // Legal training cell, non-zero so the send guard is trained.
            m.write_u64(layout::USER_SCRATCH, 1)?;
            Ok(SourcePlan {
                train_r5: layout::USER_SCRATCH,
                attack_r5: layout::KERNEL_SECRET,
                privileged: true,
            })
        }
        SourceDim::SpecialRegister => {
            m.set_msr(layout::TARGET_MSR, secret);
            Ok(SourcePlan {
                train_r5: 0,
                attack_r5: 0,
                privileged: true,
            })
        }
    }
}

/// Register file for one victim run. `r12`/`r13` feed the implicit-flow
/// epilogue and are harmless otherwise.
fn set_victim_regs(m: &mut Machine, chan_base: u64, r0: u64, r5: u64, secret: u64) {
    m.set_reg(Reg::R0, r0);
    m.set_reg(Reg::R1, layout::VICTIM_ARRAY);
    m.set_reg(Reg::R2, layout::BOUND_PTR);
    m.set_reg(Reg::R3, chan_base);
    m.set_reg(Reg::R5, r5);
    m.set_reg(Reg::R9, layout::TARGET_PTR);
    m.set_reg(Reg::R10, layout::USER_SCRATCH + 0x200);
    m.set_reg(Reg::R12, secret);
    m.set_reg(Reg::R13, layout::PROBE_BASE + secret * layout::PROBE_STRIDE);
}

/// Runs the scenario end-to-end on a prepared machine — the `run_in`
/// body, dispatching the delay-family driver.
fn drive(s: &Scenario, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
    let chan = ChannelDriver::new(s.combo.channel);
    let secret = s.secret_value();
    m.map_user_page(layout::USER_SCRATCH)?;
    chan.map(m)?;
    let out_pc = s.program.label("out").unwrap_or(s.program.len() - 1);
    match s.combo.delay {
        DelayDim::ConditionalBranch => {
            m.map_user_page(layout::BOUND_PTR)?;
            m.write_u64(layout::BOUND_PTR, layout::BOUND_CELL)?;
            m.write_u64(layout::BOUND_CELL, layout::BOUND)?;
            let plan = plant_source(s, m)?;
            if plan.privileged {
                m.set_privilege(Privilege::User);
                m.set_exception_behavior(ExceptionBehavior::Handler(out_pc));
            }
            // Train the bounds check in-bounds.
            for i in 0..4 {
                set_victim_regs(m, chan.base(), i % layout::BOUND, plan.train_r5, secret);
                m.run(&s.program)?;
            }
            // Attack: delayed authorization + out-of-bounds index.
            m.flush_line(layout::BOUND_PTR)?;
            m.flush_line(layout::BOUND_CELL)?;
            chan.pre_attack(m)?;
            m.clear_events();
            set_victim_regs(m, chan.base(), layout::OOB_INDEX, plan.attack_r5, secret);
            let start = m.cycle();
            m.run(&s.program)?;
            chan.finish(m, secret, start)
        }
        DelayDim::IndirectBranch => {
            m.map_user_page(layout::TARGET_PTR)?;
            m.map_user_page(layout::TARGET_CELL)?;
            m.write_u64(layout::TARGET_PTR, layout::TARGET_CELL)?;
            let plan = plant_source(s, m)?;
            if plan.privileged {
                m.set_privilege(Privilege::User);
                m.set_exception_behavior(ExceptionBehavior::Handler(out_pc));
            }
            // Train the BTB onto the gadget (legal r5 keeps it benign).
            m.write_u64(layout::TARGET_CELL, s.gadget_pc as u64)?;
            for _ in 0..3 {
                set_victim_regs(m, chan.base(), 0, plan.train_r5, secret);
                m.run(&s.program)?;
            }
            // Attack: benign architectural target, stale prediction,
            // delayed resolution via the flushed target chain.
            m.write_u64(layout::TARGET_CELL, s.benign_pc as u64)?;
            m.flush_line(layout::TARGET_PTR)?;
            m.flush_line(layout::TARGET_CELL)?;
            chan.pre_attack(m)?;
            m.clear_events();
            set_victim_regs(m, chan.base(), 0, plan.attack_r5, secret);
            let start = m.cycle();
            m.run(&s.program)?;
            chan.finish(m, secret, start)
        }
        DelayDim::ReturnAddress => {
            if s.gadget_pc == 0 {
                // A shrink candidate deleted the whole prologue: there is
                // no call site to pollute the RSB from.
                return Err(AttackError::Isa(isa::IsaError::TargetOutOfRange {
                    target: 0,
                    len: 0,
                }));
            }
            m.map_user_page(layout::DELAY_CELL)?;
            let plan = plant_source(s, m)?;
            let behavior = if plan.privileged {
                ExceptionBehavior::Handler(out_pc)
            } else {
                ExceptionBehavior::Halt
            };
            let victim_ctx = m.add_context(Privilege::User, behavior);
            // Attacker pollutes the RSB with the gadget pc and yields.
            m.run(&attacker_binary(s.gadget_pc)?)?;
            chan.pre_attack(m)?;
            let attacker_ctx = m.current_context();
            // Victim: slow delay load, then a `ret` predicted from the
            // stale RSB entry.
            m.switch_context(victim_ctx)?;
            m.flush_line(layout::DELAY_CELL)?;
            if s.combo.source == SourceDim::ArchitecturalMemory {
                m.touch(layout::VICTIM_SECRET)?;
            }
            m.clear_events();
            set_victim_regs(m, chan.base(), 0, plan.attack_r5, secret);
            m.set_reg(Reg::R2, layout::DELAY_CELL);
            let start = m.cycle();
            m.run(&s.program)?;
            m.switch_context(attacker_ctx)?;
            chan.finish(m, secret, start)
        }
        DelayDim::DelayedException => {
            let plan = plant_source(s, m)?;
            m.set_privilege(Privilege::User);
            m.set_exception_behavior(ExceptionBehavior::Handler(out_pc));
            chan.pre_attack(m)?;
            m.clear_events();
            set_victim_regs(m, chan.base(), 0, plan.attack_r5, secret);
            let start = m.cycle();
            m.run(&s.program)?;
            chan.finish(m, secret, start)
        }
    }
}

/// The return-family attacker: a `call` at `gadget_pc - 1` pushes
/// `gadget_pc` onto the RSB; the callee exits without returning, leaving
/// the entry stale for the victim's `ret`.
fn attacker_binary(gadget_pc: usize) -> Result<Program, AttackError> {
    let mut b = ProgramBuilder::new();
    for _ in 0..gadget_pc - 1 {
        b = b.nop();
    }
    Ok(b.call("f").halt().label("f")?.halt().build()?)
}

#[cfg(test)]
mod tests {
    use super::super::gen::Combo;
    use super::*;

    fn combo(source: SourceDim, delay: DelayDim, channel: ChannelDim) -> Combo {
        Combo {
            source,
            delay,
            channel,
        }
    }

    #[test]
    fn every_identity_combo_agrees_on_leak() {
        let mut oracle = DualOracle::new();
        for c in Combo::all() {
            let s = Scenario::template(c);
            let v = oracle.classify(&s).unwrap();
            assert_eq!(
                v.agreement(&s),
                Agreement::AgreeLeak,
                "{}: graph={} sim={} outcome={:?}",
                c.label(),
                v.graph_leak,
                v.sim_leak,
                v.outcome
            );
        }
    }

    #[test]
    fn known_combos_reproduce_catalog_outcomes() {
        let mut oracle = DualOracle::new();
        let c = combo(
            SourceDim::ArchitecturalMemory,
            DelayDim::ConditionalBranch,
            ChannelDim::FlushReload,
        );
        let v = oracle.classify(&Scenario::template(c)).unwrap();
        assert!(v.sim_leak && v.graph_leak);
        assert_eq!(v.outcome.recovered, Some(layout::FR_SECRET));
    }

    #[test]
    fn divergence_mutations_classify_as_designed() {
        let mut oracle = DualOracle::new();
        let base = combo(
            SourceDim::ArchitecturalMemory,
            DelayDim::ConditionalBranch,
            ChannelDim::FlushReload,
        );
        for (mutations, want) in [
            (
                vec![Mutation::DeadValue],
                Agreement::MissedLeak(MissedLeakCause::DeadValue),
            ),
            (
                vec![Mutation::FencedSend],
                Agreement::MissedLeak(MissedLeakCause::FencedSend),
            ),
            (
                vec![Mutation::ImplicitFlow],
                Agreement::FalseSense(FalseSenseCause::ImplicitFlow),
            ),
        ] {
            let s = Scenario::compose(base, mutations.clone());
            let v = oracle.classify(&s).unwrap();
            assert_eq!(v.agreement(&s), want, "{mutations:?}: {v:?}");
        }
    }

    #[test]
    fn leak_preserving_mutations_keep_agreement() {
        let mut oracle = DualOracle::new();
        let base = combo(
            SourceDim::KernelMemory,
            DelayDim::DelayedException,
            ChannelDim::FlushReload,
        );
        for mutations in [vec![Mutation::NopPad], vec![Mutation::ExtendTransform]] {
            let s = Scenario::compose(base, mutations.clone());
            let v = oracle.classify(&s).unwrap();
            assert!(!v.agreement(&s).is_unexplained(), "{mutations:?}: {v:?}");
            assert!(v.sim_leak, "{mutations:?} must keep the sim leak: {v:?}");
        }
    }

    #[test]
    fn agreement_tags_round_trip() {
        for a in [
            Agreement::AgreeLeak,
            Agreement::AgreeSafe,
            Agreement::MissedLeak(MissedLeakCause::DeadValue),
            Agreement::MissedLeak(MissedLeakCause::FencedSend),
            Agreement::MissedLeak(MissedLeakCause::Unexplained),
            Agreement::FalseSense(FalseSenseCause::Launder),
            Agreement::FalseSense(FalseSenseCause::ImplicitFlow),
            Agreement::FalseSense(FalseSenseCause::Unexplained),
        ] {
            assert_eq!(Agreement::from_tag(a.tag()), Some(a));
        }
    }
}
