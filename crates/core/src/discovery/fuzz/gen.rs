//! The seeded scenario generator: free composition over §V-A's three
//! dimensions plus biased mutation of the composed gadgets.
//!
//! A [`Scenario`] is an executable attack candidate: a victim program
//! whose *shape* is determined by a [`Combo`] — which micro-architectural
//! store the secret comes from, which hardware mechanism delays the
//! authorization, and which covert channel carries the stolen value out —
//! plus a list of [`Mutation`]s spliced in between the secret access and
//! the send. Five combos reproduce catalog attacks (Spectre v1/v2/RSB,
//! Meltdown, Spectre v3a); the rest of the space is where novel variants
//! and oracle divergences live.

use super::rng::{candidate_rng, FuzzRng};
use analyzer::AnalysisConfig;
use isa::{AluOp, Cond, FenceKind, Instruction, Msr, Operand, Program, ProgramBuilder, Reg};

/// Where the secret lives before the access steals it (dimension 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceDim {
    /// In-bounds-reachable memory of the victim's own address space.
    ArchitecturalMemory,
    /// A kernel page: the access itself needs a (delayed) privilege check.
    KernelMemory,
    /// A privileged machine register read with `rdmsr`.
    SpecialRegister,
}

/// Which hardware mechanism delays the authorization (dimension 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayDim {
    /// A mis-trained conditional branch over a flushed bound chain.
    ConditionalBranch,
    /// A mis-trained indirect branch (BTB) over a flushed target chain.
    IndirectBranch,
    /// A polluted return stack buffer under a slow `ret`.
    ReturnAddress,
    /// The access's own deferred exception (Meltdown-style); only valid
    /// for privileged sources.
    DelayedException,
}

/// Which covert channel carries the secret out (dimension 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelDim {
    /// Flush+Reload over a 256-slot probe array.
    FlushReload,
    /// Prime+Probe over 8 monitored cache sets (small secrets).
    PrimeProbe,
}

/// One point of the composed design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combo {
    /// Dimension 1: the secret's source.
    pub source: SourceDim,
    /// Dimension 2: the authorization delay.
    pub delay: DelayDim,
    /// Dimension 3: the covert channel.
    pub channel: ChannelDim,
}

impl Combo {
    /// Every *executable* combo, in a fixed enumeration order: a delayed
    /// exception needs a privileged source, everything else composes
    /// freely — 22 points.
    #[must_use]
    pub fn all() -> Vec<Combo> {
        let sources = [
            SourceDim::ArchitecturalMemory,
            SourceDim::KernelMemory,
            SourceDim::SpecialRegister,
        ];
        let delays = [
            DelayDim::ConditionalBranch,
            DelayDim::IndirectBranch,
            DelayDim::ReturnAddress,
            DelayDim::DelayedException,
        ];
        let channels = [ChannelDim::FlushReload, ChannelDim::PrimeProbe];
        let mut out = Vec::new();
        for source in sources {
            for delay in delays {
                for channel in channels {
                    let c = Combo {
                        source,
                        delay,
                        channel,
                    };
                    if c.is_executable() {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Whether the combo can be driven on the simulator: a delayed
    /// exception presupposes a privileged access.
    #[must_use]
    pub fn is_executable(&self) -> bool {
        self.delay != DelayDim::DelayedException || self.source != SourceDim::ArchitecturalMemory
    }

    /// The catalog attack this combo reproduces, if any: the five §V-A
    /// "occupied" points of the executable subspace.
    #[must_use]
    pub fn known_name(&self) -> Option<&'static str> {
        if self.channel != ChannelDim::FlushReload {
            return None;
        }
        match (self.source, self.delay) {
            (SourceDim::ArchitecturalMemory, DelayDim::ConditionalBranch) => {
                Some(attacks::names::SPECTRE_V1)
            }
            (SourceDim::ArchitecturalMemory, DelayDim::IndirectBranch) => {
                Some(attacks::names::SPECTRE_V2)
            }
            (SourceDim::ArchitecturalMemory, DelayDim::ReturnAddress) => {
                Some(attacks::names::SPECTRE_RSB)
            }
            (SourceDim::KernelMemory, DelayDim::DelayedException) => Some(attacks::names::MELTDOWN),
            (SourceDim::SpecialRegister, DelayDim::DelayedException) => {
                Some(attacks::names::SPECTRE_V3A)
            }
            _ => None,
        }
    }

    /// A stable `source/delay/channel` label for reports and the corpus.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            source_tag(self.source),
            delay_tag(self.delay),
            channel_tag(self.channel)
        )
    }

    /// Parses a [`Combo::label`] back.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Combo> {
        let mut it = label.split('/');
        let source = source_from_tag(it.next()?)?;
        let delay = delay_from_tag(it.next()?)?;
        let channel = channel_from_tag(it.next()?)?;
        if it.next().is_some() {
            return None;
        }
        Some(Combo {
            source,
            delay,
            channel,
        })
    }
}

pub(crate) fn source_tag(s: SourceDim) -> &'static str {
    match s {
        SourceDim::ArchitecturalMemory => "architectural-memory",
        SourceDim::KernelMemory => "kernel-memory",
        SourceDim::SpecialRegister => "special-register",
    }
}

pub(crate) fn delay_tag(d: DelayDim) -> &'static str {
    match d {
        DelayDim::ConditionalBranch => "conditional-branch",
        DelayDim::IndirectBranch => "indirect-branch",
        DelayDim::ReturnAddress => "return-address",
        DelayDim::DelayedException => "delayed-exception",
    }
}

pub(crate) fn channel_tag(c: ChannelDim) -> &'static str {
    match c {
        ChannelDim::FlushReload => "flush-reload",
        ChannelDim::PrimeProbe => "prime-probe",
    }
}

fn source_from_tag(t: &str) -> Option<SourceDim> {
    Some(match t {
        "architectural-memory" => SourceDim::ArchitecturalMemory,
        "kernel-memory" => SourceDim::KernelMemory,
        "special-register" => SourceDim::SpecialRegister,
        _ => return None,
    })
}

fn delay_from_tag(t: &str) -> Option<DelayDim> {
    Some(match t {
        "conditional-branch" => DelayDim::ConditionalBranch,
        "indirect-branch" => DelayDim::IndirectBranch,
        "return-address" => DelayDim::ReturnAddress,
        "delayed-exception" => DelayDim::DelayedException,
        _ => return None,
    })
}

fn channel_from_tag(t: &str) -> Option<ChannelDim> {
    Some(match t {
        "flush-reload" => ChannelDim::FlushReload,
        "prime-probe" => ChannelDim::PrimeProbe,
        _ => return None,
    })
}

/// A splice applied to the composed gadget between access and send. The
/// tag is the key the divergence classifier uses to explain Theorem-1-vs-
/// simulation disagreements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// A `nop` — leak-preserving padding (shrinks away).
    NopPad,
    /// An identity transform on the stolen value (`or r6, r6, zero`).
    ExtendTransform,
    /// Launder the stolen value through memory (`store r6; load r6`):
    /// breaks register-level taint without breaking the leak.
    Launder,
    /// Zero the stolen value (`and r6, r6, 0`): the simulator's leak
    /// dies, the graph race does not — an expected `missed_leak`.
    DeadValue,
    /// An `lfence` between access and send: the simulated send stalls
    /// until the authorization resolves — an expected `missed_leak`.
    FencedSend,
    /// Replace the address-dependent send with secret-dependent *control
    /// flow* into a fixed-address load: invisible to register dataflow —
    /// the expected `false_sense` divergence.
    ImplicitFlow,
}

impl Mutation {
    /// Stable corpus tag.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Mutation::NopPad => "nop-pad",
            Mutation::ExtendTransform => "extend-transform",
            Mutation::Launder => "launder",
            Mutation::DeadValue => "dead-value",
            Mutation::FencedSend => "fenced-send",
            Mutation::ImplicitFlow => "implicit-flow",
        }
    }

    /// Parses a [`Mutation::tag`] back.
    #[must_use]
    pub fn from_tag(t: &str) -> Option<Mutation> {
        Some(match t {
            "nop-pad" => Mutation::NopPad,
            "extend-transform" => Mutation::ExtendTransform,
            "launder" => Mutation::Launder,
            "dead-value" => Mutation::DeadValue,
            "fenced-send" => Mutation::FencedSend,
            "implicit-flow" => Mutation::ImplicitFlow,
            _ => return None,
        })
    }
}

/// Shared memory layout of every generated driver. The probe-array and
/// window constants reuse `attacks::common`; the rest live on pages no
/// catalog PoC maps.
pub mod layout {
    /// In-bounds victim array for the indexed (Spectre-v1-style) access.
    pub const VICTIM_ARRAY: u64 = attacks::common::VICTIM_ARRAY;
    /// First hop of the flushed bound chain (the speculation window).
    pub const BOUND_PTR: u64 = attacks::common::BOUND_PTR;
    /// Second hop of the bound chain.
    pub const BOUND_CELL: u64 = attacks::common::BOUND_CELL;
    /// In-bounds length of the victim array, in words.
    pub const BOUND: u64 = 8;
    /// Out-of-bounds index whose word holds the planted secret.
    pub const OOB_INDEX: u64 = 64;
    /// Kernel page holding the privileged secret.
    pub const KERNEL_SECRET: u64 = attacks::common::KERNEL_SECRET;
    /// Scratch user page: legal training source and launder target.
    pub const USER_SCRATCH: u64 = attacks::common::USER_SCRATCH;
    /// Victim-private user page for the direct-load (v2/RSB-style) access.
    pub const VICTIM_SECRET: u64 = 0x5A_0000;
    /// Flushed cell whose load delays the victim's `ret`.
    pub const DELAY_CELL: u64 = 0x5B_0000;
    /// Pointer cell naming the indirect branch's target cell.
    pub const TARGET_PTR: u64 = 0x51_0000;
    /// Cell holding the indirect branch target.
    pub const TARGET_CELL: u64 = 0x51_1000;
    /// Flush+Reload probe array base.
    pub const PROBE_BASE: u64 = attacks::common::PROBE_BASE;
    /// Flush+Reload slot stride.
    pub const PROBE_STRIDE: u64 = attacks::common::PROBE_STRIDE;
    /// Prime+Probe receiver buffer.
    pub const PRIME_BASE: u64 = 0x200_0000;
    /// Prime+Probe sender buffer.
    pub const SENDER_BASE: u64 = 0x300_0000;
    /// First monitored cache set (clear of the victim's own lines).
    pub const PP_BASE_SET: usize = 16;
    /// Monitored set count = Prime+Probe symbol space.
    pub const PP_SYMBOLS: usize = 8;
    /// The planted secret for Flush+Reload scenarios.
    pub const FR_SECRET: u64 = attacks::common::SECRET;
    /// The planted secret for Prime+Probe scenarios (must index a set).
    pub const PP_SECRET: u64 = 5;
    /// The MSR the special-register scenarios steal.
    pub const TARGET_MSR: u32 = 0x10;
}

/// An executable attack candidate: a combo-shaped victim program plus the
/// mutations spliced into it, with the pcs the driver needs to steer
/// training and mis-prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The design-space point this candidate instantiates.
    pub combo: Combo,
    /// Splices applied between access and send, in application order.
    pub mutations: Vec<Mutation>,
    /// The victim program (the gadget-bearing binary).
    pub program: Program,
    /// The pc of the instruction that moves the secret into `r6`.
    pub access_pc: usize,
    /// Where mis-prediction must land: the gadget's first pc
    /// (indirect/return families; equals `access_pc` here).
    pub gadget_pc: usize,
    /// The architecturally-correct target of the attack run (indirect
    /// family: the benign halt).
    pub benign_pc: usize,
}

impl Scenario {
    /// The identity (mutation-free) instance of `combo` — the template
    /// whose lifted fingerprint defines the combo's canonical shape.
    #[must_use]
    pub fn template(combo: Combo) -> Scenario {
        Scenario::compose(combo, Vec::new())
    }

    /// The candidate at `(seed, index)`: a pure function of the pair.
    #[must_use]
    pub fn generate(seed: u64, index: u64) -> Scenario {
        let mut rng = candidate_rng(seed, index);
        let combos = Combo::all();
        let combo = combos[rng.below(combos.len() as u64) as usize];
        let mutations = draw_mutations(&mut rng, combo);
        Scenario::compose(combo, mutations)
    }

    /// Builds the program for `combo` with `mutations` applied.
    ///
    /// # Panics
    ///
    /// Never for executable combos; the program shapes are fixed and the
    /// splice points always valid.
    #[must_use]
    pub fn compose(combo: Combo, mutations: Vec<Mutation>) -> Scenario {
        assert!(
            combo.is_executable(),
            "unexecutable combo {}",
            combo.label()
        );
        let implicit = mutations.contains(&Mutation::ImplicitFlow);
        let (program, access_pc, gadget_pc, benign_pc) = build_program(combo, implicit);
        let mut s = Scenario {
            combo,
            mutations,
            program,
            access_pc,
            gadget_pc,
            benign_pc,
        };
        for m in s.mutations.clone() {
            s.apply(m);
        }
        s
    }

    /// The value the driver plants as the secret.
    #[must_use]
    pub fn secret_value(&self) -> u64 {
        match self.combo.channel {
            ChannelDim::FlushReload => layout::FR_SECRET,
            ChannelDim::PrimeProbe => layout::PP_SECRET,
        }
    }

    /// The lift configuration matching the driver's privilege level:
    /// privileged sources run (and are analyzed) in user mode, so their
    /// accesses decompose into permission-check + data-read micro-ops.
    #[must_use]
    pub fn lift_config(&self) -> AnalysisConfig {
        AnalysisConfig {
            user_mode: self.combo.source != SourceDim::ArchitecturalMemory,
            protected_accesses: Vec::new(),
        }
    }

    /// This scenario with the instruction at `pc` deleted and all pc
    /// bookkeeping shifted accordingly; `None` if the deletion leaves the
    /// program invalid. The shrinker's single step.
    #[must_use]
    pub fn with_removed(&self, pc: usize) -> Option<Scenario> {
        let program = self.program.with_removed(pc).ok()?;
        let shift = |f: usize| if pc < f { f - 1 } else { f };
        Some(Scenario {
            combo: self.combo,
            mutations: self.mutations.clone(),
            program,
            access_pc: shift(self.access_pc),
            gadget_pc: shift(self.gadget_pc),
            benign_pc: shift(self.benign_pc),
        })
    }

    /// Splices `mutation` in right after the access.
    fn apply(&mut self, mutation: Mutation) {
        let at = self.access_pc + 1;
        let insert = |p: &Program, inst: Instruction| {
            p.with_inserted(at, inst).expect("splice point is in range")
        };
        self.program = match mutation {
            // ImplicitFlow shapes the epilogue in build_program instead.
            Mutation::ImplicitFlow => return,
            Mutation::NopPad => insert(&self.program, Instruction::Nop),
            Mutation::ExtendTransform => insert(
                &self.program,
                Instruction::Alu {
                    op: AluOp::Or,
                    dst: Reg::R6,
                    a: Reg::R6,
                    b: Operand::Reg(Reg::ZERO),
                },
            ),
            Mutation::DeadValue => insert(
                &self.program,
                Instruction::Alu {
                    op: AluOp::And,
                    dst: Reg::R6,
                    a: Reg::R6,
                    b: Operand::Imm(0),
                },
            ),
            Mutation::FencedSend => insert(&self.program, Instruction::Fence(FenceKind::LFence)),
            Mutation::Launder => {
                // store r6, [r10]; load r6, [r10] — in that order.
                let p = insert(
                    &self.program,
                    Instruction::Load {
                        dst: Reg::R6,
                        base: Reg::R10,
                        offset: 0,
                    },
                );
                p.with_inserted(
                    at,
                    Instruction::Store {
                        src: Reg::R6,
                        base: Reg::R10,
                        offset: 0,
                    },
                )
                .expect("splice point is in range")
            }
        };
    }
}

/// Draws this candidate's mutation list: identity often enough that every
/// known combo is rediscovered within a small budget, with a bias toward
/// single leak-preserving splices and a steady trickle of the
/// divergence-inducing ones.
fn draw_mutations(rng: &mut FuzzRng, combo: Combo) -> Vec<Mutation> {
    // Secret-dependent control flow needs the conditional-branch driver's
    // registers and a slot-addressable channel.
    let implicit_ok =
        combo.delay == DelayDim::ConditionalBranch && combo.channel == ChannelDim::FlushReload;
    let implicit = implicit_ok && rng.chance(1, 4);
    let menu = [
        Mutation::NopPad,
        Mutation::ExtendTransform,
        Mutation::Launder,
        Mutation::DeadValue,
        Mutation::FencedSend,
    ];
    let count = match rng.below(20) {
        0..=9 => 0,
        10..=16 => 1,
        _ => 2,
    };
    // ImplicitFlow composes freely with the insertion mutations: combined
    // with DeadValue or FencedSend the scenario goes quiet under *both*
    // oracles, which is the only route to an agree-safe candidate.
    let mut mutations: Vec<Mutation> = Vec::with_capacity(count as usize + 1);
    if implicit {
        mutations.push(Mutation::ImplicitFlow);
    }
    mutations.extend((0..count).map(|_| menu[rng.below(menu.len() as u64) as usize]));
    mutations
}

/// Builds the combo's program: delay prologue, source access, channel
/// epilogue. Returns `(program, access_pc, gadget_pc, benign_pc)`.
fn build_program(combo: Combo, implicit_flow: bool) -> (Program, usize, usize, usize) {
    let mut b = ProgramBuilder::new();
    let mut benign_pc = 0;
    // Delay prologue.
    match combo.delay {
        DelayDim::ConditionalBranch => {
            b = b
                .load(Reg::R4, Reg::R2, 0)
                .load(Reg::R4, Reg::R4, 0)
                .branch_if(Cond::Ge, Reg::R0, Reg::R4, "out");
        }
        DelayDim::IndirectBranch => {
            b = b
                .load(Reg::R4, Reg::R9, 0)
                .load(Reg::R1, Reg::R4, 0)
                .jump_indirect(Reg::R1);
            benign_pc = b.here();
            b = b.halt();
        }
        DelayDim::ReturnAddress => {
            b = b.load(Reg::R4, Reg::R2, 0).ret().halt();
        }
        DelayDim::DelayedException => {}
    }
    let gadget_pc = b.here();
    // Source access, leaving the secret in r6.
    let indexed = combo.source == SourceDim::ArchitecturalMemory
        && combo.delay == DelayDim::ConditionalBranch;
    b = match combo.source {
        SourceDim::ArchitecturalMemory if indexed => b
            .alu_imm(AluOp::Shl, Reg::R5, Reg::R0, 3)
            .alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R1)
            .load(Reg::R6, Reg::R5, 0),
        SourceDim::ArchitecturalMemory | SourceDim::KernelMemory => b.load(Reg::R6, Reg::R5, 0),
        SourceDim::SpecialRegister => b.rdmsr(Reg::R6, Msr(layout::TARGET_MSR)),
    };
    let access_pc = b.here() - 1;
    // Channel epilogue.
    if implicit_flow {
        b = b
            .branch_if(Cond::Ne, Reg::R6, Reg::R12, "out")
            .load(Reg::R8, Reg::R13, 0);
    } else {
        b = b.branch_if(Cond::Eq, Reg::R6, Reg::ZERO, "out");
        b = match combo.channel {
            ChannelDim::FlushReload => {
                b.alu_imm(AluOp::Mul, Reg::R7, Reg::R6, layout::PROBE_STRIDE)
            }
            ChannelDim::PrimeProbe => b
                .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, uarch::cache::LINE_SIZE)
                .alu_imm(
                    AluOp::Add,
                    Reg::R7,
                    Reg::R7,
                    layout::PP_BASE_SET as u64 * uarch::cache::LINE_SIZE,
                ),
        };
        b = b
            .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
            .load(Reg::R8, Reg::R7, 0);
    }
    let program = b
        .label("out")
        .expect("single out label")
        .halt()
        .build()
        .expect("fixed shapes always assemble");
    (program, access_pc, gadget_pc, benign_pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_space_has_22_executable_points_and_5_known() {
        let all = Combo::all();
        assert_eq!(all.len(), 22);
        let known: Vec<_> = all.iter().filter_map(Combo::known_name).collect();
        assert_eq!(known.len(), 5);
        for c in &all {
            assert_eq!(Combo::from_label(&c.label()), Some(*c));
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for i in 0..64 {
            assert_eq!(Scenario::generate(42, i), Scenario::generate(42, i));
        }
        let programs: std::collections::HashSet<String> = (0..64)
            .map(|i| Scenario::generate(42, i).program.to_string())
            .collect();
        assert!(
            programs.len() > 5,
            "only {} distinct programs",
            programs.len()
        );
    }

    #[test]
    fn templates_mirror_the_catalog_gadgets() {
        let v1 = Scenario::template(Combo {
            source: SourceDim::ArchitecturalMemory,
            delay: DelayDim::ConditionalBranch,
            channel: ChannelDim::FlushReload,
        });
        assert_eq!(
            v1.program.to_string(),
            attacks::spectre_v1::SpectreV1::program()
                .unwrap()
                .to_string()
        );
        assert_eq!(v1.access_pc, 5);
    }

    #[test]
    fn mutations_splice_after_the_access() {
        let combo = Combo {
            source: SourceDim::KernelMemory,
            delay: DelayDim::DelayedException,
            channel: ChannelDim::FlushReload,
        };
        let base = Scenario::template(combo);
        let padded = Scenario::compose(combo, vec![Mutation::NopPad]);
        assert_eq!(padded.program.len(), base.program.len() + 1);
        assert_eq!(padded.program[padded.access_pc + 1], Instruction::Nop);
        let laundered = Scenario::compose(combo, vec![Mutation::Launder]);
        assert_eq!(laundered.program.len(), base.program.len() + 2);
        assert!(matches!(
            laundered.program[laundered.access_pc + 1],
            Instruction::Store { .. }
        ));
        assert!(matches!(
            laundered.program[laundered.access_pc + 2],
            Instruction::Load { .. }
        ));
    }

    #[test]
    fn with_removed_shifts_the_bookkeeping() {
        let combo = Combo {
            source: SourceDim::KernelMemory,
            delay: DelayDim::IndirectBranch,
            channel: ChannelDim::FlushReload,
        };
        let s = Scenario::template(combo);
        assert_eq!((s.gadget_pc, s.benign_pc, s.access_pc), (4, 3, 4));
        let t = s.with_removed(0).unwrap();
        assert_eq!((t.gadget_pc, t.benign_pc, t.access_pc), (3, 2, 3));
    }
}
