//! The minimizer: instruction-deletion passes replayed against *both*
//! oracles until the leaking scenario is 1-minimal.
//!
//! A deletion is accepted only when the shrunk program still leaks under
//! Theorem 1 **and** under simulation — a candidate that degrades into an
//! architectural leak (no squashes) or loses the graph race is rejected,
//! so minimized scenarios stay genuine transient attacks. The outer loop
//! repeats full passes until one completes with no accepted deletion,
//! which is exactly the 1-minimality condition: removing any single
//! remaining instruction breaks the leak.

use super::gen::Scenario;
use super::oracle::DualOracle;

/// Statistics from one minimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Instructions deleted from the original program.
    pub removed: usize,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Whether both oracles still call the scenario a leak. Errors (a shrink
/// candidate can break program invariants the driver relies on) reject.
fn still_leaks(oracle: &mut DualOracle, s: &Scenario) -> bool {
    oracle
        .classify(s)
        .map(|v| v.graph_leak && v.sim_leak)
        .unwrap_or(false)
}

/// Minimizes a both-oracle leaker to 1-minimality by repeated deletion
/// passes. The input must leak under both oracles; the result does too.
#[must_use]
pub fn minimize(oracle: &mut DualOracle, scenario: &Scenario) -> (Scenario, ShrinkStats) {
    let mut current = scenario.clone();
    let mut stats = ShrinkStats::default();
    loop {
        let mut accepted_this_pass = false;
        let mut pc = 0;
        while pc < current.program.len() {
            match current.with_removed(pc) {
                Some(candidate) => {
                    stats.evaluations += 1;
                    if still_leaks(oracle, &candidate) {
                        current = candidate;
                        stats.removed += 1;
                        accepted_this_pass = true;
                        // Stay at `pc`: the next instruction shifted in.
                    } else {
                        pc += 1;
                    }
                }
                // Deletion left the program invalid (dangling target).
                None => pc += 1,
            }
        }
        if !accepted_this_pass {
            return (current, stats);
        }
    }
}

/// Checks 1-minimality: every single-instruction deletion either breaks
/// the program or breaks the leak. Used by the test suite to pin the
/// shrinker's contract.
#[must_use]
pub fn is_one_minimal(oracle: &mut DualOracle, scenario: &Scenario) -> bool {
    (0..scenario.program.len()).all(|pc| match scenario.with_removed(pc) {
        Some(candidate) => !still_leaks(oracle, &candidate),
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::super::gen::{ChannelDim, Combo, DelayDim, Mutation, Scenario, SourceDim};
    use super::*;

    #[test]
    fn minimizing_a_padded_leaker_strips_the_padding() {
        let combo = Combo {
            source: SourceDim::KernelMemory,
            delay: DelayDim::DelayedException,
            channel: ChannelDim::FlushReload,
        };
        let padded = Scenario::compose(combo, vec![Mutation::NopPad, Mutation::NopPad]);
        let mut oracle = DualOracle::new();
        let (min, stats) = minimize(&mut oracle, &padded);
        assert!(stats.removed >= 2, "{stats:?}");
        assert!(min.program.len() <= padded.program.len() - 2);
        assert!(still_leaks(&mut oracle, &min));
        assert!(is_one_minimal(&mut oracle, &min));
    }
}
