//! The fuzzer's deterministic random stream.
//!
//! Every candidate's generator is derived from `(seed, index)` alone —
//! [`candidate_rng`] — so candidate `i` is the same program whether the
//! loop runs single-threaded, sharded across workers, or resumed from a
//! corpus checkpoint halfway through.

/// SplitMix64 finalizer.
pub(crate) const fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A SplitMix64 stream: deterministic, cheap, and good enough to spread
/// candidates across the scenario space.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A stream seeded directly.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: mix(seed) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// The generator stream for candidate `index` under `seed`: a pure
/// function of the pair, independent of worker layout and resume point.
#[must_use]
pub fn candidate_rng(seed: u64, index: u64) -> FuzzRng {
    FuzzRng::new(mix(seed) ^ mix(index.wrapping_mul(0xa076_1d64_78bd_642f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_streams_are_stable_and_distinct() {
        let a: Vec<u64> = (0..4).map(|_| candidate_rng(42, 7).next_u64()).collect();
        assert!(
            a.windows(2).all(|w| w[0] == w[1]),
            "same (seed, index) must agree"
        );
        assert_ne!(
            candidate_rng(42, 7).next_u64(),
            candidate_rng(42, 8).next_u64()
        );
        assert_ne!(
            candidate_rng(42, 7).next_u64(),
            candidate_rng(43, 7).next_u64()
        );
    }

    #[test]
    fn below_and_chance_stay_in_range() {
        let mut r = FuzzRng::new(1);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
        assert!(!r.chance(0, 10));
    }
}
