//! # Synthesized-scenario fuzzing: growing the attack catalog automatically
//!
//! §V-A of the paper argues that *new attacks are new combinations*: pick
//! a secret source, an authorization-delaying mechanism, and a covert
//! channel, and the composition is an attack nobody has named yet. This
//! module family turns that observation into a discovery loop:
//!
//! ```text
//!  seed ─▶ generator ─▶ Scenario ─▶ analyzer::lift ─▶ TSG ──┬─▶ Theorem 1 (PatchSession)
//!            (gen)                                          └─▶ simulation (BatchRunner)
//!                                                                  │
//!                    divergence? ◀─ classify (oracle) ◀─ verdicts ──┘
//!                         │                │
//!                  first-class finding   both leak + unseen shape
//!                  (missed_leak /          │
//!                   false_sense)        shrink to 1-minimal ─▶ Corpus / SynthesizedRegistry
//! ```
//!
//! * [`gen`] — the seeded deterministic generator: free composition over
//!   the three §V-A dimensions plus biased mutation of the composed
//!   gadget. Candidate `i` is a pure function of `(seed, i)`.
//! * [`oracle`] — the differential classifier: Theorem 1 over the lifted
//!   graph vs. end-to-end simulation, divergences explained or flagged.
//! * [`shrink`] — the minimizer: deletion passes replayed against both
//!   oracles until 1-minimal.
//! * [`corpus`] — the resumable on-disk corpus (schema v6) and the
//!   [`SynthesizedRegistry`] that plugs findings into a campaign's attack
//!   axis.
//!
//! The loop itself is [`fuzz`]: bit-identical across runs, `--threads`
//! values, and save/resume splits, because candidates derive from
//! `(seed, index)` alone and the merge is by index.

pub mod corpus;
pub mod gen;
pub mod oracle;
mod rng;
pub mod shrink;

pub use corpus::{
    Corpus, CorpusError, DivergenceRecord, Finding, Rediscovery, SynthesizedRegistry, CORPUS_FILE,
    FUZZ_SCHEMA_VERSION,
};
pub use gen::{ChannelDim, Combo, DelayDim, Mutation, Scenario, SourceDim};
pub use oracle::{Agreement, DualOracle, FalseSenseCause, MissedLeakCause, Verdicts};
pub use rng::{candidate_rng, FuzzRng};
pub use shrink::{is_one_minimal, minimize, ShrinkStats};

use analyzer::AnalyzerError;
use attacks::AttackError;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

/// A fuzzing-loop failure.
#[derive(Debug)]
pub enum FuzzError {
    /// The analyzer rejected a candidate program (never for generated
    /// candidates; possible for hand-edited corpus entries).
    Analyzer(AnalyzerError),
    /// The simulator rejected a candidate run.
    Attack(AttackError),
    /// Corpus persistence failed.
    Corpus(CorpusError),
    /// An on-disk corpus is incompatible with the requested run.
    Resume(String),
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::Analyzer(e) => write!(f, "lift failed: {e}"),
            FuzzError::Attack(e) => write!(f, "simulation failed: {e}"),
            FuzzError::Corpus(e) => write!(f, "{e}"),
            FuzzError::Resume(m) => write!(f, "cannot resume: {m}"),
        }
    }
}

impl std::error::Error for FuzzError {}

impl From<AnalyzerError> for FuzzError {
    fn from(e: AnalyzerError) -> Self {
        FuzzError::Analyzer(e)
    }
}

impl From<AttackError> for FuzzError {
    fn from(e: AttackError) -> Self {
        FuzzError::Attack(e)
    }
}

impl From<CorpusError> for FuzzError {
    fn from(e: CorpusError) -> Self {
        FuzzError::Corpus(e)
    }
}

/// Parameters of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seed every candidate derives from.
    pub seed: u64,
    /// Total candidate budget (a resumed run classifies from the corpus
    /// checkpoint up to this).
    pub budget: u64,
    /// Whether novel leakers are minimized to 1-minimality.
    pub minimize: bool,
    /// Classification worker threads; `0` means all available
    /// parallelism. Results are identical for every value.
    pub threads: usize,
    /// Checkpoint the corpus to disk every this many classified
    /// candidates (`0`, the default, saves only at the end). A killed run
    /// resumes from the last checkpoint instead of budget 0; the final
    /// corpus is bit-identical for every value.
    pub checkpoint_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            budget: 512,
            minimize: true,
            threads: 0,
            checkpoint_every: 0,
        }
    }
}

/// The outcome of one [`fuzz`] call.
#[derive(Debug)]
pub struct FuzzReport {
    /// The corpus after this run (also saved to disk when a directory
    /// was given).
    pub corpus: Corpus,
    /// How many candidates this call classified (0 on a fully resumed
    /// corpus — the satellite CI check pins this).
    pub newly_classified: u64,
    /// When the on-disk corpus was damaged but recoverable (typed
    /// truncation — a writer killed mid-save), the reason it was
    /// discarded; classification restarted from the last good budget
    /// (budget 0 when no complete corpus survived).
    pub recovered: Option<String>,
}

/// The catalog the fuzzer measures novelty against: the hand-built
/// registry rows' graph shapes plus the lifted (and, when minimizing,
/// minimized) shapes of the five known-combo templates.
#[derive(Debug)]
struct KnownCatalog {
    /// Fingerprints that disqualify a shape from being "novel".
    known_shapes: HashSet<u64>,
    /// Raw template fingerprint → catalog name, for rediscovery records.
    rediscovery: HashMap<u64, &'static str>,
}

impl KnownCatalog {
    fn build(minimize: bool) -> Result<Self, FuzzError> {
        let mut known_shapes = HashSet::new();
        let mut rediscovery = HashMap::new();
        for attack in attacks::registry() {
            known_shapes.insert(attack.graph().graph().shape_fingerprint());
        }
        let mut oracle = DualOracle::new();
        for combo in Combo::all() {
            let Some(name) = combo.known_name() else {
                continue;
            };
            let template = Scenario::template(combo);
            let v = oracle.classify(&template)?;
            known_shapes.insert(v.raw_fingerprint);
            rediscovery.insert(v.raw_fingerprint, name);
            if minimize {
                known_shapes.insert(minimized_fingerprint(&mut oracle, &template)?);
            }
        }
        Ok(KnownCatalog {
            known_shapes,
            rediscovery,
        })
    }
}

/// Minimizes `s` and fingerprints the minimized lifted shape.
fn minimized_fingerprint(oracle: &mut DualOracle, s: &Scenario) -> Result<u64, FuzzError> {
    let (min, _) = shrink::minimize(oracle, s);
    Ok(analyzer::lift(&min.program, &min.lift_config())?
        .graph()
        .shape_fingerprint())
}

/// Runs the discovery loop: classify candidates `corpus.classified..budget`,
/// record divergences and rediscoveries, shrink and register novel
/// leakers, and (when `corpus_dir` is given) persist the corpus.
///
/// Deterministic by construction: candidate `i` is a pure function of
/// `(seed, i)`, workers merge by index, and the dedup/shrink phase is
/// sequential in index order — so runs are bit-identical across thread
/// counts and across save/resume splits.
///
/// # Errors
///
/// [`FuzzError`] on oracle failure for a *generated* candidate (a bug,
/// not an expected outcome), on corpus persistence failure, or when the
/// on-disk corpus was produced with a different seed or minimize flag.
pub fn fuzz(config: &FuzzConfig, corpus_dir: Option<&Path>) -> Result<FuzzReport, FuzzError> {
    let mut recovered = None;
    let mut corpus = match corpus_dir {
        Some(dir) => match Corpus::load(dir) {
            Ok(Some(existing)) => {
                if existing.seed != config.seed {
                    return Err(FuzzError::Resume(format!(
                        "corpus seed {} != requested seed {}",
                        existing.seed, config.seed
                    )));
                }
                if existing.minimize != config.minimize {
                    return Err(FuzzError::Resume(
                        "corpus minimize flag differs from request".into(),
                    ));
                }
                existing
            }
            Ok(None) => Corpus::new(config.seed, config.minimize),
            // A half-written corpus (writer killed mid-save) is typed
            // truncation, not a fatal parse error: discard it, report the
            // recovery, and re-classify from the last good budget — here
            // budget 0, since no complete corpus survived.
            Err(e) if e.is_recoverable() => {
                recovered = Some(e.to_string());
                Corpus::new(config.seed, config.minimize)
            }
            Err(e) => return Err(e.into()),
        },
        None => Corpus::new(config.seed, config.minimize),
    };

    let start = corpus.classified;
    let end = config.budget.max(start);
    let newly_classified = end - start;
    if newly_classified > 0 {
        let catalog = KnownCatalog::build(config.minimize)?;
        let mut oracle = DualOracle::new();
        let mut seen: HashSet<u64> = corpus.raw_seen.iter().copied().collect();
        let mut found: HashSet<u64> = corpus
            .findings
            .iter()
            .map(|f| f.minimized_fingerprint)
            .collect();
        // Classification proceeds in checkpoint-sized batches (one batch
        // when checkpointing is off); per-candidate work is identical
        // either way, so the final corpus is bit-identical for every
        // checkpoint cadence.
        let step = match config.checkpoint_every {
            0 => newly_classified,
            every => every,
        };
        let mut next = start;
        while next < end {
            let stop = end.min(next + step);
            classify_batch(
                config,
                &catalog,
                &mut oracle,
                &mut seen,
                &mut found,
                &mut corpus,
                next,
                stop,
            )?;
            next = stop;
            if next < end {
                if let Some(dir) = corpus_dir {
                    corpus.save(dir)?;
                }
            }
        }
    }

    if let Some(dir) = corpus_dir {
        corpus.save(dir)?;
    }
    Ok(FuzzReport {
        corpus,
        newly_classified,
        recovered,
    })
}

/// Classifies candidates `[start, stop)` into `corpus`, sequentially in
/// index order (the classification itself fans out across workers). One
/// batch of [`fuzz`]'s loop — split out so checkpointed and single-shot
/// runs share one code path.
#[allow(clippy::too_many_arguments)]
fn classify_batch(
    config: &FuzzConfig,
    catalog: &KnownCatalog,
    oracle: &mut DualOracle,
    seen: &mut HashSet<u64>,
    found: &mut HashSet<u64>,
    corpus: &mut Corpus,
    start: u64,
    stop: u64,
) -> Result<(), FuzzError> {
    {
        let classified = classify_range(config, start, stop)?;
        for (index, scenario, verdicts) in classified {
            let agreement = verdicts.agreement(&scenario);
            match agreement {
                Agreement::AgreeLeak => corpus.agree_leak += 1,
                Agreement::AgreeSafe => corpus.agree_safe += 1,
                _ => corpus.divergences.push(DivergenceRecord {
                    index,
                    combo: scenario.combo.label(),
                    mutations: scenario.mutations.clone(),
                    agreement: agreement.tag().into(),
                }),
            }
            let fresh = seen.insert(verdicts.raw_fingerprint);
            if fresh {
                corpus.raw_seen.push(verdicts.raw_fingerprint);
            }
            if !(verdicts.graph_leak && verdicts.sim_leak) {
                continue;
            }
            if let Some(&name) = catalog.rediscovery.get(&verdicts.raw_fingerprint) {
                if !corpus.rediscovered.iter().any(|r| r.name == name) {
                    corpus.rediscovered.push(Rediscovery {
                        name: name.into(),
                        index,
                        fingerprint: verdicts.raw_fingerprint,
                    });
                }
                continue;
            }
            if !fresh || catalog.known_shapes.contains(&verdicts.raw_fingerprint) {
                continue;
            }
            // A novel leaking shape: minimize and register.
            let (minimized_fingerprint, min, removed) = if config.minimize {
                let (min, stats) = shrink::minimize(oracle, &scenario);
                let fp = analyzer::lift(&min.program, &min.lift_config())?
                    .graph()
                    .shape_fingerprint();
                (fp, min, stats.removed)
            } else {
                (verdicts.raw_fingerprint, scenario.clone(), 0)
            };
            if catalog.known_shapes.contains(&minimized_fingerprint)
                || !found.insert(minimized_fingerprint)
            {
                continue;
            }
            corpus.findings.push(Finding {
                index,
                combo: scenario.combo.label(),
                mutations: scenario.mutations.clone(),
                raw_fingerprint: verdicts.raw_fingerprint,
                minimized_fingerprint,
                program: isa::asm::disassemble(&min.program),
                access_pc: min.access_pc as u64,
                gadget_pc: min.gadget_pc as u64,
                benign_pc: min.benign_pc as u64,
                removed: removed as u64,
            });
        }
        corpus.classified = stop;
    }
    Ok(())
}

/// Classifies candidates `[start, end)` and returns them in index order.
/// Parallel across `config.threads` workers (strided assignment, merged
/// by index), each owning a warm [`DualOracle`].
#[allow(clippy::type_complexity)]
fn classify_range(
    config: &FuzzConfig,
    start: u64,
    end: u64,
) -> Result<Vec<(u64, Scenario, Verdicts)>, FuzzError> {
    let n = (end - start) as usize;
    let workers = match config.threads {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        t => t,
    }
    .min(n.max(1));
    let seed = config.seed;
    if workers <= 1 {
        let mut oracle = DualOracle::new();
        return (start..end)
            .map(|i| {
                let s = Scenario::generate(seed, i);
                let v = oracle.classify(&s)?;
                Ok((i, s, v))
            })
            .collect();
    }
    let mut slots: Vec<Option<(u64, Scenario, Verdicts)>> = Vec::new();
    slots.resize_with(n, || None);
    let mut result: Result<(), FuzzError> = Ok(());
    {
        let chunks = partition_mut(&mut slots, workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(offset, chunk)| {
                    scope.spawn(move || -> Result<(), FuzzError> {
                        let mut oracle = DualOracle::new();
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let i = start + (offset + k) as u64;
                            let s = Scenario::generate(seed, i);
                            let v = oracle.classify(&s)?;
                            *slot = Some((i, s, v));
                        }
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                if let Err(e) = h.join().expect("fuzz worker panicked") {
                    result = Err(e);
                }
            }
        });
    }
    result?;
    Ok(slots.into_iter().flatten().collect())
}

/// Splits `slots` into up to `workers` contiguous chunks, each tagged
/// with its starting offset.
fn partition_mut<T>(slots: &mut [T], workers: usize) -> Vec<(usize, &mut [T])> {
    let n = slots.len();
    let per = n.div_ceil(workers);
    let mut out = Vec::new();
    let mut rest = slots;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        out.push((offset, head));
        offset += take;
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_budget_run_is_deterministic_across_threads() {
        let base = FuzzConfig {
            seed: 7,
            budget: 24,
            minimize: false,
            threads: 1,
            checkpoint_every: 0,
        };
        let a = fuzz(&base, None).unwrap();
        let b = fuzz(
            &FuzzConfig {
                threads: 4,
                ..base.clone()
            },
            None,
        )
        .unwrap();
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.corpus.to_json(), b.corpus.to_json());
        assert_eq!(a.newly_classified, 24);
    }

    #[test]
    fn budget_below_checkpoint_classifies_nothing() {
        let dir = std::env::temp_dir().join(format!("fuzz-resume-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = FuzzConfig {
            seed: 11,
            budget: 12,
            minimize: false,
            threads: 1,
            checkpoint_every: 0,
        };
        let first = fuzz(&cfg, Some(&dir)).unwrap();
        assert_eq!(first.newly_classified, 12);
        let resumed = fuzz(&cfg, Some(&dir)).unwrap();
        assert_eq!(resumed.newly_classified, 0);
        assert_eq!(resumed.corpus, first.corpus);
        // A different seed refuses to reuse the corpus.
        let err = fuzz(
            &FuzzConfig {
                seed: 12,
                ..cfg.clone()
            },
            Some(&dir),
        )
        .unwrap_err();
        assert!(matches!(err, FuzzError::Resume(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let mut v: Vec<usize> = (0..10).collect();
        let parts = partition_mut(&mut v, 3);
        assert_eq!(parts.len(), 3);
        let mut flat = Vec::new();
        for (offset, chunk) in parts {
            assert_eq!(chunk[0], offset);
            flat.extend_from_slice(chunk);
        }
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}
